//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly and a poisoned lock
//! (a panic while held) is simply recovered, matching `parking_lot`'s
//! semantics of not propagating poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not propagate poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not propagate poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_usable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
