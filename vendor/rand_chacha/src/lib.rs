//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator.
//!
//! Implements the ChaCha quarter-round construction (Bernstein) with 8
//! rounds and a 64-bit block counter, exposing it through the workspace
//! `rand` shim's [`RngCore`]/[`SeedableRng`] traits. The keystream is a
//! faithful ChaCha8 keystream; the *word consumption order* matches the
//! natural block layout, which may differ from upstream `rand_chacha`'s
//! stream API. Every consumer in this workspace only requires seeded
//! determinism within the workspace, which this provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// `"expand 32-byte k"` — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha8 random number generator with a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word within `block`; 16 forces a refill.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocks_differ_across_counter_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn keystream_mean_is_centred() {
        // A crude whiteness check: the mean of 16k uniform u32 words scaled
        // to [0,1) should sit near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 16_384;
        let mean: f64 =
            (0..n).map(|_| rng.next_u32() as f64 / u32::MAX as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
