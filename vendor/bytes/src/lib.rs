//! Offline shim for the subset of the `bytes` crate this workspace uses.
//!
//! [`BytesMut`] is a growable byte buffer and [`Bytes`] an immutable,
//! cheaply clonable view produced by [`BytesMut::freeze`]. Unlike upstream
//! there is no zero-copy slicing machinery — `Bytes` shares its storage via
//! `Arc`, which is all the page store needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::new(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: Arc::new(data) }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Resize to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::new(self.data) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_and_read() {
        let mut buf = BytesMut::with_capacity(16);
        buf.extend_from_slice(&[1, 2, 3]);
        buf.resize(8, 0);
        assert_eq!(buf.len(), 8);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..4], &[1, 2, 3, 0]);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }

    #[test]
    fn conversions() {
        let b: Bytes = vec![9, 8].into();
        assert_eq!(b.as_ref(), &[9, 8]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[5]).len(), 1);
    }
}
