//! Offline shim for the subset of the `criterion` benchmark API this
//! workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkId`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical machinery, each benchmark is warmed up briefly and then timed
//! over an adaptive number of iterations; the mean wall-clock time per
//! iteration is printed. Good enough to keep `cargo bench` meaningful
//! without network access to the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark case: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        Self { id }
    }

    /// An id from a bare function name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measurement: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Accept (and ignore) command-line configuration, as upstream does.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_case(name, self.measurement, &mut f);
        self
    }

    /// Print the final summary (a no-op in this shim).
    pub fn final_summary(&self) {}
}

/// A group of related benchmark cases sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accept (and ignore) criterion's statistical sample-size knob; this
    /// shim sizes its measurement by wall-clock budget instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run one parameterized case.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_case(&label, self.criterion.measurement, &mut |b| f(b, input));
        self
    }

    /// Run one named case.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_case(&label, self.criterion.measurement, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `payload` over this measurement's iteration count.
    pub fn iter<O>(&mut self, mut payload: impl FnMut() -> O) {
        let started = Instant::now();
        for _ in 0..self.iterations {
            black_box(payload());
        }
        self.elapsed = started.elapsed();
    }
}

fn run_case(label: &str, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one run takes ≥ ~5 ms, so
    // the measured run amortizes timer overhead.
    let mut iterations = 1u64;
    loop {
        let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || iterations >= 1 << 24 {
            break;
        }
        iterations *= 4;
    }
    // Measure: repeat runs until the time budget is spent.
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    while total < measurement {
        let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut bencher);
        total += bencher.elapsed;
        total_iters += iterations;
    }
    let nanos_per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench: {label:<50} {}", format_time(nanos_per_iter));
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:8.1} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:8.2} µs/iter", nanos / 1_000.0)
    } else {
        format!("{:8.3} ms/iter", nanos / 1_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group, as upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("knn", 32).to_string(), "knn/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion { measurement: Duration::from_millis(1) };
        let mut group = c.benchmark_group("g");
        group.bench_function("case", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
