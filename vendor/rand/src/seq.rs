//! Slice sampling helpers.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member_or_none() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
