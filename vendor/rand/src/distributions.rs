//! The distribution-sampling trait.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}
