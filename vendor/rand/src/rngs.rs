//! The standard generator of this shim.

use crate::{RngCore, SeedableRng};

/// The shim's standard generator: xoshiro256++, seeded through SplitMix64.
///
/// Upstream `StdRng` is a ChaCha block cipher; tests in this workspace only
/// need a fast, well-mixed, seedable source, which xoshiro256++ provides in a
/// few lines of safe code.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}
