//! The sharded scatter-gather serving tier end to end: a capacity-mode
//! `ShardedIndex` serving bit-identically to its unsharded equivalent, a
//! forest-mode replica ensemble recovering recall for the approximate
//! search, routed writes, per-shard compaction and the sharded directory
//! layout.
//!
//! ```bash
//! cargo run --release --example sharded_serving
//! ```

use brepartition::prelude::*;

fn main() -> brepartition::Result<()> {
    println!("# Sharded serving: capacity and forest modes over one API\n");

    let data =
        HierarchicalSpec { n: 3_000, dim: 24, clusters: 12, blocks: 6, ..Default::default() }
            .generate();
    let kind = DivergenceKind::ItakuraSaito;
    let base = IndexSpec::brepartition(kind).with_partitions(6).with_page_size(8 * 1024);

    // ------------------------------------------------------------------
    // Capacity mode: each point lives on exactly one of 4 shards, chosen
    // by a deterministic hash of its external id. For exact methods the
    // scatter-gather merge returns *bit-identical* answers to one big
    // unsharded index — sharding is purely an operational decision.
    // ------------------------------------------------------------------
    let plain = Index::build(&base, &data)?;
    let sharded = ShardedIndex::build(&ShardSpec::capacity(base, 4), &data)?;
    println!(
        "capacity tier: {} points over {} shards (largest shard {})",
        sharded.len(),
        sharded.shards(),
        (0..sharded.shards()).map(|s| sharded.shard(s).len()).max().unwrap()
    );

    let workload = QueryWorkload::perturbed_from(&data, kind, 256, 0.05, 0x5EED);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();
    let request = Request::uniform(&queries, 10);
    let reference = plain.run(&request)?;
    let fanned = sharded.run_with_budget(&request, 4)?;
    for (a, b) in reference.outcomes.iter().zip(fanned.outcomes.iter()) {
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for ((ia, da), (ib, db)) in a.neighbors.iter().zip(b.neighbors.iter()) {
            assert_eq!(ia, ib, "capacity mode must match the unsharded index");
            assert_eq!(da.to_bits(), db.to_bits(), "…down to the distance bits");
        }
    }
    println!("unsharded — {}", reference.report);
    println!("sharded   — {}", fanned.report);
    println!("all 256 answers bit-identical across the two tiers\n");

    // Writes route by the same hash; external ids stay global and stable
    // across per-shard compaction.
    let fresh: Vec<f64> = data.row(0).iter().map(|v| v * 1.01 + 0.05).collect();
    let id = sharded.insert(&fresh)?;
    assert_eq!(sharded.query(&QueryRequest::new(&fresh, 1))?.neighbors[0].0, id);
    assert!(sharded.delete(PointId(17))?);
    sharded.compact()?;
    assert_eq!(sharded.query(&QueryRequest::new(&fresh, 1))?.neighbors[0].0, id);
    println!("routed insert {id} + delete survive per-shard compaction");

    // Persist the whole tier: one subdirectory per shard plus a sealed
    // `shards.meta` envelope; `ShardedIndex::open` is self-describing.
    let dir = std::env::temp_dir().join(format!("brepartition-sharded-{}", std::process::id()));
    sharded.save(&dir)?;
    let reopened = ShardedIndex::open(&dir)?;
    assert_eq!(reopened.len(), sharded.len());
    assert_eq!(reopened.query(&QueryRequest::new(&fresh, 1))?.neighbors[0].0, id);
    println!("saved + reopened from {} ({} shards)\n", dir.display(), reopened.shards());
    std::fs::remove_dir_all(&dir).ok();

    // ------------------------------------------------------------------
    // Forest mode: N full replicas under different build seeds. Each
    // replica answers the whole query; the gather merges and dedups their
    // top-k. For the approximate search this trades space for recall —
    // the merged ensemble can only improve on a single replica.
    // ------------------------------------------------------------------
    let approx = IndexSpec::approximate(kind)
        .with_probability(0.1)
        .with_partitions(6)
        .with_page_size(8 * 1024);
    let single = Index::build(&approx, &data)?;
    let forest = ShardedIndex::build(&ShardSpec::forest(approx, 4), &data)?;

    let query_set = DenseDataset::from_rows(&queries).unwrap();
    let truth = ground_truth_knn(kind, &data, &query_set, 10, 4);
    let mut single_hits = 0.0;
    let mut forest_hits = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let expected = truth.neighbors_of(qi);
        single_hits += recall(&single.query(&QueryRequest::new(q, 10))?.neighbors, expected);
        forest_hits += recall(&forest.query(&QueryRequest::new(q, 10))?.neighbors, expected);
    }
    let n = queries.len() as f64;
    println!(
        "forest tier (ABP p=0.1, 4 replicas): recall {:.3} single → {:.3} merged",
        single_hits / n,
        forest_hits / n
    );
    assert!(forest_hits >= single_hits - 1e-9, "the merge must not lose recall");

    println!("\ndone.");
    Ok(())
}
