//! Speech-spectrum retrieval with the Itakura-Saito distance.
//!
//! The Itakura-Saito divergence is the classic dissimilarity between power
//! spectra in speech processing. This example simulates a library of
//! spectral-envelope descriptors (the Audio/Fonts-style workload of the
//! paper), builds all three exact disk-resident indexes — BrePartition,
//! a disk BB-tree (BBT) and a VA-file (VAF) — and compares their per-query
//! I/O cost and running time on the same workload.
//!
//! ```bash
//! cargo run --release --example speech_retrieval
//! ```

use std::time::Instant;

use brepartition::prelude::*;

fn main() {
    let n = 4_000;
    let dim = 96;
    let k = 10;
    let queries = 20;

    // Simulated spectral envelopes: positive, block-correlated (adjacent
    // frequency bands move together), clustered by speaker/phoneme.
    let data = HierarchicalSpec {
        n,
        dim,
        clusters: 32,
        blocks: 12,
        base_scale: 4.0,
        ..Default::default()
    }
    .generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, queries, 0.02, 11);
    println!("speech corpus: {n} spectra x {dim} bands, k = {k}, {queries} queries\n");

    // --- BrePartition ---
    let bp_config = BrePartitionConfig::default().with_page_size(16 * 1024);
    let bp_started = Instant::now();
    let bp = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &bp_config).unwrap();
    let bp_build = bp_started.elapsed().as_secs_f64();
    let mut bp_io = 0u64;
    let bp_query_started = Instant::now();
    for query in workload.iter() {
        let result = bp.knn(query, k).unwrap();
        bp_io += result.stats.io.pages_read;
    }
    let bp_time = bp_query_started.elapsed().as_secs_f64();

    // --- Disk-resident BB-tree (BBT baseline) ---
    let bbt_started = Instant::now();
    let bbt = DiskBBTree::build(
        ItakuraSaito,
        &data,
        BBTreeConfig::with_leaf_capacity(32),
        PageStoreConfig::with_page_size(16 * 1024),
    );
    let bbt_build = bbt_started.elapsed().as_secs_f64();
    let mut bbt_io = 0u64;
    let bbt_query_started = Instant::now();
    for query in workload.iter() {
        let mut pool = BufferPool::unbuffered();
        let result = bbt.knn(&mut pool, query, k);
        bbt_io += result.io.pages_read;
    }
    let bbt_time = bbt_query_started.elapsed().as_secs_f64();

    // --- VA-file (VAF baseline) ---
    let vaf_started = Instant::now();
    let vaf = VaFile::build(
        ItakuraSaito,
        &data,
        VaFileConfig { page_size_bytes: 16 * 1024, ..VaFileConfig::default() },
    );
    let vaf_build = vaf_started.elapsed().as_secs_f64();
    let mut vaf_io = 0u64;
    let vaf_query_started = Instant::now();
    for query in workload.iter() {
        let mut pool = BufferPool::unbuffered();
        let result = vaf.knn(&mut pool, query, k);
        vaf_io += result.io.pages_read;
    }
    let vaf_time = vaf_query_started.elapsed().as_secs_f64();

    println!(
        "{:<14} {:>12} {:>16} {:>16}",
        "method", "build (s)", "avg I/O (pages)", "avg query (ms)"
    );
    for (name, build, io, time) in [
        ("BrePartition", bp_build, bp_io, bp_time),
        ("BB-tree", bbt_build, bbt_io, bbt_time),
        ("VA-file", vaf_build, vaf_io, vaf_time),
    ] {
        println!(
            "{:<14} {:>12.3} {:>16.1} {:>16.3}",
            name,
            build,
            io as f64 / queries as f64,
            time * 1e3 / queries as f64
        );
    }

    // Sanity: all three must agree with brute force on the first query.
    let query = workload.iter().next().unwrap();
    let truth = ground_truth_knn(
        DivergenceKind::ItakuraSaito,
        &data,
        &DenseDataset::from_rows(&[query.to_vec()]).unwrap(),
        k,
        1,
    );
    let bp_result = bp.knn(query, k).unwrap();
    let agree = bp_result
        .neighbors
        .iter()
        .zip(truth.neighbors_of(0))
        .all(|(a, b)| (a.1 - b.1).abs() < 1e-9);
    println!("\nexactness check: {}", if agree { "OK" } else { "MISMATCH" });
}
