//! Speech-spectrum retrieval with the Itakura-Saito distance.
//!
//! The Itakura-Saito divergence is the classic dissimilarity between power
//! spectra in speech processing. This example simulates a library of
//! spectral-envelope descriptors (the Audio/Fonts-style workload of the
//! paper) and compares all three exact disk-resident indexes —
//! BrePartition, the disk BB-tree (BBT) and the VA-file (VAF) — on the same
//! workload, **through one identical spec-driven loop**: only the `Method`
//! in the spec changes between contenders.
//!
//! ```bash
//! cargo run --release --example speech_retrieval
//! ```

use std::time::Instant;

use brepartition::prelude::*;

fn main() {
    let n = 4_000;
    let dim = 96;
    let k = 10;
    let queries = 20;

    // Simulated spectral envelopes: positive, block-correlated (adjacent
    // frequency bands move together), clustered by speaker/phoneme.
    let data = HierarchicalSpec {
        n,
        dim,
        clusters: 32,
        blocks: 12,
        base_scale: 4.0,
        ..Default::default()
    }
    .generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, queries, 0.02, 11);
    println!("speech corpus: {n} spectra x {dim} bands, k = {k}, {queries} queries\n");

    // One spec template; the method is the only thing that varies.
    let template = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
        .with_leaf_capacity(32)
        .with_page_size(16 * 1024);

    println!(
        "{:<14} {:>12} {:>16} {:>16}",
        "method", "build (s)", "avg I/O (pages)", "avg query (ms)"
    );
    let mut first_results: Vec<(Method, Vec<(PointId, f64)>)> = Vec::new();
    for method in [Method::BrePartition, Method::BBTree, Method::VaFile] {
        let spec = IndexSpec { method, ..template };
        let build_started = Instant::now();
        let index = Index::build(&spec, &data).unwrap();
        let build_seconds = build_started.elapsed().as_secs_f64();

        let mut io = 0u64;
        let query_started = Instant::now();
        for query in workload.iter() {
            let result = index.query(&QueryRequest::new(query, k)).unwrap();
            io += result.io.pages_read;
        }
        let query_seconds = query_started.elapsed().as_secs_f64();
        println!(
            "{:<14} {:>12.3} {:>16.1} {:>16.3}",
            method.short_name(),
            build_seconds,
            io as f64 / queries as f64,
            query_seconds * 1e3 / queries as f64
        );

        let first = workload.iter().next().unwrap();
        first_results.push((method, index.query(&QueryRequest::new(first, k)).unwrap().neighbors));
    }

    // Sanity: all three must agree with brute force on the first query.
    let query = workload.iter().next().unwrap();
    let truth = ground_truth_knn(
        DivergenceKind::ItakuraSaito,
        &data,
        &DenseDataset::from_rows(&[query.to_vec()]).unwrap(),
        k,
        1,
    );
    println!();
    for (method, neighbors) in &first_results {
        let agree = neighbors
            .iter()
            .zip(truth.neighbors_of(0))
            .all(|(a, b)| (a.1 - b.1).abs() < 1e-9 * (1.0 + b.1.abs()));
        println!(
            "exactness check ({:>3}): {}",
            method.short_name(),
            if agree { "OK" } else { "MISMATCH" }
        );
    }
}
