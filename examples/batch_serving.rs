//! Multi-divergence batch serving with the concurrent query engine.
//!
//! A serving deployment rarely answers one query at a time: requests arrive
//! as batches, often against several corpora with different divergences.
//! This example stands up two corpora — spectral envelopes under the
//! Itakura-Saito distance and embedding-style vectors under the exponential
//! distance — through the identical spec-driven façade, and drives query
//! batches on one thread and on all cores, printing the throughput report
//! (QPS, latency percentiles, I/O) each time. The batch itself mixes
//! per-query `k`s: real request streams are not uniform.
//!
//! ```bash
//! cargo run --release --example batch_serving
//! ```

use brepartition::prelude::*;

fn serve(corpus: &str, kind: DivergenceKind, data: &DenseDataset, queries: &[Vec<f64>], k: usize) {
    let cores = brepartition::engine::recommended_pool_threads();
    println!(
        "## {corpus}: {} points x {} dims, divergence {kind}, batch of {} queries, k={k}",
        data.len(),
        data.dim(),
        queries.len()
    );
    // Exact and approximate BrePartition through the same spec API. The
    // exact index also serves the mixed-k batch below — build it once.
    let mut exact_index = None;
    for method in [Method::BrePartition, Method::Approximate] {
        let spec = IndexSpec::new(method, kind)
            .with_partitions((data.dim() / 7).clamp(2, 16))
            .with_page_size(16 * 1024)
            .with_probability(0.9);
        let index = Index::build(&spec, data).unwrap();
        for threads in [1, cores] {
            let batch = index
                .run_with(
                    &Request::uniform(queries, k),
                    EngineConfig::default().with_threads(threads),
                )
                .unwrap();
            println!("  {}", batch.report);
        }
        if method == Method::BrePartition {
            exact_index = Some(index);
        }
    }

    // Heterogeneous batch: every fourth query wants a deeper result list.
    let index = exact_index.expect("exact index built above");
    let mixed = Request::batch(
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q, if i % 4 == 0 { 3 * k } else { k })),
    );
    let batch = index.run(&mixed).unwrap();
    println!(
        "  mixed-k batch: {} queries, deepest k={}, {:.0} QPS — as JSON: {}",
        batch.outcomes.len(),
        batch.report.k,
        batch.report.qps,
        batch.report.to_json()
    );
    println!();
}

fn main() {
    let k = 10;
    let batch = 256;

    // Corpus 1: positive spectral envelopes, Itakura-Saito distance.
    let speech = HierarchicalSpec {
        n: 3_000,
        dim: 64,
        clusters: 24,
        blocks: 8,
        base_scale: 4.0,
        ..Default::default()
    }
    .generate();
    let speech_queries: Vec<Vec<f64>> =
        QueryWorkload::perturbed_from(&speech, DivergenceKind::ItakuraSaito, batch, 0.02, 41)
            .iter()
            .map(|q| q.to_vec())
            .collect();

    // Corpus 2: embedding-style vectors, exponential distance.
    let embeddings =
        HierarchicalSpec { n: 3_000, dim: 48, clusters: 16, blocks: 6, ..Default::default() }
            .generate();
    let embedding_queries: Vec<Vec<f64>> =
        QueryWorkload::perturbed_from(&embeddings, DivergenceKind::Exponential, batch, 0.02, 42)
            .iter()
            .map(|q| q.to_vec())
            .collect();

    println!("# Batch serving across divergences\n");
    serve("speech", DivergenceKind::ItakuraSaito, &speech, &speech_queries, k);
    serve("embeddings", DivergenceKind::Exponential, &embeddings, &embedding_queries, k);
}
