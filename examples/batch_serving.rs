//! Multi-divergence batch serving with the concurrent query engine.
//!
//! A serving deployment rarely answers one query at a time: requests arrive
//! as batches, often against several corpora with different divergences.
//! This example stands up two corpora — spectral envelopes under the
//! Itakura-Saito distance and embedding-style vectors under the exponential
//! distance — wraps each index in a [`SearchBackend`], and drives query
//! batches through [`QueryEngine`] on one thread and on all cores,
//! printing the throughput report (QPS, latency percentiles, I/O) each time.
//!
//! ```bash
//! cargo run --release --example batch_serving
//! ```

use std::sync::Arc;

use brepartition::prelude::*;

fn serve(corpus: &str, kind: DivergenceKind, data: &DenseDataset, queries: &[Vec<f64>], k: usize) {
    let config = BrePartitionConfig::default()
        .with_partitions((data.dim() / 7).clamp(2, 16))
        .with_page_size(16 * 1024);
    let index = Arc::new(BrePartitionIndex::build(kind, data, &config).unwrap());
    let cores = brepartition::engine::recommended_pool_threads();

    println!(
        "## {corpus}: {} points x {} dims, divergence {kind}, batch of {} queries, k={k}",
        data.len(),
        data.dim(),
        queries.len()
    );
    // Exact and approximate BrePartition behind the same trait.
    let backends: Vec<Arc<dyn SearchBackend>> = vec![
        Arc::new(BrePartitionBackend::exact(index.clone())),
        Arc::new(BrePartitionBackend::approximate(index, ApproximateConfig::with_probability(0.9))),
    ];
    for backend in backends {
        for threads in [1, cores] {
            let engine = QueryEngine::with_config(
                backend.clone(),
                EngineConfig::default().with_threads(threads),
            );
            let batch = engine.run_batch(queries, k).unwrap();
            println!("  {}", batch.report);
        }
    }
    println!();
}

fn main() {
    let k = 10;
    let batch = 256;

    // Corpus 1: positive spectral envelopes, Itakura-Saito distance.
    let speech = HierarchicalSpec {
        n: 3_000,
        dim: 64,
        clusters: 24,
        blocks: 8,
        base_scale: 4.0,
        ..Default::default()
    }
    .generate();
    let speech_queries: Vec<Vec<f64>> =
        QueryWorkload::perturbed_from(&speech, DivergenceKind::ItakuraSaito, batch, 0.02, 41)
            .iter()
            .map(|q| q.to_vec())
            .collect();

    // Corpus 2: embedding-style vectors, exponential distance.
    let embeddings =
        HierarchicalSpec { n: 3_000, dim: 48, clusters: 16, blocks: 6, ..Default::default() }
            .generate();
    let embedding_queries: Vec<Vec<f64>> =
        QueryWorkload::perturbed_from(&embeddings, DivergenceKind::Exponential, batch, 0.02, 42)
            .iter()
            .map(|q| q.to_vec())
            .collect();

    println!("# Batch serving across divergences\n");
    serve("speech", DivergenceKind::ItakuraSaito, &speech, &speech_queries, k);
    serve("embeddings", DivergenceKind::Exponential, &embeddings, &embedding_queries, k);
}
