//! Quickstart: describe an index with a spec, build it, query it, persist
//! it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use brepartition::prelude::*;

fn main() {
    // 1. Generate a small, strictly positive dataset (1,000 points of 64
    //    dimensions) with the hierarchical generator used by the evaluation
    //    proxies. Real applications would load their own feature vectors
    //    into a `DenseDataset`.
    let data =
        HierarchicalSpec { n: 1_000, dim: 64, clusters: 20, blocks: 8, ..Default::default() }
            .generate();
    println!("dataset: {} points x {} dimensions", data.len(), data.dim());

    // 2. Describe the index: the BrePartition method under the
    //    Itakura-Saito divergence. `PartitionCount::Auto` (the default)
    //    picks the optimized number of partitions from the paper's cost
    //    model; PCCP assigns dimensions to partitions. Swapping
    //    `Method::BBTree` or `Method::VaFile` into the same spec builds a
    //    baseline instead — nothing else changes.
    let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
        .with_page_size(16 * 1024)
        .with_leaf_capacity(32);
    let index = Index::build(&spec, &data).expect("index construction");
    println!(
        "index built: method {}, divergence {}, {} points x {} dims",
        index.method(),
        index.divergence(),
        index.len(),
        index.dim()
    );

    // 3. Run a few exact kNN queries and report the paper's metrics:
    //    candidate-set size, I/O cost (page reads) and latency.
    let workload = QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, 5, 0.02, 7);
    for (qi, query) in workload.iter().enumerate() {
        let result = index.query(&QueryRequest::new(query, 10)).expect("query");
        let best = result.neighbors.first().expect("at least one neighbour");
        println!(
            "query {qi}: 1-NN = {} (divergence {:.4}) | {} candidates, {} page reads, {:.3} ms",
            best.0,
            best.1,
            result.candidates,
            result.io.pages_read,
            result.latency_seconds * 1e3,
        );
    }

    // 4. Persist and reopen: the directory is self-describing (the spec
    //    envelope records method + divergence), so `Index::open` needs no
    //    caller-side dispatch.
    let dir = std::env::temp_dir().join(format!("brepartition-quickstart-{}", std::process::id()));
    index.save(&dir).expect("save index");
    let reopened = Index::open(&dir).expect("open index");
    println!(
        "\nreopened from {}: method {} under {} (read from the envelope)",
        dir.display(),
        reopened.method(),
        reopened.divergence()
    );

    // 5. Verify one query against brute force to demonstrate exactness.
    let query = data.row(123);
    let exact = ground_truth_knn(
        DivergenceKind::ItakuraSaito,
        &data,
        &DenseDataset::from_rows(&[query.to_vec()]).unwrap(),
        10,
        1,
    );
    let indexed = reopened.query(&QueryRequest::new(query, 10)).unwrap();
    let same =
        indexed.neighbors.iter().zip(exact.neighbors_of(0)).all(|(a, b)| (a.1 - b.1).abs() < 1e-9);
    println!("exactness check against linear scan: {}", if same { "OK" } else { "MISMATCH" });
    std::fs::remove_dir_all(&dir).expect("clean up");
}
