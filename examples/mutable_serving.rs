//! Online mutability end to end: build an index, insert and delete while
//! serving, compact, persist, reopen — the LSM-style delta layer through
//! the façade API.
//!
//! ```bash
//! cargo run --release --example mutable_serving
//! ```

use brepartition::prelude::*;

fn main() -> brepartition::Result<()> {
    println!("# Mutable serving: insert/delete/compact over a static backend\n");

    let data =
        HierarchicalSpec { n: 2_000, dim: 24, clusters: 12, blocks: 6, ..Default::default() }
            .generate();
    let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
        .with_partitions(6)
        .with_page_size(8 * 1024);
    let index = Index::build(&spec, &data)?;
    println!("built {} over {} points", index.method(), index.len());

    // A fresh document arrives and is immediately searchable, under a
    // stable external id that will survive every compaction below.
    let fresh: Vec<f64> = data.row(0).iter().map(|v| v * 1.01 + 0.05).collect();
    let id = index.insert(&fresh)?;
    let hit = index.query(&QueryRequest::new(&fresh, 1))?;
    assert_eq!(hit.neighbors[0].0, id, "the insert must be its own 1-NN");
    println!("inserted {id} — immediately served as its own nearest neighbor");

    // Retire a few points; they vanish from results at once, storage is
    // reclaimed later by compaction.
    for raw in [3u32, 77, 1500] {
        assert!(index.delete(PointId(raw))?);
    }
    println!(
        "after deletes: {} live points ({} delta rows, {} tombstones pending)",
        index.len(),
        index.delta().delta_rows(),
        index.delta().tombstone_count()
    );

    // Batch serving runs over a consistent snapshot of the mutable state.
    let queries: Vec<Vec<f64>> = (0..128).map(|i| data.row(i * 31 % data.len()).to_vec()).collect();
    let batch = index.run(&Request::uniform(&queries, 10))?;
    println!("snapshot batch — {}", batch.report);

    // Compaction folds the delta into a rebuilt backend; the external id
    // issued above keeps resolving.
    index.compact()?;
    let hit = index.query(&QueryRequest::new(&fresh, 1))?;
    assert_eq!(hit.neighbors[0].0, id, "external ids survive compaction");
    println!("compacted to {} live points; {id} still resolves", index.len());

    // Persist → reopen: the delta log travels with the directory.
    let more = index.insert(&data.row(9).iter().map(|v| v + 0.5).collect::<Vec<f64>>())?;
    let dir = std::env::temp_dir().join(format!("brepartition-mutable-{}", std::process::id()));
    index.save(&dir)?;
    let reopened = Index::open(&dir)?;
    assert_eq!(reopened.len(), index.len());
    assert!(reopened.delta().is_live(more));
    println!("reopened {} live points from {} (delta log replayed)", reopened.len(), dir.display());
    std::fs::remove_dir_all(&dir).map_err(PersistError::from)?;
    println!("\ndone");
    Ok(())
}
