//! Partition tuning: the cost model's optimum and the PCCP ablation.
//!
//! Reproduces, on a laptop-scale workload, the two design experiments of the
//! paper's Section 9.3: the trade-off between the number of partitions `M`
//! and query cost (Figs. 8–9), and the effect of PCCP versus a naive equal
//! split (Fig. 10) — every configuration described by an `IndexSpec` and
//! built through the same `Index::build` call.
//!
//! ```bash
//! cargo run --release --example partition_tuning
//! ```

use brepartition::prelude::*;

fn main() {
    let n = 3_000;
    let dim = 96;
    let k = 20;
    let query_count = 10;

    let data = HierarchicalSpec {
        n,
        dim,
        clusters: 30,
        blocks: 12,
        base_scale: 5.0,
        ..Default::default()
    }
    .generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, query_count, 0.02, 21);

    // The cost model's suggested optimum: the default spec leaves
    // `partitions` on Auto, which applies the paper's Theorem 4. (The core
    // index is consulted directly for the chosen M — an introspection the
    // façade intentionally keeps at the component layer.)
    let auto_index = BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        &data,
        &IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
            .with_page_size(16 * 1024)
            .brepartition_config(),
    )
    .unwrap();
    let auto_m = auto_index.partitions();
    println!("cost-model optimum: M = {auto_m}\n");

    // Average query cost of one spec over the workload.
    let run_spec = |spec: &IndexSpec| -> (f64, f64, f64) {
        let index = Index::build(spec, &data).unwrap();
        let mut io = 0u64;
        let mut candidates = 0usize;
        let mut seconds = 0.0;
        for query in workload.iter() {
            let result = index.query(&QueryRequest::new(query, k)).unwrap();
            io += result.io.pages_read;
            candidates += result.candidates;
            seconds += result.latency_seconds;
        }
        let q = query_count as f64;
        (io as f64 / q, candidates as f64 / q, seconds * 1e3 / q)
    };

    // Sweep M around the optimum (the shape of Figs. 8 and 9).
    println!("{:>4} {:>14} {:>16} {:>14}", "M", "avg I/O", "avg candidates", "avg time (ms)");
    for m in [2usize, 4, 8, 12, 16, 24, 32] {
        let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
            .with_partitions(m)
            .with_page_size(16 * 1024);
        let (io, candidates, ms) = run_spec(&spec);
        println!("{m:>4} {io:>14.1} {candidates:>16.1} {ms:>14.3}");
    }

    // PCCP vs the naive equal split at the optimum M (the Fig. 10 ablation).
    println!("\n{:<18} {:>14} {:>16}", "strategy", "avg I/O", "avg candidates");
    for (name, strategy) in [
        ("PCCP", PartitionStrategy::Pccp),
        ("equal/contiguous", PartitionStrategy::EqualContiguous),
    ] {
        let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
            .with_partitions(auto_m)
            .with_strategy(strategy)
            .with_page_size(16 * 1024);
        let (io, candidates, _) = run_spec(&spec);
        println!("{name:<18} {io:>14.1} {candidates:>16.1}");
    }
}
