//! Partition tuning: the cost model's optimum and the PCCP ablation.
//!
//! Reproduces, on a laptop-scale workload, the two design experiments of the
//! paper's Section 9.3: the trade-off between the number of partitions `M`
//! and query cost (Figs. 8–9), and the effect of PCCP versus a naive equal
//! split (Fig. 10).
//!
//! ```bash
//! cargo run --release --example partition_tuning
//! ```

use brepartition::prelude::*;

fn main() {
    let n = 3_000;
    let dim = 96;
    let k = 20;
    let query_count = 10;

    let data = HierarchicalSpec {
        n,
        dim,
        clusters: 30,
        blocks: 12,
        base_scale: 5.0,
        ..Default::default()
    }
    .generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, query_count, 0.02, 21);

    // The cost model's suggested optimum.
    let auto = BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        &data,
        &BrePartitionConfig::default().with_page_size(16 * 1024),
    )
    .unwrap();
    println!("cost-model optimum: M = {}\n", auto.partitions());

    // Sweep M around the optimum (the shape of Figs. 8 and 9).
    println!("{:>4} {:>14} {:>16} {:>14}", "M", "avg I/O", "avg candidates", "avg time (ms)");
    for m in [2usize, 4, 8, 12, 16, 24, 32] {
        let config = BrePartitionConfig::default().with_partitions(m).with_page_size(16 * 1024);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let mut io = 0u64;
        let mut candidates = 0usize;
        let mut seconds = 0.0;
        for query in workload.iter() {
            let result = index.knn(query, k).unwrap();
            io += result.stats.io.pages_read;
            candidates += result.stats.candidates;
            seconds += result.stats.total_seconds();
        }
        println!(
            "{:>4} {:>14.1} {:>16.1} {:>14.3}",
            m,
            io as f64 / query_count as f64,
            candidates as f64 / query_count as f64,
            seconds * 1e3 / query_count as f64
        );
    }

    // PCCP vs the naive equal split at the optimum M (the Fig. 10 ablation).
    println!("\n{:<18} {:>14} {:>16}", "strategy", "avg I/O", "avg candidates");
    for (name, strategy) in [
        ("PCCP", PartitionStrategy::Pccp),
        ("equal/contiguous", PartitionStrategy::EqualContiguous),
    ] {
        let config = BrePartitionConfig::default()
            .with_partitions(auto.partitions())
            .with_strategy(strategy)
            .with_page_size(16 * 1024);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let mut io = 0u64;
        let mut candidates = 0usize;
        for query in workload.iter() {
            let result = index.knn(query, k).unwrap();
            io += result.stats.io.pages_read;
            candidates += result.stats.candidates;
        }
        println!(
            "{:<18} {:>14.1} {:>16.1}",
            name,
            io as f64 / query_count as f64,
            candidates as f64 / query_count as f64
        );
    }
}
