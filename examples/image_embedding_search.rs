//! Image-embedding retrieval with the exponential distance, exact vs
//! approximate.
//!
//! Deep image embeddings (the paper's Deep/Sift workloads) are searched
//! with the exponential distance. This example builds **one exact
//! BrePartition index** and contrasts exact queries with per-query
//! approximation overrides (`QueryRequest::with_probability`) at several
//! guarantees — the same index serves every trade-off point, no rebuild,
//! no second backend — reporting the paper's accuracy metric (overall
//! ratio) next to the candidate-set and I/O savings.
//!
//! ```bash
//! cargo run --release --example image_embedding_search
//! ```

use brepartition::prelude::*;

fn main() {
    let n = 3_000;
    let dim = 128;
    let k = 20;
    let query_count = 15;

    // Simulated CNN embeddings: positive activations with block structure
    // (channels of the same layer region move together).
    let data = HierarchicalSpec {
        n,
        dim,
        clusters: 48,
        blocks: 16,
        base_scale: 1.5,
        ..Default::default()
    }
    .generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::Exponential, query_count, 0.02, 3);

    let spec = IndexSpec::brepartition(DivergenceKind::Exponential).with_page_size(32 * 1024);
    let index = Index::build(&spec, &data).unwrap();
    println!("image index: {n} embeddings x {dim} dims, method {}\n", index.method());

    // Ground truth for the accuracy metric.
    let truth = ground_truth_knn(DivergenceKind::Exponential, &data, &workload.queries, k, 4);

    // Exact search.
    let mut exact_io = 0u64;
    let mut exact_candidates = 0usize;
    for query in workload.iter() {
        let result = index.query(&QueryRequest::new(query, k)).unwrap();
        exact_io += result.io.pages_read;
        exact_candidates += result.candidates;
    }
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "method", "overall ratio", "avg candidates", "avg I/O (pages)"
    );
    println!(
        "{:<16} {:>14.4} {:>14.1} {:>14.1}",
        "exact (BP)",
        1.0,
        exact_candidates as f64 / query_count as f64,
        exact_io as f64 / query_count as f64
    );

    // Approximate search at several probability guarantees — the same
    // exact index, overridden per query.
    for p in [0.9, 0.8, 0.7] {
        let mut io = 0u64;
        let mut candidates = 0usize;
        let mut ratios = Vec::new();
        for (qi, query) in workload.iter().enumerate() {
            let result = index.query(&QueryRequest::new(query, k).with_probability(p)).unwrap();
            io += result.io.pages_read;
            candidates += result.candidates;
            ratios.push(overall_ratio(&result.neighbors, truth.neighbors_of(qi)));
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "{:<16} {:>14.4} {:>14.1} {:>14.1}",
            format!("ABP (p={p})"),
            mean_ratio,
            candidates as f64 / query_count as f64,
            io as f64 / query_count as f64
        );
    }

    println!("\nA ratio of 1.0 means the approximate answer is exact; the paper reports");
    println!("ratios between 1.0 and 1.4 on its Normal dataset with the same trade-off.");
}
