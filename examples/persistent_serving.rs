//! Build once, serve many: the persistent index lifecycle through the
//! spec-driven façade.
//!
//! A serving deployment cannot afford to rebuild its indexes from raw
//! vectors on every process start — index construction is an offline phase,
//! amortized over many queries. This example walks the full lifecycle for
//! **all four methods through the identical code path**:
//!
//! 1. **Build** each index from the same `IndexSpec` template (only the
//!    `Method` varies).
//! 2. **Save** every index to its own directory: backend artifacts plus a
//!    sealed spec envelope recording method + divergence + knobs.
//! 3. **Cold-open** the directories as a fresh serving process would — with
//!    `Index::open(dir)` alone; the envelope says what each directory
//!    holds, so there is no caller-side method or divergence dispatch.
//! 4. **Serve** a query batch on both copies and verify the reopened
//!    indexes return identical neighbors with identical physical I/O.
//!
//! ```bash
//! cargo run --release --example persistent_serving
//! ```

use std::time::Instant;

use brepartition::prelude::*;

fn main() {
    let kind = DivergenceKind::ItakuraSaito;
    let k = 10;

    // An Itakura-Saito corpus of spectral-envelope-like vectors.
    let corpus = HierarchicalSpec {
        n: 4_000,
        dim: 48,
        clusters: 20,
        blocks: 8,
        base_scale: 3.0,
        ..Default::default()
    }
    .generate();
    let queries: Vec<Vec<f64>> = QueryWorkload::perturbed_from(&corpus, kind, 128, 0.02, 77)
        .iter()
        .map(|q| q.to_vec())
        .collect();
    let root = std::env::temp_dir()
        .join(format!("brepartition-persistent-serving-{}", std::process::id()));

    println!("# Persistent serving: build once, open many\n");
    println!(
        "corpus: {} points x {} dims under {kind}, {} queries, k={k}\n",
        corpus.len(),
        corpus.dim(),
        queries.len()
    );

    // ── 1+2. Offline phase: one loop builds and saves all four methods. ──
    let mut built: Vec<Index> = Vec::new();
    for method in Method::ALL {
        let spec = IndexSpec::new(method, kind)
            .with_partitions(8)
            .with_leaf_capacity(32)
            .with_page_size(16 * 1024)
            .with_probability(0.9);
        let started = Instant::now();
        let index = Index::build(&spec, &corpus).expect("build index");
        let build_time = started.elapsed();
        let dir = root.join(method.short_name());
        let started = Instant::now();
        index.save(&dir).expect("save index");
        println!(
            "offline: built {:<3} in {:>8.2?}, saved to {} in {:.2?}",
            method.short_name(),
            build_time,
            dir.display(),
            started.elapsed()
        );
        built.push(index);
    }

    // ── 3. Serving phase: cold-open every directory, no dispatch. ───────
    let started = Instant::now();
    let reopened: Vec<Index> = Method::ALL
        .iter()
        .map(|method| Index::open(&root.join(method.short_name())).expect("cold open"))
        .collect();
    println!(
        "\nserving: cold-opened all four directories in {:.2?}; each envelope \
         self-describes its method and divergence\n",
        started.elapsed()
    );

    // ── 4. Drive batches and check the reopened copies answer verbatim. ──
    for (built_index, reopened_index) in built.iter().zip(reopened.iter()) {
        assert_eq!(built_index.spec(), reopened_index.spec(), "envelope restored the spec");
        let request = Request::uniform(&queries, k);
        let engine_config = EngineConfig::default().with_threads(4);
        let a = built_index.run_with(&request, engine_config).expect("batch on built index");
        let b = reopened_index.run_with(&request, engine_config).expect("batch on reopened index");
        let identical = a
            .outcomes
            .iter()
            .zip(b.outcomes.iter())
            .all(|(x, y)| x.neighbors == y.neighbors && x.io == y.io);
        println!(
            "  {:>3}: reopened index identical to built index: {} — {}",
            reopened_index.method().short_name(),
            if identical { "yes" } else { "NO" },
            b.report
        );
        assert!(identical, "reopened index diverged from the built index");
    }

    std::fs::remove_dir_all(&root).expect("clean up index directories");
    println!("\ndone; removed {}", root.display());
}
