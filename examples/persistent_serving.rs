//! Build once, serve many: the persistent index lifecycle.
//!
//! A serving deployment cannot afford to rebuild its indexes from raw
//! vectors on every process start — index construction is an offline phase,
//! amortized over many queries. This example walks the full lifecycle:
//!
//! 1. **Build** a BrePartition index (plus the BB-tree and VA-file
//!    baselines) over an Itakura-Saito corpus.
//! 2. **Save** every index to its own directory (versioned, checksummed
//!    files; see the `pagestore` crate docs for the on-disk format).
//! 3. **Cold-open** the directories as a fresh serving process would — the
//!    metadata loads into memory, the data pages stay on disk and are
//!    fetched through the buffer pool on demand.
//! 4. **Serve** a query batch through the engine on both copies and verify
//!    the reopened indexes return identical neighbors with identical
//!    physical I/O.
//!
//! ```bash
//! cargo run --release --example persistent_serving
//! ```

use std::sync::Arc;
use std::time::Instant;

use brepartition::prelude::*;

fn main() {
    let kind = DivergenceKind::ItakuraSaito;
    let k = 10;

    // An Itakura-Saito corpus of spectral-envelope-like vectors.
    let corpus = HierarchicalSpec {
        n: 4_000,
        dim: 48,
        clusters: 20,
        blocks: 8,
        base_scale: 3.0,
        ..Default::default()
    }
    .generate();
    let queries: Vec<Vec<f64>> = QueryWorkload::perturbed_from(&corpus, kind, 128, 0.02, 77)
        .iter()
        .map(|q| q.to_vec())
        .collect();
    let root = std::env::temp_dir()
        .join(format!("brepartition-persistent-serving-{}", std::process::id()));

    println!("# Persistent serving: build once, open many\n");
    println!(
        "corpus: {} points x {} dims under {kind}, {} queries, k={k}\n",
        corpus.len(),
        corpus.dim(),
        queries.len()
    );

    // ── 1. Offline phase: build and save. ───────────────────────────────
    let started = Instant::now();
    let config = BrePartitionConfig::default().with_partitions(8).with_page_size(16 * 1024);
    let bp = BrePartitionIndex::build(kind, &corpus, &config).expect("build BrePartition");
    let bp_build = started.elapsed();

    let started = Instant::now();
    bp.save(&root.join("bp")).expect("save BrePartition");
    let bp_save = started.elapsed();
    println!(
        "offline: built BP in {:.2?} ({} partitions, {} pages), saved in {:.2?}",
        bp_build,
        bp.partitions(),
        bp.forest().page_count(),
        bp_save
    );

    let bbt = BBTreeBackend::build(
        ItakuraSaito,
        &corpus,
        BBTreeConfig::with_leaf_capacity(32),
        PageStoreConfig::with_page_size(16 * 1024),
    );
    bbt.save(&root.join("bbt")).expect("save BB-tree");
    let vaf = VaFileBackend::build(
        ItakuraSaito,
        &corpus,
        VaFileConfig { page_size_bytes: 16 * 1024, ..VaFileConfig::default() },
    );
    vaf.save(&root.join("vaf")).expect("save VA-file");
    println!("offline: saved BBT and VAF baselines next to it\n");

    // ── 2. Serving phase: cold-open all four backends from disk. ────────
    let started = Instant::now();
    let bp_opened = Arc::new(BrePartitionBackend::open_exact(&root.join("bp")).expect("open BP"));
    let abp_opened = Arc::new(
        BrePartitionBackend::open_approximate(
            &root.join("bp"),
            ApproximateConfig::with_probability(0.9),
        )
        .expect("open ABP"),
    );
    let bbt_opened: Arc<dyn SearchBackend> =
        brepartition::engine::bbtree_backend_open_for_kind(kind, &root.join("bbt"))
            .expect("open BBT")
            .into();
    let vaf_opened: Arc<dyn SearchBackend> =
        brepartition::engine::vafile_backend_open_for_kind(kind, &root.join("vaf"))
            .expect("open VAF")
            .into();
    println!(
        "serving: cold-opened all four backends in {:.2?} (vs {:.2?} to rebuild BP alone)\n",
        started.elapsed(),
        bp_build
    );

    // ── 3. Drive batches and check the reopened copies answer verbatim. ──
    let built_backends: Vec<Arc<dyn SearchBackend>> =
        vec![Arc::new(BrePartitionBackend::exact(bp)), Arc::new(bbt), Arc::new(vaf)];
    let opened_backends: Vec<Arc<dyn SearchBackend>> =
        vec![bp_opened.clone(), bbt_opened.clone(), vaf_opened.clone()];
    for (built, opened) in built_backends.into_iter().zip(opened_backends) {
        let name = opened.name().to_string();
        let engine_config = EngineConfig::default().with_threads(4);
        let a = QueryEngine::with_config(built, engine_config)
            .run_batch(&queries, k)
            .expect("batch on built index");
        let b = QueryEngine::with_config(opened, engine_config)
            .run_batch(&queries, k)
            .expect("batch on reopened index");
        let identical = a
            .outcomes
            .iter()
            .zip(b.outcomes.iter())
            .all(|(x, y)| x.neighbors == y.neighbors && x.io == y.io);
        println!(
            "  {name:>3}: reopened index identical to built index: {} — {}",
            if identical { "yes" } else { "NO" },
            b.report
        );
        assert!(identical, "{name}: reopened index diverged from the built index");
    }

    // The approximate backend serves from the same reopened index directory.
    let abp_batch = QueryEngine::with_config(abp_opened, EngineConfig::default().with_threads(4))
        .run_batch(&queries, k)
        .expect("batch on reopened ABP");
    println!("  {:>3}: served from the same index directory — {}", "ABP", abp_batch.report);

    std::fs::remove_dir_all(&root).expect("clean up index directories");
    println!("\ndone; removed {}", root.display());
}
