//! Per-query and cumulative I/O counters.

use std::sync::Arc;

use telemetry::{Counter, Registry};

/// Counters describing the physical I/O performed through a
/// [`crate::BufferPool`].
///
/// `pages_read` is the paper's "I/O cost": the number of page fetches that
/// went to the (simulated) disk. Buffer-pool hits are tracked separately so
/// experiments can also report cache effectiveness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Physical page reads (buffer-pool misses).
    pub pages_read: u64,
    /// Logical reads served from the buffer pool.
    pub cache_hits: u64,
    /// Pages written while building an index or laying out data.
    pub pages_written: u64,
}

impl IoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total logical page accesses (hits + misses).
    pub fn logical_reads(&self) -> u64 {
        self.pages_read + self.cache_hits
    }

    /// Cache hit ratio in `[0, 1]`; zero when nothing was read.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.logical_reads();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Component-wise difference `self − earlier`, used to extract per-query
    /// costs from a cumulative counter.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
        }
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, other: &IoStats) {
        self.pages_read += other.pages_read;
        self.cache_hits += other.cache_hits;
        self.pages_written += other.pages_written;
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        *self = IoStats::default();
    }
}

/// Lock-free cumulative I/O counters shared between query threads.
///
/// Each worker accumulates per-query [`IoStats`] locally (through its own
/// [`crate::BufferPool`]) and folds them into one `AtomicIoStats` with
/// [`AtomicIoStats::record`]; readers take consistent-enough snapshots with
/// [`AtomicIoStats::snapshot`] without stopping the workers.
///
/// The counters are [`telemetry::Counter`]s, so a serving layer can
/// [`bind`](AtomicIoStats::bind) them into a [`telemetry::Registry`] and
/// have its metric snapshots observe the live totals directly — no
/// parallel ad-hoc accounting.
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    pages_read: Arc<Counter>,
    cache_hits: Arc<Counter>,
    pages_written: Arc<Counter>,
}

impl AtomicIoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one set of per-query counters into the running totals.
    pub fn record(&self, stats: &IoStats) {
        self.pages_read.add(stats.pages_read);
        self.cache_hits.add(stats.cache_hits);
        self.pages_written.add(stats.pages_written);
    }

    /// The current totals as a plain [`IoStats`] value.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            pages_read: self.pages_read.get(),
            cache_hits: self.cache_hits.get(),
            pages_written: self.pages_written.get(),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.pages_read.reset();
        self.cache_hits.reset();
        self.pages_written.reset();
    }

    /// The shared counter behind `pages_read`.
    pub fn pages_read_counter(&self) -> &Arc<Counter> {
        &self.pages_read
    }

    /// The shared counter behind `cache_hits`.
    pub fn cache_hits_counter(&self) -> &Arc<Counter> {
        &self.cache_hits
    }

    /// The shared counter behind `pages_written`.
    pub fn pages_written_counter(&self) -> &Arc<Counter> {
        &self.pages_written
    }

    /// Register the three counters under `prefix.pages_read`,
    /// `prefix.cache_hits` and `prefix.pages_written`; registry snapshots
    /// then read the same atomics [`record`](AtomicIoStats::record) writes.
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.pages_read"), self.pages_read.clone());
        registry.register_counter(&format!("{prefix}.cache_hits"), self.cache_hits.clone());
        registry.register_counter(&format!("{prefix}.pages_written"), self.pages_written.clone());
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} page reads, {} cache hits ({:.1}% hit ratio), {} pages written",
            self.pages_read,
            self.cache_hits,
            self.hit_ratio() * 100.0,
            self.pages_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_reads_and_hit_ratio() {
        let s = IoStats { pages_read: 3, cache_hits: 7, pages_written: 0 };
        assert_eq!(s.logical_reads(), 10);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(IoStats::new().hit_ratio(), 0.0);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let before = IoStats { pages_read: 10, cache_hits: 5, pages_written: 2 };
        let after = IoStats { pages_read: 25, cache_hits: 9, pages_written: 2 };
        let delta = after.since(&before);
        assert_eq!(delta, IoStats { pages_read: 15, cache_hits: 4, pages_written: 0 });
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let before = IoStats { pages_read: 10, cache_hits: 0, pages_written: 0 };
        let after = IoStats::default();
        assert_eq!(after.since(&before).pages_read, 0);
    }

    #[test]
    fn accumulate_and_reset() {
        let mut total = IoStats::default();
        total.accumulate(&IoStats { pages_read: 2, cache_hits: 1, pages_written: 4 });
        total.accumulate(&IoStats { pages_read: 3, cache_hits: 0, pages_written: 0 });
        assert_eq!(total, IoStats { pages_read: 5, cache_hits: 1, pages_written: 4 });
        total.reset();
        assert_eq!(total, IoStats::default());
    }

    #[test]
    fn atomic_stats_accumulate_across_threads() {
        let shared = AtomicIoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for _ in 0..100 {
                        shared.record(&IoStats { pages_read: 2, cache_hits: 1, pages_written: 0 });
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap, IoStats { pages_read: 800, cache_hits: 400, pages_written: 0 });
        shared.reset();
        assert_eq!(shared.snapshot(), IoStats::default());
    }

    #[test]
    fn bound_registry_observes_live_totals() {
        let shared = AtomicIoStats::new();
        let registry = Registry::new();
        shared.bind(&registry, "engine.io");
        shared.record(&IoStats { pages_read: 5, cache_hits: 2, pages_written: 1 });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.io.pages_read"), Some(5));
        assert_eq!(snap.counter("engine.io.cache_hits"), Some(2));
        assert_eq!(snap.counter("engine.io.pages_written"), Some(1));
        // The registry holds the same atomics, not copies.
        shared.record(&IoStats { pages_read: 1, cache_hits: 0, pages_written: 0 });
        assert_eq!(registry.snapshot().counter("engine.io.pages_read"), Some(6));
        assert_eq!(shared.pages_read_counter().get(), 6);
        assert_eq!(shared.cache_hits_counter().get(), 2);
        assert_eq!(shared.pages_written_counter().get(), 1);
    }

    #[test]
    fn display_contains_counts() {
        let s = IoStats { pages_read: 3, cache_hits: 1, pages_written: 2 };
        let text = s.to_string();
        assert!(text.contains("3 page reads"));
        assert!(text.contains("2 pages written"));
    }
}
