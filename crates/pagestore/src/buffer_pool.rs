//! LRU buffer pool with I/O accounting.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::io_stats::IoStats;
use crate::page::PageId;
use crate::store::PageStore;
use crate::PointId;

/// An LRU page cache in front of a [`PageStore`].
///
/// Every access that is not already cached counts as one physical page read
/// in the attached [`IoStats`]; cached accesses count as hits. The pool is
/// the *only* sanctioned read path for indexes, which is how every index in
/// this repository reports the paper's I/O-cost metric.
///
/// Cached pages are held by value (pages are cheap to clone — their payload
/// and id list are reference-counted), so the pool works identically over
/// the in-memory backend and the file backend: a miss asks the store for a
/// physical page, a hit serves the pool's own copy without touching the
/// store at all.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Pages currently resident.
    resident: HashMap<PageId, crate::page::Page>,
    /// LRU order: front = least recently used.
    lru: VecDeque<PageId>,
    stats: IoStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    ///
    /// A capacity of zero is the *unbuffered* pool: nothing is ever cached,
    /// every access is counted as a physical page read, and
    /// [`BufferPool::resident_pages`] stays at zero. This is how the
    /// per-query I/O numbers in the paper's figures are measured.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            resident: HashMap::with_capacity(capacity),
            lru: VecDeque::with_capacity(capacity),
            stats: IoStats::default(),
        }
    }

    /// A pool that never caches (each access is a physical page read).
    pub fn unbuffered() -> Self {
        Self::new(0)
    }

    /// The configured capacity in pages (zero = unbuffered).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this pool caches nothing (capacity zero).
    pub fn is_unbuffered(&self) -> bool {
        self.capacity == 0
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reset the I/O counters (e.g. between queries).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop every cached page but keep the statistics.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.lru.clear();
    }

    /// Number of pages currently cached.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Touch a page: record the access, updating LRU state and counters, and
    /// return the page. Returns `None` for an unknown page id.
    pub fn fetch(&mut self, store: &PageStore, id: PageId) -> Option<crate::page::Page> {
        // Unbuffered mode: every access is a counted physical read and the
        // pool never retains a page.
        if self.capacity == 0 {
            let page = store.raw_page(id)?;
            self.stats.pages_read += 1;
            return Some(page);
        }
        if let Some(page) = self.resident.get(&id) {
            let page = page.clone();
            self.stats.cache_hits += 1;
            // Move to the back of the LRU queue.
            if let Some(pos) = self.lru.iter().position(|&p| p == id) {
                self.lru.remove(pos);
            }
            self.lru.push_back(id);
            return Some(page);
        }
        let page = store.raw_page(id)?;
        self.stats.pages_read += 1;
        if self.resident.len() >= self.capacity {
            if let Some(evicted) = self.lru.pop_front() {
                self.resident.remove(&evicted);
            }
        }
        self.resident.insert(id, page.clone());
        self.lru.push_back(id);
        Some(page)
    }

    /// Read one point through the pool, decoding its coordinates.
    pub fn read_point(&mut self, store: &PageStore, point: PointId) -> Option<Vec<f64>> {
        let addr = store.address_of(point)?;
        let page = self.fetch(store, addr.page)?;
        Some(page.decode_slot(addr.slot as usize))
    }

    /// Read one point through the pool into a caller-provided buffer.
    pub fn read_point_into(
        &mut self,
        store: &PageStore,
        point: PointId,
        out: &mut Vec<f64>,
    ) -> bool {
        match store.address_of(point) {
            Some(addr) => match self.fetch(store, addr.page) {
                Some(page) => {
                    page.decode_slot_into(addr.slot as usize, out);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Read a batch of points, visiting pages in first-seen order so that
    /// points co-located on a page cost a single physical read. Returns the
    /// decoded points in the same order as `points`.
    pub fn read_points(
        &mut self,
        store: &PageStore,
        points: &[PointId],
    ) -> Vec<(PointId, Vec<f64>)> {
        let groups = store.layout().pages_for(points);
        let mut by_id: HashMap<PointId, Vec<f64>> = HashMap::with_capacity(points.len());
        for (page_id, members) in groups {
            if let Some(page) = self.fetch(store, page_id) {
                for pid in members {
                    if let Some(slot) = page.slot_of(pid) {
                        by_id.insert(pid, page.decode_slot(slot));
                    }
                }
            }
        }
        points.iter().filter_map(|pid| by_id.remove(pid).map(|coords| (*pid, coords))).collect()
    }

    /// Visit a batch of points with the same first-seen page-grouped I/O
    /// pattern as [`BufferPool::read_points`], but without allocating per
    /// point: each point is decoded into the caller-provided `coords`
    /// buffer and handed to `f` as a borrowed slice. Points are therefore
    /// visited in page-major order, not in `points` order; unknown ids are
    /// skipped. Unlike `read_points` (which returns each requested id at
    /// most once), a duplicated id in `points` is visited once per
    /// occurrence — callers pass deduplicated candidate lists. This is the
    /// refine-phase hot path of every index in the workspace.
    pub fn read_points_with(
        &mut self,
        store: &PageStore,
        points: &[PointId],
        coords: &mut Vec<f64>,
        f: &mut dyn FnMut(PointId, &[f64]),
    ) {
        for (page_id, members) in store.layout().pages_for(points) {
            if let Some(page) = self.fetch(store, page_id) {
                for pid in members {
                    // `pages_for` resolved every member through the layout,
                    // so the address exists; re-reading it yields the slot
                    // in O(1) where `Page::slot_of` would scan the page's
                    // id list per candidate.
                    if let Some(addr) = store.address_of(pid) {
                        page.decode_slot_into(addr.slot as usize, coords);
                        f(pid, coords);
                    }
                }
            }
        }
    }
}

/// A [`BufferPool`] behind a mutex, for experiment harnesses that issue
/// queries from multiple threads against a shared store.
#[derive(Debug)]
pub struct SharedBufferPool {
    inner: Mutex<BufferPool>,
}

impl SharedBufferPool {
    /// Wrap a pool for shared use.
    pub fn new(pool: BufferPool) -> Self {
        Self { inner: Mutex::new(pool) }
    }

    /// Run a closure with exclusive access to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut BufferPool) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Snapshot the current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats()
    }

    /// Reset the I/O counters.
    pub fn reset_stats(&self) {
        self.inner.lock().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{PageStore, PageStoreConfig};

    fn store(n: usize, dim: usize, per_page: usize) -> (PageStore, Vec<Vec<f64>>) {
        let data: Vec<Vec<f64>> =
            (0..n).map(|i| (0..dim).map(|j| (i * dim + j) as f64).collect()).collect();
        let config = PageStoreConfig::with_page_size(dim * 8 * per_page);
        let s = PageStore::build_sequential(config, dim, n, |pid| &data[pid as usize]);
        (s, data)
    }

    #[test]
    fn unbuffered_counts_every_access_as_physical_read() {
        let (s, data) = store(6, 2, 2);
        let mut pool = BufferPool::unbuffered();
        assert!(pool.is_unbuffered());
        assert_eq!(pool.capacity(), 0);
        for pid in 0..6u32 {
            assert_eq!(pool.read_point(&s, pid).unwrap(), data[pid as usize]);
        }
        assert_eq!(pool.stats().pages_read, 6);
        assert_eq!(pool.stats().cache_hits, 0);
    }

    #[test]
    fn capacity_zero_never_retains_pages() {
        // The unbuffered pool is not a degenerate LRU: repeated access to
        // the same page stays a counted miss and nothing becomes resident.
        let (s, _) = store(6, 2, 2);
        let mut pool = BufferPool::new(0);
        for _ in 0..3 {
            pool.read_point(&s, 0);
        }
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stats().pages_read, 3);
        assert_eq!(pool.stats().cache_hits, 0);
        // Batched reads still coalesce points within one visit of a page…
        let result = pool.read_points(&s, &[0, 1, 4]);
        assert_eq!(result.len(), 3);
        assert_eq!(pool.stats().pages_read, 5); // pages {0,1} and {4,5}
                                                // …but the pool stays empty afterwards.
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn cached_rereads_are_hits() {
        let (s, _) = store(6, 2, 2);
        let mut pool = BufferPool::new(8);
        pool.read_point(&s, 0);
        pool.read_point(&s, 1); // same page as 0
        pool.read_point(&s, 2); // new page
        assert_eq!(pool.stats().pages_read, 2);
        assert_eq!(pool.stats().cache_hits, 1);
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn lru_evicts_oldest_page() {
        let (s, _) = store(8, 2, 2); // pages: {0,1},{2,3},{4,5},{6,7}
        let mut pool = BufferPool::new(2);
        pool.read_point(&s, 0); // page 0 in
        pool.read_point(&s, 2); // page 1 in
        pool.read_point(&s, 4); // page 2 in, page 0 evicted
        pool.read_point(&s, 0); // page 0 again: physical read
        assert_eq!(pool.stats().pages_read, 4);
        assert_eq!(pool.stats().cache_hits, 0);
    }

    #[test]
    fn lru_refreshes_recency_on_hit() {
        let (s, _) = store(8, 2, 2);
        let mut pool = BufferPool::new(2);
        pool.read_point(&s, 0); // page 0
        pool.read_point(&s, 2); // page 1
        pool.read_point(&s, 1); // hit page 0, making page 1 the LRU victim
        pool.read_point(&s, 4); // page 2 in, evicts page 1
        pool.read_point(&s, 0); // page 0 should still be resident
        assert_eq!(pool.stats().cache_hits, 2);
        assert_eq!(pool.stats().pages_read, 3);
    }

    #[test]
    fn batched_read_costs_one_read_per_page() {
        let (s, data) = store(10, 3, 5); // pages: {0..4},{5..9}
        let mut pool = BufferPool::unbuffered();
        let result = pool.read_points(&s, &[0, 1, 2, 7, 8]);
        assert_eq!(result.len(), 5);
        assert_eq!(pool.stats().pages_read, 2);
        for (pid, coords) in result {
            assert_eq!(coords, data[pid as usize]);
        }
    }

    #[test]
    fn read_points_with_matches_read_points_and_io() {
        let (s, data) = store(10, 3, 5); // pages: {0..4},{5..9}
        let ids = [7u32, 0, 1, 8, 2, 99];
        let mut pool_a = BufferPool::unbuffered();
        let expected = pool_a.read_points(&s, &ids);
        let mut pool_b = BufferPool::unbuffered();
        let mut coords = Vec::new();
        let mut seen: Vec<(u32, Vec<f64>)> = Vec::new();
        pool_b.read_points_with(&s, &ids, &mut coords, &mut |pid, c| {
            seen.push((pid, c.to_vec()));
        });
        // Identical I/O pattern (first-seen page grouping) and identical
        // point set; the visit order is page-major.
        assert_eq!(pool_a.stats(), pool_b.stats());
        assert_eq!(seen.len(), expected.len());
        assert_eq!(
            seen.iter().map(|(p, _)| *p).collect::<std::collections::HashSet<_>>(),
            expected.iter().map(|(p, _)| *p).collect::<std::collections::HashSet<_>>()
        );
        for (pid, c) in &seen {
            assert_eq!(c, &data[*pid as usize]);
        }
        assert_eq!(seen[0].0, 7, "page of the first-seen point is visited first");
    }

    #[test]
    fn read_point_into_and_missing_points() {
        let (s, data) = store(4, 2, 2);
        let mut pool = BufferPool::new(2);
        let mut buf = Vec::new();
        assert!(pool.read_point_into(&s, 3, &mut buf));
        assert_eq!(buf, data[3]);
        assert!(!pool.read_point_into(&s, 100, &mut buf));
        assert!(pool.read_point(&s, 100).is_none());
    }

    #[test]
    fn reset_and_clear() {
        let (s, _) = store(4, 2, 2);
        let mut pool = BufferPool::new(2);
        pool.read_point(&s, 0);
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn shared_pool_is_usable_from_threads() {
        let (s, _) = store(16, 2, 2);
        let shared = SharedBufferPool::new(BufferPool::new(4));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let shared = &shared;
                let s = &s;
                scope.spawn(move || {
                    for i in 0..4u32 {
                        shared.with(|pool| pool.read_point(s, t * 4 + i));
                    }
                });
            }
        });
        let stats = shared.stats();
        assert_eq!(stats.logical_reads(), 16);
        shared.reset_stats();
        assert_eq!(shared.stats(), IoStats::default());
    }
}
