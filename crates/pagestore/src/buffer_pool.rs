//! Scan-resistant buffer pool with I/O accounting.
//!
//! The replacement policy is **SIEVE** (lazy promotion + quick demotion):
//! a hit only sets a per-page `visited` bit — O(1), no list surgery — and
//! eviction walks a hand from the oldest page toward the newest, clearing
//! `visited` bits until it finds a cold page. One sequential scan through
//! the store therefore cannot flush the working set the way it does under
//! plain LRU: scanned-once pages are never promoted past pages that keep
//! getting re-referenced, and pages explicitly *pinned* (hot refine leaves)
//! are never evicted at all.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::PageStoreError;
use crate::io_stats::IoStats;
use crate::page::{Page, PageId};
use crate::store::PageStore;
use crate::PointId;

/// Sentinel for "no node" in the intrusive recency list.
const NIL: usize = usize::MAX;

/// One resident page in the [`SieveCache`] slab.
#[derive(Debug)]
struct Node {
    id: PageId,
    page: Page,
    /// Set on every hit; cleared (once) by the eviction hand.
    visited: bool,
    /// Pinned pages are skipped by the eviction hand.
    pinned: bool,
    /// Neighbour toward the tail (older).
    older: usize,
    /// Neighbour toward the head (newer).
    newer: usize,
}

/// The SIEVE replacement state: a slab of nodes threaded into an
/// insertion-order list (head = newest) plus the eviction hand.
///
/// Every operation is O(1) amortized: hits touch one bit, inserts splice at
/// the head, and the hand's total movement is bounded by the number of
/// insertions (each `visited` bit it clears was set by a distinct hit).
#[derive(Debug)]
struct SieveCache {
    capacity: usize,
    nodes: Vec<Node>,
    map: HashMap<PageId, usize>,
    /// Newest node.
    head: usize,
    /// Oldest node (where the hand starts).
    tail: usize,
    /// Eviction hand; `NIL` restarts at the tail.
    hand: usize,
    /// Recycled slab indices.
    free: Vec<usize>,
    /// Number of pinned resident pages.
    pinned: usize,
}

impl SieveCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            nodes: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            hand: NIL,
            free: Vec::new(),
            pinned: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Look a page up; a hit marks it visited (no list movement).
    fn get(&mut self, id: PageId) -> Option<Page> {
        let &idx = self.map.get(&id)?;
        self.nodes[idx].visited = true;
        Some(self.nodes[idx].page.clone())
    }

    /// Make a page resident, evicting if full. Returns `false` when nothing
    /// could be evicted (every resident page is pinned); the caller then
    /// serves the page without caching it.
    fn insert(&mut self, id: PageId, page: Page) -> bool {
        debug_assert!(self.capacity > 0, "capacity-0 pools never reach the cache");
        if self.map.len() >= self.capacity && !self.evict_one() {
            return false;
        }
        let node = Node { id, page, visited: false, pinned: false, older: self.head, newer: NIL };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].newer = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.map.insert(id, idx);
        true
    }

    /// Advance the hand from the oldest page toward the newest, clearing
    /// `visited` bits, and evict the first cold unpinned page. Returns
    /// `false` iff every resident page is pinned.
    fn evict_one(&mut self) -> bool {
        if self.pinned >= self.map.len() {
            return false;
        }
        let mut cursor = if self.hand != NIL { self.hand } else { self.tail };
        // Two full passes always suffice (pass one clears every bit the
        // hand crosses); the explicit bound keeps the walk finite even if
        // an invariant is ever violated.
        for _ in 0..(2 * self.map.len() + 4) {
            if cursor == NIL {
                cursor = self.tail;
                continue;
            }
            let node = &mut self.nodes[cursor];
            if node.pinned {
                cursor = node.newer;
            } else if node.visited {
                node.visited = false;
                cursor = node.newer;
            } else {
                self.hand = node.newer;
                self.unlink(cursor);
                return true;
            }
        }
        false
    }

    /// Remove a node from the list, the map and the slab.
    fn unlink(&mut self, idx: usize) {
        let (id, older, newer) = {
            let node = &self.nodes[idx];
            (node.id, node.older, node.newer)
        };
        if older != NIL {
            self.nodes[older].newer = newer;
        } else {
            self.tail = newer;
        }
        if newer != NIL {
            self.nodes[newer].older = older;
        } else {
            self.head = older;
        }
        self.map.remove(&id);
        self.free.push(idx);
    }

    /// Pin a resident page (no-op counterpart: [`SieveCache::unpin`]).
    /// Returns whether the page was resident.
    fn pin(&mut self, id: PageId) -> bool {
        match self.map.get(&id) {
            Some(&idx) => {
                if !self.nodes[idx].pinned {
                    self.nodes[idx].pinned = true;
                    self.pinned += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Make a pinned page evictable again.
    fn unpin(&mut self, id: PageId) {
        if let Some(&idx) = self.map.get(&id) {
            if self.nodes[idx].pinned {
                self.nodes[idx].pinned = false;
                self.pinned -= 1;
            }
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.map.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hand = NIL;
        self.pinned = 0;
    }
}

/// A page cache shareable between several [`BufferPool`] handles (the warm
/// serving tier: every engine worker reads through one cache, so a page
/// faulted by any worker is a hit for all of them). Cloning shares the
/// cache; I/O counters stay *per handle* in each `BufferPool`.
#[derive(Debug, Clone)]
pub struct SharedPageCache {
    inner: Arc<Mutex<SieveCache>>,
    capacity: usize,
}

impl SharedPageCache {
    /// A shared cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        Self { inner: Arc::new(Mutex::new(SieveCache::new(capacity))), capacity }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().len()
    }
}

/// Where a [`BufferPool`] keeps its resident pages.
#[derive(Debug)]
enum CacheSlot {
    /// This handle owns its cache (the default).
    Private(SieveCache),
    /// Several handles share one cache behind a mutex.
    Shared(SharedPageCache),
}

/// A scan-resistant (SIEVE) page cache in front of a [`PageStore`].
///
/// Every access that is not already cached counts as one physical page read
/// in the attached [`IoStats`]; cached accesses count as hits. The pool is
/// the *only* sanctioned read path for indexes, which is how every index in
/// this repository reports the paper's I/O-cost metric.
///
/// Cached pages are held by value (pages are cheap to clone — their payload
/// and id list are reference-counted), so the pool works identically over
/// the in-memory backend and the file backend: a miss asks the store for a
/// physical page, a hit serves the pool's own copy without touching the
/// store at all. Pages can be [pinned](BufferPool::pin_page) so the
/// eviction hand never reclaims them; when the pool is full of pinned
/// pages, further misses are served (and counted) without caching.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    slot: CacheSlot,
    stats: IoStats,
    /// Optional io-phase telemetry: when attached, every *physical* page
    /// read (a miss that reaches the store) is timed into this histogram.
    /// Hits are never timed — they touch no storage.
    read_latency: Option<Arc<telemetry::Histogram>>,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    ///
    /// A capacity of zero is the *unbuffered* pool: nothing is ever cached,
    /// every access is counted as a physical page read, and
    /// [`BufferPool::resident_pages`] stays at zero. This is how the
    /// per-query I/O numbers in the paper's figures are measured.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slot: CacheSlot::Private(SieveCache::new(capacity)),
            stats: IoStats::default(),
            read_latency: None,
        }
    }

    /// A pool that never caches (each access is a physical page read).
    pub fn unbuffered() -> Self {
        Self::new(0)
    }

    /// A handle reading through an existing [`SharedPageCache`]. The
    /// handle's [`IoStats`] remain its own: pages faulted in by *other*
    /// handles of the same cache count as this handle's hits.
    pub fn with_shared_cache(cache: SharedPageCache) -> Self {
        Self {
            capacity: cache.capacity(),
            slot: CacheSlot::Shared(cache),
            stats: IoStats::default(),
            read_latency: None,
        }
    }

    /// Attach an io-phase latency sink: every physical page read this pool
    /// performs from now on is timed into `histogram` (hits are free and
    /// are not timed). The serving engine attaches its shared io-phase
    /// histogram here, so pool handles created per query or per worker all
    /// feed one distribution.
    pub fn set_read_latency_sink(&mut self, histogram: Arc<telemetry::Histogram>) {
        self.read_latency = Some(histogram);
    }

    /// The attached io-phase latency sink, if any (used to re-attach when a
    /// pool handle is replaced between queries).
    pub fn read_latency_sink(&self) -> Option<&Arc<telemetry::Histogram>> {
        self.read_latency.as_ref()
    }

    /// The configured capacity in pages (zero = unbuffered).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this pool caches nothing (capacity zero).
    pub fn is_unbuffered(&self) -> bool {
        self.capacity == 0
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reset the I/O counters (e.g. between queries).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop every cached page but keep the statistics. On a shared-cache
    /// handle this clears the shared cache (affecting every handle).
    pub fn clear(&mut self) {
        match &mut self.slot {
            CacheSlot::Private(cache) => cache.clear(),
            CacheSlot::Shared(shared) => shared.inner.lock().clear(),
        }
    }

    /// Number of pages currently cached.
    pub fn resident_pages(&self) -> usize {
        match &self.slot {
            CacheSlot::Private(cache) => cache.len(),
            CacheSlot::Shared(shared) => shared.resident_pages(),
        }
    }

    /// Number of currently pinned pages.
    pub fn pinned_pages(&self) -> usize {
        match &self.slot {
            CacheSlot::Private(cache) => cache.pinned,
            CacheSlot::Shared(shared) => shared.inner.lock().pinned,
        }
    }

    /// Fetch a page (counted as usual) and pin it: the eviction hand will
    /// never reclaim it until [`BufferPool::unpin_page`]. Returns `false`
    /// if the page does not exist, the pool is unbuffered, or the page
    /// could not be made resident (pool full of pinned pages).
    pub fn pin_page(&mut self, store: &PageStore, id: PageId) -> bool {
        if self.capacity == 0 || self.fetch(store, id).is_none() {
            return false;
        }
        match &mut self.slot {
            CacheSlot::Private(cache) => cache.pin(id),
            CacheSlot::Shared(shared) => shared.inner.lock().pin(id),
        }
    }

    /// Make a pinned page ordinary (evictable) again.
    pub fn unpin_page(&mut self, id: PageId) {
        match &mut self.slot {
            CacheSlot::Private(cache) => cache.unpin(id),
            CacheSlot::Shared(shared) => shared.inner.lock().unpin(id),
        }
    }

    /// Touch a page: record the access, updating replacement state and
    /// counters, and return the page. Returns `None` for an unknown page id.
    ///
    /// # Panics
    ///
    /// Panics if the physical read fails after a successful open (bit rot
    /// caught by the backing file's per-page checksum, or a device error);
    /// fallible read paths use [`BufferPool::try_fetch`] instead.
    pub fn fetch(&mut self, store: &PageStore, id: PageId) -> Option<Page> {
        self.try_fetch(store, id).unwrap_or_else(|e| panic!("buffer pool read failed: {e}"))
    }

    /// [`BufferPool::fetch`], but a physical read that fails (post-open bit
    /// rot caught by a page checksum, or a device error) is reported as a
    /// [`PageStoreError`] instead of panicking. `Ok(None)` still means
    /// "unknown page id". A failed read is neither cached nor counted.
    pub fn try_fetch(
        &mut self,
        store: &PageStore,
        id: PageId,
    ) -> Result<Option<Page>, PageStoreError> {
        // Unbuffered mode: every access is a counted physical read and the
        // pool never retains a page.
        if self.capacity == 0 {
            let Some(page) = Self::timed_read(&self.read_latency, store, id)? else {
                return Ok(None);
            };
            self.stats.pages_read += 1;
            return Ok(Some(page));
        }
        match &mut self.slot {
            CacheSlot::Private(cache) => {
                Self::fetch_cached(cache, &mut self.stats, &self.read_latency, store, id)
            }
            CacheSlot::Shared(shared) => {
                let mut cache = shared.inner.lock();
                Self::fetch_cached(&mut cache, &mut self.stats, &self.read_latency, store, id)
            }
        }
    }

    fn fetch_cached(
        cache: &mut SieveCache,
        stats: &mut IoStats,
        read_latency: &Option<Arc<telemetry::Histogram>>,
        store: &PageStore,
        id: PageId,
    ) -> Result<Option<Page>, PageStoreError> {
        if let Some(page) = cache.get(id) {
            stats.cache_hits += 1;
            return Ok(Some(page));
        }
        let Some(page) = Self::timed_read(read_latency, store, id)? else {
            return Ok(None);
        };
        stats.pages_read += 1;
        cache.insert(id, page.clone());
        Ok(Some(page))
    }

    /// A physical store read, timed into the io-phase sink when attached.
    fn timed_read(
        read_latency: &Option<Arc<telemetry::Histogram>>,
        store: &PageStore,
        id: PageId,
    ) -> Result<Option<Page>, PageStoreError> {
        match read_latency {
            Some(histogram) => {
                let started = std::time::Instant::now();
                let page = store.try_raw_page(id);
                histogram.record_duration(started.elapsed());
                page
            }
            None => store.try_raw_page(id),
        }
    }

    /// Read one point through the pool, decoding its coordinates.
    pub fn read_point(&mut self, store: &PageStore, point: PointId) -> Option<Vec<f64>> {
        let addr = store.address_of(point)?;
        let page = self.fetch(store, addr.page)?;
        Some(page.decode_slot(addr.slot as usize))
    }

    /// Read one point through the pool into a caller-provided buffer.
    pub fn read_point_into(
        &mut self,
        store: &PageStore,
        point: PointId,
        out: &mut Vec<f64>,
    ) -> bool {
        match store.address_of(point) {
            Some(addr) => match self.fetch(store, addr.page) {
                Some(page) => {
                    page.decode_slot_into(addr.slot as usize, out);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Read a batch of points, visiting pages in first-seen order so that
    /// points co-located on a page cost a single physical read. Returns the
    /// decoded points in the same order as `points`.
    pub fn read_points(
        &mut self,
        store: &PageStore,
        points: &[PointId],
    ) -> Vec<(PointId, Vec<f64>)> {
        let groups = store.layout().pages_for(points);
        let mut by_id: HashMap<PointId, Vec<f64>> = HashMap::with_capacity(points.len());
        for (page_id, members) in groups {
            if let Some(page) = self.fetch(store, page_id) {
                for pid in members {
                    if let Some(slot) = page.slot_of(pid) {
                        by_id.insert(pid, page.decode_slot(slot));
                    }
                }
            }
        }
        points.iter().filter_map(|pid| by_id.remove(pid).map(|coords| (*pid, coords))).collect()
    }

    /// Visit a batch of points with the same first-seen page-grouped I/O
    /// pattern as [`BufferPool::read_points`], but without allocating per
    /// point: each point is decoded into the caller-provided `coords`
    /// buffer and handed to `f` as a borrowed slice. Points are therefore
    /// visited in page-major order, not in `points` order; unknown ids are
    /// skipped. Unlike `read_points` (which returns each requested id at
    /// most once), a duplicated id in `points` is visited once per
    /// occurrence — callers pass deduplicated candidate lists. This is the
    /// per-point refine path; the batched SIMD refine goes through
    /// [`BufferPool::read_points_block`].
    ///
    /// A physical read that fails mid-batch (post-open bit rot caught by a
    /// page checksum, or a device error) aborts the batch with a
    /// descriptive [`PageStoreError`] — the query layer reports it instead
    /// of serving a silently incomplete candidate set.
    pub fn read_points_with(
        &mut self,
        store: &PageStore,
        points: &[PointId],
        coords: &mut Vec<f64>,
        f: &mut dyn FnMut(PointId, &[f64]),
    ) -> Result<(), PageStoreError> {
        for (page_id, members) in store.layout().pages_for(points) {
            if let Some(page) = self.try_fetch(store, page_id)? {
                for pid in members {
                    // `pages_for` resolved every member through the layout,
                    // so the address exists; re-reading it yields the slot
                    // in O(1) where `Page::slot_of` would scan the page's
                    // id list per candidate.
                    if let Some(addr) = store.address_of(pid) {
                        page.decode_slot_into(addr.slot as usize, coords);
                        f(pid, coords);
                    }
                }
            }
        }
        Ok(())
    }

    /// Visit a batch of points one decoded *page group* at a time: the same
    /// first-seen page-grouped I/O pattern as
    /// [`BufferPool::read_points_with`], but each group is decoded into
    /// `lanes` as a **lane-major block** — `lanes[i * m + j]` is coordinate
    /// `i` of the group's `j`-th point (of `m`) — and handed to `f` once
    /// per page. This is the layout the batched refine kernel
    /// (`distance_block`) consumes: one contiguous lane per dimension,
    /// whatever the page codec. Unknown ids are skipped.
    ///
    /// Like [`BufferPool::read_points_with`], a failed physical read aborts
    /// the batch with a descriptive [`PageStoreError`].
    pub fn read_points_block(
        &mut self,
        store: &PageStore,
        points: &[PointId],
        lanes: &mut Vec<f64>,
        f: &mut dyn FnMut(&[PointId], &[f64]),
    ) -> Result<(), PageStoreError> {
        let mut slots: Vec<usize> = Vec::new();
        for (page_id, members) in store.layout().pages_for(points) {
            if let Some(page) = self.try_fetch(store, page_id)? {
                slots.clear();
                // `pages_for` resolved every member, so every address exists.
                slots.extend(
                    members
                        .iter()
                        .filter_map(|&pid| store.address_of(pid))
                        .map(|a| a.slot as usize),
                );
                debug_assert_eq!(slots.len(), members.len());
                page.decode_slots_into(&slots, lanes);
                f(&members, lanes);
            }
        }
        Ok(())
    }
}

/// A [`BufferPool`] behind a mutex, for experiment harnesses that issue
/// queries from multiple threads against a shared store. (For warm serving
/// prefer per-thread [`BufferPool`] handles over one [`SharedPageCache`]:
/// I/O is then attributed per handle and only the page table is locked.)
#[derive(Debug)]
pub struct SharedBufferPool {
    inner: Mutex<BufferPool>,
}

impl SharedBufferPool {
    /// Wrap a pool for shared use.
    pub fn new(pool: BufferPool) -> Self {
        Self { inner: Mutex::new(pool) }
    }

    /// Run a closure with exclusive access to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut BufferPool) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Snapshot the current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats()
    }

    /// Reset the I/O counters.
    pub fn reset_stats(&self) {
        self.inner.lock().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{PageStore, PageStoreConfig};

    fn store(n: usize, dim: usize, per_page: usize) -> (PageStore, Vec<Vec<f64>>) {
        let data: Vec<Vec<f64>> =
            (0..n).map(|i| (0..dim).map(|j| (i * dim + j) as f64).collect()).collect();
        let config = PageStoreConfig::with_page_size(dim * 8 * per_page);
        let s = PageStore::build_sequential(config, dim, n, |pid| &data[pid as usize]);
        (s, data)
    }

    #[test]
    fn unbuffered_counts_every_access_as_physical_read() {
        let (s, data) = store(6, 2, 2);
        let mut pool = BufferPool::unbuffered();
        assert!(pool.is_unbuffered());
        assert_eq!(pool.capacity(), 0);
        for pid in 0..6u32 {
            assert_eq!(pool.read_point(&s, pid).unwrap(), data[pid as usize]);
        }
        assert_eq!(pool.stats().pages_read, 6);
        assert_eq!(pool.stats().cache_hits, 0);
    }

    #[test]
    fn capacity_zero_never_retains_pages() {
        // The unbuffered pool is not a degenerate cache: repeated access to
        // the same page stays a counted miss and nothing becomes resident.
        let (s, _) = store(6, 2, 2);
        let mut pool = BufferPool::new(0);
        for _ in 0..3 {
            pool.read_point(&s, 0);
        }
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stats().pages_read, 3);
        assert_eq!(pool.stats().cache_hits, 0);
        // Batched reads still coalesce points within one visit of a page…
        let result = pool.read_points(&s, &[0, 1, 4]);
        assert_eq!(result.len(), 3);
        assert_eq!(pool.stats().pages_read, 5); // pages {0,1} and {4,5}
                                                // …but the pool stays empty afterwards.
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn cached_rereads_are_hits() {
        let (s, _) = store(6, 2, 2);
        let mut pool = BufferPool::new(8);
        pool.read_point(&s, 0);
        pool.read_point(&s, 1); // same page as 0
        pool.read_point(&s, 2); // new page
        assert_eq!(pool.stats().pages_read, 2);
        assert_eq!(pool.stats().cache_hits, 1);
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn eviction_reclaims_the_oldest_cold_page() {
        let (s, _) = store(8, 2, 2); // pages: {0,1},{2,3},{4,5},{6,7}
        let mut pool = BufferPool::new(2);
        pool.read_point(&s, 0); // page 0 in
        pool.read_point(&s, 2); // page 1 in
        pool.read_point(&s, 4); // page 2 in, page 0 (oldest, cold) evicted
        pool.read_point(&s, 0); // page 0 again: physical read
        assert_eq!(pool.stats().pages_read, 4);
        assert_eq!(pool.stats().cache_hits, 0);
    }

    #[test]
    fn a_hit_protects_a_page_from_the_next_eviction() {
        let (s, _) = store(8, 2, 2);
        let mut pool = BufferPool::new(2);
        pool.read_point(&s, 0); // page 0
        pool.read_point(&s, 2); // page 1
        pool.read_point(&s, 1); // hit page 0: visited, survives the hand
        pool.read_point(&s, 4); // page 2 in; hand skips page 0, evicts page 1
        pool.read_point(&s, 0); // page 0 should still be resident
        assert_eq!(pool.stats().cache_hits, 2);
        assert_eq!(pool.stats().pages_read, 3);
    }

    #[test]
    fn a_sequential_scan_cannot_flush_a_rereferenced_page() {
        // SIEVE's scan resistance: page 0 is hit between scan steps, the
        // scanned-once pages are not, so the hand reclaims scan pages and
        // page 0 stays resident for the whole pass — under LRU a scan of
        // more than `capacity` pages would have flushed it.
        let (s, _) = store(64, 2, 2); // 32 pages
        let mut pool = BufferPool::new(4);
        pool.read_point(&s, 0); // page 0 resident
        pool.read_point(&s, 1); // …and visited
        for pid in (2..64u32).step_by(2) {
            pool.read_point(&s, pid); // scan every other page once
            pool.read_point(&s, 0); // the hot page keeps getting hits
        }
        // Every access to page 0 after its single fault was a hit.
        assert_eq!(pool.stats().pages_read, 32, "page 0 faulted once, 31 scan pages once");
        assert_eq!(pool.stats().cache_hits, 32);
    }

    #[test]
    fn pinned_pages_survive_any_scan_and_unpin_restores_eviction() {
        let (s, _) = store(32, 2, 2); // 16 pages
        let mut pool = BufferPool::new(2);
        assert!(pool.pin_page(&s, crate::page::PageId(0)));
        assert_eq!(pool.pinned_pages(), 1);
        for pid in 2..32u32 {
            pool.read_point(&s, pid); // scan through every other page
        }
        // The pinned page is still served from cache…
        let before = pool.stats();
        pool.read_point(&s, 0);
        assert_eq!(pool.stats().cache_hits, before.cache_hits + 1);
        // …until unpinned, after which the hand may reclaim it.
        pool.unpin_page(crate::page::PageId(0));
        assert_eq!(pool.pinned_pages(), 0);
        for pid in 2..32u32 {
            pool.read_point(&s, pid);
        }
        let before = pool.stats();
        pool.read_point(&s, 0);
        assert_eq!(pool.stats().pages_read, before.pages_read + 1, "unpinned page was evicted");
    }

    #[test]
    fn a_pool_full_of_pinned_pages_serves_misses_uncached() {
        let (s, _) = store(8, 2, 2); // 4 pages
        let mut pool = BufferPool::new(2);
        assert!(pool.pin_page(&s, crate::page::PageId(0)));
        assert!(pool.pin_page(&s, crate::page::PageId(1)));
        assert_eq!(pool.pinned_pages(), 2);
        // Both further pages are served (correctly) but cannot displace the
        // pinned ones.
        pool.read_point(&s, 4);
        pool.read_point(&s, 4);
        assert_eq!(pool.resident_pages(), 2);
        assert_eq!(pool.stats().pages_read, 4); // 2 pins + 2 uncached misses
                                                // Pinning a page that cannot become resident reports failure.
        assert!(!pool.pin_page(&s, crate::page::PageId(3)));
        // The pinned pages still hit.
        pool.read_point(&s, 0);
        pool.read_point(&s, 2);
        assert_eq!(pool.stats().cache_hits, 2);
    }

    #[test]
    fn touches_are_constant_time_over_a_large_pool() {
        // The O(n)-per-hit LRU this pool replaced scanned a VecDeque on
        // every touch; 200k hits over 8192 resident pages would be ~1.6e9
        // element moves. Under SIEVE a hit is one hash lookup + one bit,
        // so this loop is far inside the (generous) bound even in debug.
        let (s, _) = store(8192, 2, 1); // 8192 pages
        let mut pool = BufferPool::new(8192);
        for pid in 0..8192u32 {
            pool.read_point(&s, pid);
        }
        assert_eq!(pool.resident_pages(), 8192);
        let started = std::time::Instant::now();
        let mut hits = 0u64;
        for i in 0..200_000u32 {
            if pool.read_point(&s, i % 8192).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 200_000);
        assert_eq!(pool.stats().cache_hits, 200_000);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "warm touches must be O(1), took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn read_latency_sink_times_only_physical_reads() {
        let (s, _) = store(8, 4, 2);
        let sink = Arc::new(telemetry::Histogram::new());
        let mut pool = BufferPool::new(4);
        pool.set_read_latency_sink(sink.clone());
        assert!(pool.read_latency_sink().is_some());
        pool.fetch(&s, PageId(0)); // miss: timed
        pool.fetch(&s, PageId(0)); // hit: not timed
        pool.fetch(&s, PageId(1)); // miss: timed
        assert_eq!(pool.stats().pages_read, 2);
        assert_eq!(pool.stats().cache_hits, 1);
        assert_eq!(sink.count(), 2, "one sample per physical read, none for hits");

        // The unbuffered path is also timed.
        let mut unbuffered = BufferPool::unbuffered();
        unbuffered.set_read_latency_sink(sink.clone());
        unbuffered.fetch(&s, PageId(0));
        assert_eq!(sink.count(), 3);
    }

    #[test]
    fn shared_cache_hits_across_handles_with_per_handle_stats() {
        let (s, _) = store(8, 2, 2); // 4 pages
        let cache = SharedPageCache::new(4);
        let mut a = BufferPool::with_shared_cache(cache.clone());
        let mut b = BufferPool::with_shared_cache(cache.clone());
        assert_eq!(a.capacity(), 4);
        a.read_point(&s, 0); // handle A faults page 0
        b.read_point(&s, 1); // handle B hits the page A faulted
        assert_eq!(a.stats().pages_read, 1);
        assert_eq!(a.stats().cache_hits, 0);
        assert_eq!(b.stats().pages_read, 0);
        assert_eq!(b.stats().cache_hits, 1);
        assert_eq!(cache.resident_pages(), 1);
        assert_eq!(b.resident_pages(), 1);
    }

    #[test]
    fn batched_read_costs_one_read_per_page() {
        let (s, data) = store(10, 3, 5); // pages: {0..4},{5..9}
        let mut pool = BufferPool::unbuffered();
        let result = pool.read_points(&s, &[0, 1, 2, 7, 8]);
        assert_eq!(result.len(), 5);
        assert_eq!(pool.stats().pages_read, 2);
        for (pid, coords) in result {
            assert_eq!(coords, data[pid as usize]);
        }
    }

    #[test]
    fn read_points_with_matches_read_points_and_io() {
        let (s, data) = store(10, 3, 5); // pages: {0..4},{5..9}
        let ids = [7u32, 0, 1, 8, 2, 99];
        let mut pool_a = BufferPool::unbuffered();
        let expected = pool_a.read_points(&s, &ids);
        let mut pool_b = BufferPool::unbuffered();
        let mut coords = Vec::new();
        let mut seen: Vec<(u32, Vec<f64>)> = Vec::new();
        pool_b
            .read_points_with(&s, &ids, &mut coords, &mut |pid, c| {
                seen.push((pid, c.to_vec()));
            })
            .unwrap();
        // Identical I/O pattern (first-seen page grouping) and identical
        // point set; the visit order is page-major.
        assert_eq!(pool_a.stats(), pool_b.stats());
        assert_eq!(seen.len(), expected.len());
        assert_eq!(
            seen.iter().map(|(p, _)| *p).collect::<std::collections::HashSet<_>>(),
            expected.iter().map(|(p, _)| *p).collect::<std::collections::HashSet<_>>()
        );
        for (pid, c) in &seen {
            assert_eq!(c, &data[*pid as usize]);
        }
        assert_eq!(seen[0].0, 7, "page of the first-seen point is visited first");
    }

    #[test]
    fn read_points_block_yields_lane_major_groups_with_identical_io() {
        let (s, data) = store(10, 3, 5); // pages: {0..4},{5..9}
        let ids = [7u32, 0, 1, 8, 2, 99];
        let mut pool_a = BufferPool::unbuffered();
        let mut coords = Vec::new();
        let mut per_point: Vec<(u32, Vec<f64>)> = Vec::new();
        pool_a
            .read_points_with(&s, &ids, &mut coords, &mut |pid, c| {
                per_point.push((pid, c.to_vec()));
            })
            .unwrap();
        let mut pool_b = BufferPool::unbuffered();
        let mut lanes = Vec::new();
        let mut blocked: Vec<(u32, Vec<f64>)> = Vec::new();
        pool_b
            .read_points_block(&s, &ids, &mut lanes, &mut |pids, block| {
                let m = pids.len();
                assert_eq!(block.len(), 3 * m);
                for (j, &pid) in pids.iter().enumerate() {
                    let coords: Vec<f64> = (0..3).map(|i| block[i * m + j]).collect();
                    blocked.push((pid, coords));
                }
            })
            .unwrap();
        assert_eq!(pool_a.stats(), pool_b.stats());
        assert_eq!(per_point, blocked, "block visit order and bits match the per-point path");
        for (pid, c) in &blocked {
            assert_eq!(c, &data[*pid as usize]);
        }
    }

    #[test]
    fn read_point_into_and_missing_points() {
        let (s, data) = store(4, 2, 2);
        let mut pool = BufferPool::new(2);
        let mut buf = Vec::new();
        assert!(pool.read_point_into(&s, 3, &mut buf));
        assert_eq!(buf, data[3]);
        assert!(!pool.read_point_into(&s, 100, &mut buf));
        assert!(pool.read_point(&s, 100).is_none());
    }

    #[test]
    fn reset_and_clear() {
        let (s, _) = store(4, 2, 2);
        let mut pool = BufferPool::new(2);
        pool.read_point(&s, 0);
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn shared_pool_is_usable_from_threads() {
        let (s, _) = store(16, 2, 2);
        let shared = SharedBufferPool::new(BufferPool::new(4));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let shared = &shared;
                let s = &s;
                scope.spawn(move || {
                    for i in 0..4u32 {
                        shared.with(|pool| pool.read_point(s, t * 4 + i));
                    }
                });
            }
        });
        let stats = shared.stats();
        assert_eq!(stats.logical_reads(), 16);
        shared.reset_stats();
        assert_eq!(shared.stats(), IoStats::default());
    }
}
