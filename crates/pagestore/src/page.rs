//! Fixed-size pages holding serialized point records, in either of two
//! codecs: row-major (record-contiguous) or dimension-major (lane-contiguous
//! SoA, the refine-kernel-friendly layout).

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use crate::PointId;

/// Identifier of a page within a [`crate::PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page {}", self.0)
    }
}

/// How the `f64` coordinates of a page's records are arranged in the
/// payload. Both codecs store the same bits per coordinate; only the order
/// differs, so the two layouts decode bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageLayout {
    /// One record after another: coordinate `i` of slot `s` lives at byte
    /// `(s·dim + i)·8`. The original (format v1) layout.
    RowMajor,
    /// Structure-of-arrays: one contiguous *lane* per dimension —
    /// coordinate `i` of slot `s` lives at byte `(i·count + s)·8`, where
    /// `count` is the number of records resident in the page. This is the
    /// layout the batched SIMD refine kernel streams, and the default for
    /// newly built stores (format v2).
    #[default]
    DimMajor,
}

impl PageLayout {
    /// Stable one-byte tag persisted in the page-file metadata.
    pub fn tag(self) -> u8 {
        match self {
            PageLayout::RowMajor => 0,
            PageLayout::DimMajor => 1,
        }
    }

    /// Inverse of [`PageLayout::tag`].
    pub fn from_tag(tag: u8) -> Option<PageLayout> {
        match tag {
            0 => Some(PageLayout::RowMajor),
            1 => Some(PageLayout::DimMajor),
            _ => None,
        }
    }
}

/// One fixed-size disk page: a header with the resident point ids followed by
/// their little-endian `f64` coordinates, padded to the configured page size.
///
/// Both the payload and the id list sit behind shared ownership, so cloning a
/// page is cheap (two reference-count bumps). That is what lets a
/// [`crate::BufferPool`] hand out owned pages regardless of whether the
/// backing [`crate::StorageBackend`] keeps them in memory or reads them from
/// a file.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    dim: usize,
    layout: PageLayout,
    point_ids: Arc<[PointId]>,
    payload: Bytes,
}

impl Page {
    /// Serialize `points` (id + coordinates) into a row-major page image
    /// (kept for callers that build standalone pages; stores encode through
    /// [`Page::encode_with`] with their configured layout).
    ///
    /// The caller is responsible for ensuring the records fit in the page
    /// size; this constructor only encodes.
    pub fn encode(id: PageId, dim: usize, points: &[(PointId, &[f64])], page_size: usize) -> Page {
        Self::encode_with(PageLayout::RowMajor, id, dim, points, page_size)
    }

    /// Serialize `points` (id + coordinates) into a page image in the given
    /// codec. The two codecs hold identical coordinate bits (only the byte
    /// order within the page differs), so decoding is layout-transparent.
    pub fn encode_with(
        layout: PageLayout,
        id: PageId,
        dim: usize,
        points: &[(PointId, &[f64])],
        page_size: usize,
    ) -> Page {
        let mut buf = BytesMut::with_capacity(page_size);
        match layout {
            PageLayout::RowMajor => {
                for (_, coords) in points {
                    debug_assert_eq!(coords.len(), dim);
                    for &v in *coords {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            PageLayout::DimMajor => {
                for i in 0..dim {
                    for (_, coords) in points {
                        debug_assert_eq!(coords.len(), dim);
                        buf.extend_from_slice(&coords[i].to_le_bytes());
                    }
                }
            }
        }
        // Pad to the nominal page size so the simulated disk image has the
        // same footprint a real page would.
        if buf.len() < page_size {
            buf.resize(page_size, 0);
        }
        Page {
            id,
            dim,
            layout,
            point_ids: points.iter().map(|(pid, _)| *pid).collect(),
            payload: buf.freeze(),
        }
    }

    /// Reassemble a page from its stored parts (used by storage backends
    /// when materializing a page read from a file image).
    pub fn from_parts(
        id: PageId,
        dim: usize,
        layout: PageLayout,
        point_ids: Arc<[PointId]>,
        payload: Bytes,
    ) -> Page {
        Page { id, dim, layout, point_ids, payload }
    }

    /// The raw serialized payload (record bytes plus padding).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The page identifier.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// The codec this page's payload is arranged in.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Number of point records stored in this page.
    pub fn len(&self) -> usize {
        self.point_ids.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.point_ids.is_empty()
    }

    /// The ids of the points resident in this page, in slot order.
    pub fn point_ids(&self) -> &[PointId] {
        &self.point_ids
    }

    /// Size in bytes of the serialized page image (including padding).
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Byte offset of coordinate `i` of record `slot` under this layout.
    #[inline]
    fn coord_offset(&self, slot: usize, i: usize) -> usize {
        match self.layout {
            PageLayout::RowMajor => (slot * self.dim + i) * 8,
            PageLayout::DimMajor => (i * self.point_ids.len() + slot) * 8,
        }
    }

    #[inline]
    fn coord(&self, slot: usize, i: usize) -> f64 {
        let start = self.coord_offset(slot, i);
        f64::from_le_bytes(self.payload[start..start + 8].try_into().expect("8-byte chunk"))
    }

    /// Decode the coordinates of the record in the given slot.
    pub fn decode_slot(&self, slot: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim);
        self.decode_slot_into(slot, &mut out);
        out
    }

    /// Decode the coordinates of the record in the given slot into `out`.
    pub fn decode_slot_into(&self, slot: usize, out: &mut Vec<f64>) {
        out.clear();
        match self.layout {
            PageLayout::RowMajor => {
                let record = 8 * self.dim;
                let start = slot * record;
                let bytes = &self.payload[start..start + record];
                out.extend(
                    bytes
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
                );
            }
            PageLayout::DimMajor => {
                out.extend((0..self.dim).map(|i| self.coord(slot, i)));
            }
        }
    }

    /// Decode a set of slots as one **lane-major block**: after the call,
    /// `out[i * m + j]` is coordinate `i` of `slots[j]` (with
    /// `m = slots.len()`), i.e. one contiguous lane per dimension — the
    /// shape the batched refine kernel consumes. Works for either codec;
    /// for [`PageLayout::DimMajor`] a run of consecutive slots is a
    /// straight per-lane copy.
    pub fn decode_slots_into(&self, slots: &[usize], out: &mut Vec<f64>) {
        let m = slots.len();
        out.clear();
        out.reserve(self.dim * m);
        match self.layout {
            PageLayout::RowMajor => {
                for i in 0..self.dim {
                    for &slot in slots {
                        out.push(self.coord(slot, i));
                    }
                }
            }
            PageLayout::DimMajor => {
                let count = self.point_ids.len();
                for i in 0..self.dim {
                    let lane = i * count * 8;
                    for &slot in slots {
                        let start = lane + slot * 8;
                        out.push(f64::from_le_bytes(
                            self.payload[start..start + 8].try_into().expect("8-byte chunk"),
                        ));
                    }
                }
            }
        }
    }

    /// Find the slot of a point id within this page, if resident.
    pub fn slot_of(&self, point: PointId) -> Option<usize> {
        self.point_ids.iter().position(|&p| p == point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let a = vec![1.5, -2.25, 3.0];
        let b = vec![0.0, 7.5, -1.0];
        let page = Page::encode(PageId(3), 3, &[(10, &a), (11, &b)], 256);
        assert_eq!(page.id(), PageId(3));
        assert_eq!(page.layout(), PageLayout::RowMajor);
        assert_eq!(page.len(), 2);
        assert!(!page.is_empty());
        assert_eq!(page.point_ids(), &[10, 11]);
        assert_eq!(page.decode_slot(0), a);
        assert_eq!(page.decode_slot(1), b);
        assert_eq!(page.size_bytes(), 256);
    }

    #[test]
    fn dim_major_pages_decode_identically_to_row_major() {
        let a = vec![1.5, -2.25, 3.0];
        let b = vec![0.0, 7.5, -1.0];
        let c = vec![4.25, 5.0, -6.5];
        let points: &[(PointId, &[f64])] = &[(10, &a), (11, &b), (12, &c)];
        let row = Page::encode_with(PageLayout::RowMajor, PageId(3), 3, points, 256);
        let soa = Page::encode_with(PageLayout::DimMajor, PageId(3), 3, points, 256);
        assert_eq!(soa.layout(), PageLayout::DimMajor);
        assert_ne!(row.payload(), soa.payload(), "the byte layouts differ…");
        for slot in 0..3 {
            assert_eq!(row.decode_slot(slot), soa.decode_slot(slot), "…but the records match");
        }
        // The SoA payload really is lane-contiguous: lane 0 = [a0, b0, c0].
        let lane0: Vec<f64> = soa.payload()[..24]
            .chunks_exact(8)
            .map(|ch| f64::from_le_bytes(ch.try_into().unwrap()))
            .collect();
        assert_eq!(lane0, vec![1.5, 0.0, 4.25]);
    }

    #[test]
    fn decode_slots_into_is_lane_major_for_both_codecs() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let c = vec![5.0, 6.0];
        let points: &[(PointId, &[f64])] = &[(0, &a), (1, &b), (2, &c)];
        for layout in [PageLayout::RowMajor, PageLayout::DimMajor] {
            let page = Page::encode_with(layout, PageId(0), 2, points, 128);
            let mut out = vec![9.0; 3];
            page.decode_slots_into(&[2, 0], &mut out);
            // m = 2 slots: lane 0 = [c0, a0], lane 1 = [c1, a1].
            assert_eq!(out, vec![5.0, 1.0, 6.0, 2.0], "{layout:?}");
        }
    }

    #[test]
    fn layout_tags_roundtrip() {
        for layout in [PageLayout::RowMajor, PageLayout::DimMajor] {
            assert_eq!(PageLayout::from_tag(layout.tag()), Some(layout));
        }
        assert_eq!(PageLayout::from_tag(7), None);
        assert_eq!(PageLayout::default(), PageLayout::DimMajor);
    }

    #[test]
    fn decode_slot_into_reuses_buffer() {
        let a = vec![1.0, 2.0];
        let page = Page::encode(PageId(0), 2, &[(0, &a)], 64);
        let mut buf = vec![9.0; 17];
        page.decode_slot_into(0, &mut buf);
        assert_eq!(buf, a);
    }

    #[test]
    fn slot_of_resident_and_missing_points() {
        let a = vec![1.0];
        let b = vec![2.0];
        let page = Page::encode(PageId(0), 1, &[(5, &a), (9, &b)], 64);
        assert_eq!(page.slot_of(9), Some(1));
        assert_eq!(page.slot_of(77), None);
    }

    #[test]
    fn page_larger_than_payload_is_padded() {
        let a = vec![1.0, 2.0];
        let page = Page::encode(PageId(0), 2, &[(0, &a)], 4096);
        assert_eq!(page.size_bytes(), 4096);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(4).to_string(), "page 4");
        assert_eq!(PageId(4).index(), 4);
    }
}
