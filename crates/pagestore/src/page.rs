//! Fixed-size pages holding serialized point records.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use crate::PointId;

/// Identifier of a page within a [`crate::PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page {}", self.0)
    }
}

/// One fixed-size disk page: a header with the resident point ids followed by
/// their little-endian `f64` coordinates, padded to the configured page size.
///
/// Both the payload and the id list sit behind shared ownership, so cloning a
/// page is cheap (two reference-count bumps). That is what lets a
/// [`crate::BufferPool`] hand out owned pages regardless of whether the
/// backing [`crate::StorageBackend`] keeps them in memory or reads them from
/// a file.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    dim: usize,
    point_ids: Arc<[PointId]>,
    payload: Bytes,
}

impl Page {
    /// Serialize `points` (id + coordinates) into a page image.
    ///
    /// The caller is responsible for ensuring the records fit in the page
    /// size; this constructor only encodes.
    pub fn encode(id: PageId, dim: usize, points: &[(PointId, &[f64])], page_size: usize) -> Page {
        let mut buf = BytesMut::with_capacity(page_size);
        for (_, coords) in points {
            debug_assert_eq!(coords.len(), dim);
            for &v in *coords {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        // Pad to the nominal page size so the simulated disk image has the
        // same footprint a real page would.
        if buf.len() < page_size {
            buf.resize(page_size, 0);
        }
        Page {
            id,
            dim,
            point_ids: points.iter().map(|(pid, _)| *pid).collect(),
            payload: buf.freeze(),
        }
    }

    /// Reassemble a page from its stored parts (used by storage backends
    /// when materializing a page read from a file image).
    pub fn from_parts(id: PageId, dim: usize, point_ids: Arc<[PointId]>, payload: Bytes) -> Page {
        Page { id, dim, point_ids, payload }
    }

    /// The raw serialized payload (record bytes plus padding).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The page identifier.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Number of point records stored in this page.
    pub fn len(&self) -> usize {
        self.point_ids.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.point_ids.is_empty()
    }

    /// The ids of the points resident in this page, in slot order.
    pub fn point_ids(&self) -> &[PointId] {
        &self.point_ids
    }

    /// Size in bytes of the serialized page image (including padding).
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Decode the coordinates of the record in the given slot.
    pub fn decode_slot(&self, slot: usize) -> Vec<f64> {
        let record = 8 * self.dim;
        let start = slot * record;
        let bytes = &self.payload[start..start + record];
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Decode the coordinates of the record in the given slot into `out`.
    pub fn decode_slot_into(&self, slot: usize, out: &mut Vec<f64>) {
        let record = 8 * self.dim;
        let start = slot * record;
        let bytes = &self.payload[start..start + record];
        out.clear();
        out.extend(
            bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
    }

    /// Find the slot of a point id within this page, if resident.
    pub fn slot_of(&self, point: PointId) -> Option<usize> {
        self.point_ids.iter().position(|&p| p == point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let a = vec![1.5, -2.25, 3.0];
        let b = vec![0.0, 7.5, -1.0];
        let page = Page::encode(PageId(3), 3, &[(10, &a), (11, &b)], 256);
        assert_eq!(page.id(), PageId(3));
        assert_eq!(page.len(), 2);
        assert!(!page.is_empty());
        assert_eq!(page.point_ids(), &[10, 11]);
        assert_eq!(page.decode_slot(0), a);
        assert_eq!(page.decode_slot(1), b);
        assert_eq!(page.size_bytes(), 256);
    }

    #[test]
    fn decode_slot_into_reuses_buffer() {
        let a = vec![1.0, 2.0];
        let page = Page::encode(PageId(0), 2, &[(0, &a)], 64);
        let mut buf = vec![9.0; 17];
        page.decode_slot_into(0, &mut buf);
        assert_eq!(buf, a);
    }

    #[test]
    fn slot_of_resident_and_missing_points() {
        let a = vec![1.0];
        let b = vec![2.0];
        let page = Page::encode(PageId(0), 1, &[(5, &a), (9, &b)], 64);
        assert_eq!(page.slot_of(9), Some(1));
        assert_eq!(page.slot_of(77), None);
    }

    #[test]
    fn page_larger_than_payload_is_padded() {
        let a = vec![1.0, 2.0];
        let page = Page::encode(PageId(0), 2, &[(0, &a)], 4096);
        assert_eq!(page.size_bytes(), 4096);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(4).to_string(), "page 4");
        assert_eq!(PageId(4).index(), 4);
    }
}
