//! The immutable page-organized copy of a dataset.

use std::path::Path;
use std::sync::Arc;

use crate::backend::{MemoryBackend, PageStoreError, StorageBackend};
use crate::file::{write_page_file, FileBackend};
use crate::format::PersistResult;
use crate::layout::{DiskLayout, PageAddress};
use crate::page::{Page, PageId, PageLayout};
use crate::PointId;

/// Configuration of a [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageStoreConfig {
    /// Nominal page size in bytes (the paper uses 32 KB–128 KB).
    pub page_size_bytes: usize,
    /// Page codec new pages are encoded in (dimension-major SoA by
    /// default; both codecs decode bit-identically).
    pub layout: PageLayout,
}

impl PageStoreConfig {
    /// A store with the given page size (and the default page codec).
    pub fn with_page_size(page_size_bytes: usize) -> Self {
        Self { page_size_bytes, layout: PageLayout::default() }
    }

    /// The same configuration with the given page codec.
    pub fn with_layout(self, layout: PageLayout) -> Self {
        Self { layout, ..self }
    }

    /// How many `dim`-dimensional `f64` records fit in one page (at least 1,
    /// so a pathological configuration still makes progress).
    pub fn records_per_page(&self, dim: usize) -> usize {
        (self.page_size_bytes / (8 * dim.max(1))).max(1)
    }
}

impl Default for PageStoreConfig {
    fn default() -> Self {
        // 32 KB matches the smallest page size used in the paper's Table 4.
        Self { page_size_bytes: 32 * 1024, layout: PageLayout::default() }
    }
}

/// An immutable, page-organized copy of a set of `f64` records.
///
/// The store owns the page *directory* (the point → page/slot layout and the
/// configuration) and delegates page-image storage to a
/// [`StorageBackend`]: the in-memory simulation used while building, or a
/// real file opened with [`PageStore::open`]. All reads go through a
/// [`crate::BufferPool`] so physical page fetches are counted identically
/// for both backends.
///
/// A `PageStore` is deliberately **not** `Clone`: cloning would duplicate
/// the whole (simulated) disk image. Index structures share one store via
/// `Arc<PageStore>`.
#[derive(Debug)]
pub struct PageStore {
    config: PageStoreConfig,
    dim: usize,
    layout: DiskLayout,
    build_writes: u64,
    backend: Arc<dyn StorageBackend>,
}

impl PageStore {
    /// Lay out `n` points in the order given by `order`, packing
    /// `records_per_page` consecutive points into each page.
    ///
    /// `point` is a lookup closure from point id to its coordinates; the
    /// store copies (serializes) the coordinates so the source dataset can be
    /// dropped afterwards.
    pub fn build_with_order<'a, F>(
        config: PageStoreConfig,
        dim: usize,
        order: &[PointId],
        mut point: F,
    ) -> PageStore
    where
        F: FnMut(PointId) -> &'a [f64],
    {
        let per_page = config.records_per_page(dim);
        let mut pages = Vec::with_capacity(order.len().div_ceil(per_page.max(1)));
        let mut layout = DiskLayout::with_capacity(order.len());
        for (page_index, chunk) in order.chunks(per_page).enumerate() {
            let page_id = PageId(page_index as u32);
            let records: Vec<(PointId, &[f64])> =
                chunk.iter().map(|&pid| (pid, point(pid))).collect();
            for (slot, &(pid, _)) in records.iter().enumerate() {
                layout.set(pid, PageAddress { page: page_id, slot: slot as u32 });
            }
            pages.push(Page::encode_with(
                config.layout,
                page_id,
                dim,
                &records,
                config.page_size_bytes,
            ));
        }
        let build_writes = pages.len() as u64;
        PageStore {
            config,
            dim,
            layout,
            build_writes,
            backend: Arc::new(MemoryBackend::new(pages)),
        }
    }

    /// Lay out points `0..n` in their natural order.
    pub fn build_sequential<'a, F>(
        config: PageStoreConfig,
        dim: usize,
        n: usize,
        point: F,
    ) -> PageStore
    where
        F: FnMut(PointId) -> &'a [f64],
    {
        let order: Vec<PointId> = (0..n as u32).collect();
        Self::build_with_order(config, dim, &order, point)
    }

    /// Write the store to `path` as a page file (versioned, checksummed; see
    /// [`crate::file`] for the exact format). Works for any backend, so a
    /// file-backed store can be copied by saving it elsewhere. Pages are
    /// streamed to the file one at a time — saving never materializes a
    /// second copy of the disk image.
    pub fn save(&self, path: &Path) -> PersistResult<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        write_page_file(
            path,
            self.config,
            self.dim,
            self.build_writes,
            self.point_count(),
            self.backend.as_ref(),
        )
    }

    /// Open a page file written by [`PageStore::save`] as a file-backed
    /// store: the directory is loaded into memory, the envelope checksum is
    /// verified, and page images are read from the file on demand.
    pub fn open(path: &Path) -> PersistResult<PageStore> {
        let (backend, meta) = FileBackend::open(path)?;
        Ok(PageStore {
            config: meta.config,
            dim: meta.dim,
            layout: meta.layout(),
            build_writes: meta.build_writes,
            backend: Arc::new(backend),
        })
    }

    /// The store configuration.
    pub fn config(&self) -> PageStoreConfig {
        self.config
    }

    /// Dimensionality of every record.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of pages in the store.
    pub fn page_count(&self) -> usize {
        self.backend.page_count()
    }

    /// Number of point records in the store.
    pub fn point_count(&self) -> usize {
        self.layout.len()
    }

    /// Number of page writes performed while building (used for the
    /// index-construction experiment).
    pub fn build_writes(&self) -> u64 {
        self.build_writes
    }

    /// Which storage backend serves this store (`"memory"` or `"file"`).
    pub fn backend_kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// Raw page access *without* I/O accounting. Index implementations must
    /// go through a [`crate::BufferPool`]; this accessor exists for the pool
    /// itself, for [`PageStore::save`] and for tests. On a file-backed store
    /// every call performs a real file read.
    pub fn raw_page(&self, id: PageId) -> Option<Page> {
        self.backend.read_page(id)
    }

    /// Raw page access like [`PageStore::raw_page`], but a physical read
    /// that fails after open (bit rot caught by a per-page checksum, or a
    /// device error) is reported as a [`PageStoreError`] instead of
    /// panicking. `Ok(None)` still means "unknown page id".
    pub fn try_raw_page(&self, id: PageId) -> Result<Option<Page>, PageStoreError> {
        self.backend.try_read_page(id)
    }

    /// The point → page directory.
    pub fn layout(&self) -> &DiskLayout {
        &self.layout
    }

    /// The address of a point, if it was laid out.
    pub fn address_of(&self, point: PointId) -> Option<PageAddress> {
        self.layout.get(point)
    }

    /// Total size of the disk image in bytes (page payloads including
    /// padding, excluding directory metadata).
    pub fn size_bytes(&self) -> usize {
        self.backend.size_bytes()
    }

    /// Visit every stored point in id order (`0..point_count`), decoding
    /// each into a reused buffer. The page fetched last is cached, so a
    /// layout with runs of co-located ids costs one physical read per page
    /// run. Maintenance/migration helper (e.g. rebuilding a derived
    /// per-point column on open) — no [`crate::BufferPool`] accounting is
    /// performed. Returns the first point id that resolves to no page, if
    /// any.
    pub fn for_each_point(&self, f: &mut dyn FnMut(PointId, &[f64])) -> Result<(), PointId> {
        let mut coords = Vec::new();
        let mut cached: Option<(PageId, Page)> = None;
        for pid in 0..self.point_count() as u32 {
            let addr = self.address_of(pid).ok_or(pid)?;
            let hit = matches!(&cached, Some((id, _)) if *id == addr.page);
            if !hit {
                cached = Some((addr.page, self.raw_page(addr.page).ok_or(pid)?));
            }
            let (_, page) = cached.as_ref().expect("page fetched above");
            page.decode_slot_into(addr.slot as usize, &mut coords);
            f(pid, &coords);
        }
        Ok(())
    }

    /// Derive one scalar per stored point (in id order) from its
    /// full-resolution coordinates — the migration path indexes use to
    /// rebuild a persisted per-point column (e.g. the prepared-kernel `Φ`
    /// table) from a directory that predates it. A point with no page
    /// address is a corruption error, not a silent gap.
    pub fn derive_point_column(
        &self,
        f: &mut dyn FnMut(&[f64]) -> f64,
    ) -> crate::format::PersistResult<Vec<f64>> {
        let mut out = Vec::with_capacity(self.point_count());
        self.for_each_point(&mut |_, coords| out.push(f(coords))).map_err(|pid| {
            crate::format::PersistError::Corrupt(format!(
                "cannot derive per-point column: point {pid} has no address in the page file"
            ))
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| (0..dim).map(|j| (i * dim + j) as f64).collect()).collect()
    }

    #[test]
    fn records_per_page_respects_page_size() {
        let config = PageStoreConfig::with_page_size(1024);
        assert_eq!(config.records_per_page(16), 8); // 16*8 = 128 bytes per record
        assert_eq!(config.records_per_page(1024), 1); // too large: still 1
        assert_eq!(PageStoreConfig::default().page_size_bytes, 32 * 1024);
    }

    #[test]
    fn sequential_build_addresses_every_point() {
        let data = dataset(10, 4);
        let config = PageStoreConfig::with_page_size(4 * 8 * 3); // 3 records per page
        let store = PageStore::build_sequential(config, 4, 10, |pid| &data[pid as usize]);
        assert_eq!(store.point_count(), 10);
        assert_eq!(store.page_count(), 4); // ceil(10/3)
        assert_eq!(store.build_writes(), 4);
        assert_eq!(store.backend_kind(), "memory");
        for pid in 0..10u32 {
            let addr = store.address_of(pid).unwrap();
            let page = store.raw_page(addr.page).unwrap();
            assert_eq!(page.decode_slot(addr.slot as usize), data[pid as usize]);
        }
    }

    #[test]
    fn custom_order_places_neighbours_on_same_page() {
        let data = dataset(6, 2);
        let order = vec![5u32, 3, 1, 0, 2, 4];
        let config = PageStoreConfig::with_page_size(2 * 8 * 2); // 2 records per page
        let store = PageStore::build_with_order(config, 2, &order, |pid| &data[pid as usize]);
        // Points 5 and 3 were adjacent in the order, so they share page 0.
        assert_eq!(store.address_of(5).unwrap().page, PageId(0));
        assert_eq!(store.address_of(3).unwrap().page, PageId(0));
        assert_eq!(store.address_of(4).unwrap().page, PageId(2));
    }

    #[test]
    fn for_each_point_visits_every_point_in_id_order() {
        let data = dataset(7, 3);
        // Scattered layout: id order is not page order.
        let order = vec![6u32, 0, 3, 5, 1, 4, 2];
        let config = PageStoreConfig::with_page_size(3 * 8 * 2); // 2 records per page
        let store = PageStore::build_with_order(config, 3, &order, |pid| &data[pid as usize]);
        let mut seen = Vec::new();
        store
            .for_each_point(&mut |pid, coords| {
                assert_eq!(coords, &data[pid as usize][..]);
                seen.push(pid);
            })
            .unwrap();
        assert_eq!(seen, (0..7u32).collect::<Vec<_>>());
    }

    #[test]
    fn size_bytes_counts_padding() {
        let data = dataset(3, 2);
        let config = PageStoreConfig::with_page_size(4096);
        let store = PageStore::build_sequential(config, 2, 3, |pid| &data[pid as usize]);
        assert_eq!(store.page_count(), 1);
        assert_eq!(store.size_bytes(), 4096);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.config().page_size_bytes, 4096);
    }

    #[test]
    fn missing_page_and_point_return_none() {
        let data = dataset(2, 2);
        let store = PageStore::build_sequential(PageStoreConfig::default(), 2, 2, |pid| {
            &data[pid as usize]
        });
        assert!(store.raw_page(PageId(7)).is_none());
        assert!(store.address_of(99).is_none());
    }
}
