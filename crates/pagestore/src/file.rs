//! The file-backed storage backend: a real on-disk page file.
//!
//! # On-disk format (`BREPPGS1`, version 2)
//!
//! A page file is a sealed envelope (see [`crate::format`]) whose payload
//! holds a metadata block followed by the raw page region:
//!
//! ```text
//! offset            size        field
//! 0                 8           magic   b"BREPPGS1"
//! 8                 4           version u32 (= 2; version 1 still opens)
//! 12                8           payload_len u64
//! 20                8           checksum u64 — FNV-1a 64 over the payload
//! ── payload ──────────────────────────────────────────────────────────────
//! 28                8           meta_len u64
//! 36                meta_len    metadata block (see below)
//! 36 + meta_len     …           page region: the page payloads back to back
//! ```
//!
//! The metadata block ([`crate::format::ByteWriter`] encoding, all integers
//! little-endian, sequences length-prefixed):
//!
//! ```text
//! page_size    u64   nominal page size in bytes
//! dim          u64   record dimensionality
//! build_writes u64   pages written while building the original store
//! point_count  u64   number of point records (for validation)
//! page_count   u64   number of pages
//! page_layout  u8    page-codec tag (version ≥ 2 only; see below), then per page:
//!   offset     u64   byte offset of the page payload within the page region
//!   length     u64   byte length of the page payload
//!   point_ids  u32 sequence — resident point ids in slot order
//! ```
//!
//! Page payloads are usually exactly `page_size` bytes; a page holding a
//! single record wider than the nominal page size is stored at its true
//! length, which is why per-page offsets are explicit.
//!
//! # Page-codec versioning and migration
//!
//! Version 2 adds the one-byte `page_layout` codec tag
//! ([`PageLayout::tag`]): `0` = row-major (record-contiguous, the only
//! layout version 1 could express), `1` = dimension-major (lane-contiguous
//! SoA, the default for newly built stores). The tag applies to every page
//! payload in the file — a file never mixes codecs.
//!
//! Version-1 files carry no tag and are opened as row-major: the reader
//! falls back on [`crate::format::PersistError::UnsupportedVersion`] with
//! `found == 1` and parses the legacy metadata block unchanged. Old files
//! therefore keep working without rewriting; re-saving a reopened store
//! writes a version-2 file that preserves the original row-major codec
//! (the layout travels with [`PageStoreConfig`]).
//!
//! Opening a file verifies magic, version, payload length and checksum (the
//! checksum pass streams the payload in chunks, so the page region is never
//! resident in memory); afterwards only the metadata block is kept in memory
//! and every [`StorageBackend::read_page`] seeks into the page region.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::backend::{PageStoreError, StorageBackend};
use crate::format::{
    fnv1a64, read_envelope_header, ByteReader, ByteWriter, Fnv1a64, PersistError, PersistResult,
    ENVELOPE_HEADER_BYTES,
};
use crate::layout::{DiskLayout, PageAddress};
use crate::page::{Page, PageId, PageLayout};
use crate::store::PageStoreConfig;
use crate::PointId;

/// Magic tag of a page file.
pub const PAGE_FILE_MAGIC: [u8; 8] = *b"BREPPGS1";

/// Format version this build writes (and reads, alongside
/// [`LEGACY_PAGE_FILE_VERSION`]).
pub const PAGE_FILE_VERSION: u32 = 2;

/// The original row-major-only format, still accepted by
/// [`crate::PageStore::open`]; see the module docs for the migration rules.
pub const LEGACY_PAGE_FILE_VERSION: u32 = 1;

/// Per-page directory entry kept in memory by a [`FileBackend`].
#[derive(Debug, Clone)]
struct PageEntry {
    /// Byte offset of the payload within the page region.
    offset: u64,
    /// Byte length of the payload.
    length: u64,
    /// Resident point ids in slot order (shared with materialized pages).
    point_ids: Arc<[PointId]>,
}

/// Everything the metadata block describes, parsed once at open time.
#[derive(Debug)]
pub(crate) struct PageFileMeta {
    pub(crate) config: PageStoreConfig,
    pub(crate) dim: usize,
    pub(crate) build_writes: u64,
    pub(crate) point_count: usize,
    entries: Vec<PageEntry>,
}

impl PageFileMeta {
    /// Reconstruct the point → (page, slot) directory from the per-page id
    /// lists.
    pub(crate) fn layout(&self) -> DiskLayout {
        let mut layout = DiskLayout::with_capacity(self.point_count);
        for (page_index, entry) in self.entries.iter().enumerate() {
            for (slot, &pid) in entry.point_ids.iter().enumerate() {
                layout.set(pid, PageAddress { page: PageId(page_index as u32), slot: slot as u32 });
            }
        }
        layout
    }
}

/// The file-backed storage backend.
///
/// Holds the page directory in memory and an open handle on the page file;
/// every physical page read seeks into the page region. The handle sits
/// behind a mutex so one backend can be shared across query threads (each
/// read is one short critical section).
pub struct FileBackend {
    path: PathBuf,
    file: Mutex<BufReader<File>>,
    page_region_offset: u64,
    dim: usize,
    layout: PageLayout,
    entries: Vec<PageEntry>,
    /// Per-page FNV-1a checksums computed at open time: the whole-file
    /// envelope checksum only guards the *open*; these guard every
    /// subsequent physical read against bit rot mid-serve.
    checksums: Vec<u64>,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("path", &self.path)
            .field("pages", &self.entries.len())
            .field("dim", &self.dim)
            .finish()
    }
}

impl FileBackend {
    /// Open a page file, validating its envelope (magic, version, checksum)
    /// and parsing the metadata block. Returns the backend plus the parsed
    /// metadata so [`crate::PageStore::open`] can rebuild its directory.
    pub(crate) fn open(path: &Path) -> PersistResult<(FileBackend, PageFileMeta)> {
        let mut file = File::open(path)?;

        // Envelope header. Current-version files are the common case;
        // version-1 (row-major-only) files are accepted via fallback.
        let mut header = [0u8; ENVELOPE_HEADER_BYTES];
        read_exact_or_corrupt(&mut file, &mut header, "envelope header")?;
        let (version, (payload_len, checksum)) =
            match read_envelope_header(&PAGE_FILE_MAGIC, PAGE_FILE_VERSION, &header) {
                Ok(parsed) => (PAGE_FILE_VERSION, parsed),
                Err(PersistError::UnsupportedVersion {
                    found: LEGACY_PAGE_FILE_VERSION, ..
                }) => (
                    LEGACY_PAGE_FILE_VERSION,
                    read_envelope_header(&PAGE_FILE_MAGIC, LEGACY_PAGE_FILE_VERSION, &header)?,
                ),
                Err(e) => return Err(e),
            };
        let actual_len = file.metadata()?.len();
        let expected_len = ENVELOPE_HEADER_BYTES as u64 + payload_len;
        if actual_len != expected_len {
            return Err(PersistError::Corrupt(format!(
                "file is {actual_len} bytes but the header describes {expected_len}"
            )));
        }

        // Stream the payload once to verify the checksum without holding the
        // page region in memory.
        let found = streaming_fnv1a64(&mut file, ENVELOPE_HEADER_BYTES as u64, payload_len)?;
        if found != checksum {
            return Err(PersistError::ChecksumMismatch { expected: checksum, found });
        }

        // Metadata block.
        file.seek(SeekFrom::Start(ENVELOPE_HEADER_BYTES as u64))?;
        let mut meta_len_bytes = [0u8; 8];
        read_exact_or_corrupt(&mut file, &mut meta_len_bytes, "metadata length")?;
        let meta_len = u64::from_le_bytes(meta_len_bytes);
        if meta_len.saturating_add(8) > payload_len {
            return Err(PersistError::Corrupt(format!(
                "metadata block of {meta_len} bytes exceeds the {payload_len}-byte payload"
            )));
        }
        let mut meta_bytes = vec![0u8; meta_len as usize];
        read_exact_or_corrupt(&mut file, &mut meta_bytes, "metadata block")?;
        let meta = parse_meta(&meta_bytes, version)?;

        let page_region_offset = ENVELOPE_HEADER_BYTES as u64 + 8 + meta_len;
        let page_region_len = expected_len - page_region_offset;
        if let Some(last) = meta.entries.last() {
            if last.offset + last.length > page_region_len {
                return Err(PersistError::Corrupt(format!(
                    "page directory points {} bytes into a {page_region_len}-byte page region",
                    last.offset + last.length
                )));
            }
        }

        // Per-page checksums: one more sequential pass over the page region
        // (entries are validated contiguous above) so that bit rot *after*
        // open is caught on the page actually served — the whole-file
        // checksum above only guards this open.
        file.seek(SeekFrom::Start(page_region_offset))?;
        let mut checksums = Vec::with_capacity(meta.entries.len());
        let mut chunk = vec![0u8; 64 * 1024];
        for entry in &meta.entries {
            let mut hash = Fnv1a64::new();
            let mut remaining = entry.length;
            while remaining > 0 {
                let take = (remaining as usize).min(chunk.len());
                read_exact_or_corrupt(&mut file, &mut chunk[..take], "page payload")?;
                hash.update(&chunk[..take]);
                remaining -= take as u64;
            }
            checksums.push(hash.finish());
        }

        let backend = FileBackend {
            path: path.to_path_buf(),
            file: Mutex::new(BufReader::new(file)),
            page_region_offset,
            dim: meta.dim,
            layout: meta.config.layout,
            entries: meta.entries.clone(),
            checksums,
        };
        Ok((backend, meta))
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StorageBackend for FileBackend {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn page_count(&self) -> usize {
        self.entries.len()
    }

    /// # Panics
    ///
    /// Panics if the page file fails a read *after* a successful open (it
    /// was truncated, deleted, modified — caught by the per-page checksum —
    /// or hit a device error underneath us). The alternative — treating the
    /// failure as "unknown page id" — would make queries silently drop
    /// candidates and return wrong neighbors, which is strictly worse than
    /// failing loudly. Fallible read paths use
    /// [`StorageBackend::try_read_page`] instead.
    fn read_page(&self, id: PageId) -> Option<Page> {
        self.try_read_page(id).unwrap_or_else(|e| panic!("page file read failed: {e}"))
    }

    fn try_read_page(&self, id: PageId) -> Result<Option<Page>, PageStoreError> {
        let Some(entry) = self.entries.get(id.index()) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; entry.length as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(self.page_region_offset + entry.offset))
                .and_then(|_| file.read_exact(&mut buf))
                .map_err(|e| PageStoreError::Io {
                    page: id,
                    message: e.to_string(),
                    path: self.path.display().to_string(),
                })?;
        }
        let expected = self.checksums[id.index()];
        let found = fnv1a64(&buf);
        if found != expected {
            return Err(PageStoreError::Checksum {
                page: id,
                expected,
                found,
                path: self.path.display().to_string(),
            });
        }
        Ok(Some(Page::from_parts(
            id,
            self.dim,
            self.layout,
            entry.point_ids.clone(),
            Bytes::from(buf),
        )))
    }

    fn size_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.length as usize).sum()
    }
}

/// Write a backend's pages to `path` as the page-file image described in
/// the module docs.
///
/// The page region is *streamed*: pages are read from the backend one at a
/// time and written straight to the file while an incremental FNV-1a hash
/// accumulates the checksum, which is then patched into the header. Peak
/// memory is one page plus the metadata block, regardless of dataset size —
/// the save path never materializes a second copy of the disk image.
pub(crate) fn write_page_file(
    path: &Path,
    config: PageStoreConfig,
    dim: usize,
    build_writes: u64,
    point_count: usize,
    backend: &dyn StorageBackend,
) -> PersistResult<()> {
    use std::io::{BufWriter, Write};

    // Pass 1: build the metadata block. Only ids and lengths are kept; page
    // payloads are re-read during the streaming pass (cheap clones on the
    // memory backend, sequential re-reads when copying a file-backed store).
    let page_count = backend.page_count();
    let mut meta = ByteWriter::new();
    meta.put_u64(config.page_size_bytes as u64);
    meta.put_u64(dim as u64);
    meta.put_u64(build_writes);
    meta.put_u64(point_count as u64);
    meta.put_u64(page_count as u64);
    meta.put_u8(config.layout.tag());
    let mut region_len = 0u64;
    for i in 0..page_count {
        let page = backend.read_page(PageId(i as u32)).expect("page within count");
        meta.put_u64(region_len);
        meta.put_u64(page.payload().len() as u64);
        meta.put_u32_seq(page.point_ids());
        region_len += page.payload().len() as u64;
    }
    let meta = meta.into_vec();
    let payload_len = 8 + meta.len() as u64 + region_len;

    // Header with a placeholder checksum, then the payload, streamed.
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    out.write_all(&PAGE_FILE_MAGIC)?;
    out.write_all(&PAGE_FILE_VERSION.to_le_bytes())?;
    out.write_all(&payload_len.to_le_bytes())?;
    out.write_all(&0u64.to_le_bytes())?; // checksum, patched below

    let mut hash = Fnv1a64::new();
    let meta_len_bytes = (meta.len() as u64).to_le_bytes();
    hash.update(&meta_len_bytes);
    out.write_all(&meta_len_bytes)?;
    hash.update(&meta);
    out.write_all(&meta)?;
    for i in 0..page_count {
        let page = backend.read_page(PageId(i as u32)).expect("page within count");
        hash.update(page.payload());
        out.write_all(page.payload())?;
    }

    // Patch the checksum into the header.
    let mut file = out.into_inner().map_err(|e| PersistError::Io(e.into_error()))?;
    file.seek(SeekFrom::Start(20))?;
    file.write_all(&hash.finish().to_le_bytes())?;
    file.sync_all()?;
    Ok(())
}

fn parse_meta(bytes: &[u8], version: u32) -> PersistResult<PageFileMeta> {
    let mut r = ByteReader::new(bytes);
    let page_size = r.take_usize()?;
    let dim = r.take_usize()?;
    let build_writes = r.take_u64()?;
    let point_count = r.take_usize()?;
    let page_count = r.take_usize()?;
    // Version 1 predates the codec tag: every legacy page is row-major.
    let layout = if version >= PAGE_FILE_VERSION {
        let tag = r.take_u8()?;
        PageLayout::from_tag(tag)
            .ok_or_else(|| PersistError::Corrupt(format!("unknown page-codec tag {tag}")))?
    } else {
        PageLayout::RowMajor
    };
    let mut entries = Vec::with_capacity(page_count.min(1 << 20));
    let mut expected_offset = 0u64;
    for page in 0..page_count {
        let offset = r.take_u64()?;
        let length = r.take_u64()?;
        if offset != expected_offset {
            return Err(PersistError::Corrupt(format!(
                "page {page} starts at offset {offset}, expected {expected_offset}"
            )));
        }
        expected_offset = offset
            .checked_add(length)
            .ok_or_else(|| PersistError::Corrupt("page offsets overflow u64".into()))?;
        let point_ids: Arc<[PointId]> = r.take_u32_seq()?.into();
        entries.push(PageEntry { offset, length, point_ids });
    }
    r.expect_end()?;
    let recorded: usize = entries.iter().map(|e| e.point_ids.len()).sum();
    if recorded != point_count {
        return Err(PersistError::Corrupt(format!(
            "directory lists {recorded} point records, header says {point_count}"
        )));
    }
    // Every point id must be unique and within `0..point_count` — otherwise
    // a checksum-valid but malformed directory could force the layout to
    // allocate for a huge sparse id space, or leave points address-less.
    let mut seen = vec![false; point_count];
    for entry in &entries {
        for &pid in entry.point_ids.iter() {
            match seen.get_mut(pid as usize) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => {
                    return Err(PersistError::Corrupt(format!(
                        "point id {pid} appears in the directory more than once"
                    )))
                }
                None => {
                    return Err(PersistError::Corrupt(format!(
                        "point id {pid} out of range for {point_count} points"
                    )))
                }
            }
        }
    }
    Ok(PageFileMeta {
        config: PageStoreConfig { page_size_bytes: page_size, layout },
        dim,
        build_writes,
        point_count,
        entries,
    })
}

fn read_exact_or_corrupt(file: &mut File, buf: &mut [u8], what: &str) -> PersistResult<()> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt(format!("file truncated while reading the {what}"))
        } else {
            PersistError::Io(e)
        }
    })
}

/// FNV-1a 64 over `len` bytes starting at `offset`, streamed in chunks.
fn streaming_fnv1a64(file: &mut File, offset: u64, len: u64) -> PersistResult<u64> {
    file.seek(SeekFrom::Start(offset))?;
    let mut hash = Fnv1a64::new();
    let mut remaining = len;
    let mut chunk = vec![0u8; 64 * 1024];
    while remaining > 0 {
        let take = (remaining as usize).min(chunk.len());
        read_exact_or_corrupt(file, &mut chunk[..take], "payload")?;
        hash.update(&chunk[..take]);
        remaining -= take as u64;
    }
    Ok(hash.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PageStore;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagestore-file-test-{}-{name}", std::process::id()))
    }

    fn sample_store() -> (PageStore, Vec<Vec<f64>>) {
        let data: Vec<Vec<f64>> =
            (0..10).map(|i| (0..3).map(|j| (i * 3 + j) as f64).collect()).collect();
        let config = PageStoreConfig::with_page_size(3 * 8 * 4); // 4 records/page
        let store = PageStore::build_sequential(config, 3, 10, |pid| &data[pid as usize]);
        (store, data)
    }

    #[test]
    fn save_open_roundtrip_serves_identical_pages() {
        let (store, data) = sample_store();
        let path = temp_path("roundtrip");
        store.save(&path).unwrap();
        let reopened = PageStore::open(&path).unwrap();
        assert_eq!(reopened.backend_kind(), "file");
        assert_eq!(reopened.page_count(), store.page_count());
        assert_eq!(reopened.point_count(), store.point_count());
        assert_eq!(reopened.dim(), store.dim());
        assert_eq!(reopened.size_bytes(), store.size_bytes());
        assert_eq!(reopened.build_writes(), store.build_writes());
        assert_eq!(reopened.config(), store.config());
        for pid in 0..10u32 {
            let addr = reopened.address_of(pid).unwrap();
            assert_eq!(addr, store.address_of(pid).unwrap());
            let page = reopened.raw_page(addr.page).unwrap();
            assert_eq!(page.decode_slot(addr.slot as usize), data[pid as usize]);
        }
        assert!(reopened.raw_page(PageId(99)).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_page_bytes_fail_the_checksum() {
        let (store, _) = sample_store();
        let path = temp_path("corrupt");
        store.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(PageStore::open(&path), Err(PersistError::ChecksumMismatch { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let (store, _) = sample_store();
        let path = temp_path("truncated");
        store.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(PageStore::open(&path), Err(PersistError::Corrupt(_))));
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(PageStore::open(&path), Err(PersistError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let (store, _) = sample_store();
        let path = temp_path("magic");
        store.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pristine = bytes.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(PageStore::open(&path), Err(PersistError::BadMagic { .. })));
        bytes = pristine;
        bytes[8] = 0xFF; // version LSB
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(PageStore::open(&path), Err(PersistError::UnsupportedVersion { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_valid_but_malformed_directory_is_rejected() {
        // Duplicate a point id in the directory and re-seal the checksum:
        // open must fail on directory validation, not serve a broken layout.
        let (store, _) = sample_store();
        let path = temp_path("malformed");
        store.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Layout: header (28) + meta_len (8) + fixed meta fields (5 × u64 +
        // codec byte), then page 0's entry: offset u64, length u64,
        // id-seq len u64, ids.
        let first_id_at = ENVELOPE_HEADER_BYTES + 8 + 41 + 24;
        let second_id = bytes[first_id_at + 4..first_id_at + 8].to_vec();
        bytes[first_id_at..first_id_at + 4].copy_from_slice(&second_id);
        let checksum = crate::format::fnv1a64(&bytes[ENVELOPE_HEADER_BYTES..]);
        bytes[20..28].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match PageStore::open(&path) {
            Err(PersistError::Corrupt(message)) => {
                assert!(message.contains("more than once"), "{message}");
            }
            other => panic!("expected corrupt-directory error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backed_store_counts_io_like_the_memory_store() {
        use crate::buffer_pool::BufferPool;
        let (store, data) = sample_store();
        let path = temp_path("io");
        store.save(&path).unwrap();
        let reopened = PageStore::open(&path).unwrap();

        let mut mem_pool = BufferPool::unbuffered();
        let mut file_pool = BufferPool::unbuffered();
        let points: Vec<u32> = (0..10).collect();
        let from_mem = mem_pool.read_points(&store, &points);
        let from_file = file_pool.read_points(&reopened, &points);
        assert_eq!(from_mem.len(), from_file.len());
        for ((mp, mc), (fp, fc)) in from_mem.iter().zip(from_file.iter()) {
            assert_eq!(mp, fp);
            assert_eq!(mc, fc);
            assert_eq!(mc, &data[*mp as usize]);
        }
        assert_eq!(mem_pool.stats(), file_pool.stats());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_version_1_files_open_as_row_major() {
        // Down-convert a freshly saved row-major file to the version-1 image
        // (no codec byte) and check the migration path: it must open, serve
        // identical records, and report the row-major codec.
        let data: Vec<Vec<f64>> =
            (0..10).map(|i| (0..3).map(|j| (i * 3 + j) as f64).collect()).collect();
        let config =
            PageStoreConfig::with_page_size(3 * 8 * 4).with_layout(crate::PageLayout::RowMajor);
        let store = PageStore::build_sequential(config, 3, 10, |pid| &data[pid as usize]);
        let path = temp_path("legacy-v1");
        store.save(&path).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        bytes[12..20].copy_from_slice(&(payload_len - 1).to_le_bytes());
        let meta_len_at = ENVELOPE_HEADER_BYTES;
        let meta_len = u64::from_le_bytes(bytes[meta_len_at..meta_len_at + 8].try_into().unwrap());
        bytes[meta_len_at..meta_len_at + 8].copy_from_slice(&(meta_len - 1).to_le_bytes());
        bytes.remove(ENVELOPE_HEADER_BYTES + 8 + 40); // the codec byte
        let checksum = crate::format::fnv1a64(&bytes[ENVELOPE_HEADER_BYTES..]);
        bytes[20..28].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let reopened = PageStore::open(&path).unwrap();
        assert_eq!(reopened.config().layout, crate::PageLayout::RowMajor);
        assert_eq!(reopened.point_count(), 10);
        let mut pool = crate::BufferPool::unbuffered();
        for pid in 0..10u32 {
            assert_eq!(pool.read_point(&reopened, pid).unwrap(), data[pid as usize]);
        }

        // Re-saving writes a current-version file that keeps the codec.
        let resaved = temp_path("legacy-v1-resaved");
        reopened.save(&resaved).unwrap();
        let again = PageStore::open(&resaved).unwrap();
        assert_eq!(again.config(), reopened.config());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&resaved).unwrap();
    }

    #[test]
    fn bit_rot_after_open_surfaces_as_checksum_error_not_garbage() {
        use crate::buffer_pool::BufferPool;
        use std::io::Write;

        let (store, data) = sample_store();
        let path = temp_path("bit-rot");
        store.save(&path).unwrap();
        let reopened = PageStore::open(&path).unwrap();

        // Flip one byte inside page 0's payload *in place* after open —
        // the envelope checksum only guards the open; mid-serve bit rot
        // must be caught by the per-page checksums on the read path.
        let meta_len = {
            let bytes = std::fs::read(&path).unwrap();
            u64::from_le_bytes(
                bytes[ENVELOPE_HEADER_BYTES..ENVELOPE_HEADER_BYTES + 8].try_into().unwrap(),
            )
        };
        let target = ENVELOPE_HEADER_BYTES as u64 + 8 + meta_len + 3;
        let mut file = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        file.seek(SeekFrom::Start(target)).unwrap();
        let mut byte = [0u8; 1];
        file.read_exact(&mut byte).unwrap();
        file.seek(SeekFrom::Start(target)).unwrap();
        file.write_all(&[byte[0] ^ 0x01]).unwrap();
        file.sync_all().unwrap();
        drop(file);

        // Both batch read paths surface the corruption as a descriptive
        // error instead of a panic or silent garbage.
        let mut pool = BufferPool::unbuffered();
        let mut coords = Vec::new();
        let err = pool
            .read_points_with(&reopened, &[0, 1], &mut coords, &mut |_, _| {
                panic!("corrupt page must not be served")
            })
            .unwrap_err();
        match &err {
            PageStoreError::Checksum { page, expected, found, path } => {
                assert_eq!(*page, PageId(0));
                assert_ne!(expected, found);
                assert!(path.contains("bit-rot"), "{path}");
            }
            other => panic!("expected a checksum error, got {other:?}"),
        }
        assert!(err.to_string().contains("checksum"), "{err}");
        let mut lanes = Vec::new();
        assert!(matches!(
            pool.read_points_block(&reopened, &[0], &mut lanes, &mut |_, _| {}),
            Err(PageStoreError::Checksum { .. })
        ));
        // Pages outside the flipped byte still verify and serve.
        assert_eq!(pool.read_point(&reopened, 9).unwrap(), data[9]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resaving_a_file_backed_store_preserves_the_image() {
        let (store, _) = sample_store();
        let path_a = temp_path("resave-a");
        let path_b = temp_path("resave-b");
        store.save(&path_a).unwrap();
        let reopened = PageStore::open(&path_a).unwrap();
        reopened.save(&path_b).unwrap();
        assert_eq!(std::fs::read(&path_a).unwrap(), std::fs::read(&path_b).unwrap());
        std::fs::remove_file(&path_a).unwrap();
        std::fs::remove_file(&path_b).unwrap();
    }
}
