//! The point → page directory (`P.address` in the paper's BB-forest).

use crate::page::PageId;
use crate::PointId;

/// Physical address of a point record: which page it lives in and which slot
/// within that page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageAddress {
    /// Page holding the record.
    pub page: PageId,
    /// Slot (record index) within the page.
    pub slot: u32,
}

/// Directory mapping every point id to its [`PageAddress`].
///
/// The BB-forest records these addresses in the leaf nodes of every subspace
/// tree, so a candidate produced by any subspace resolves to the same page.
#[derive(Debug, Clone, Default)]
pub struct DiskLayout {
    addresses: Vec<Option<PageAddress>>,
    /// Number of `Some` entries in `addresses`, maintained by [`set`] so
    /// [`len`]/[`is_empty`] never rescan the directory.
    ///
    /// [`set`]: DiskLayout::set
    /// [`len`]: DiskLayout::len
    /// [`is_empty`]: DiskLayout::is_empty
    live: usize,
}

impl DiskLayout {
    /// An empty layout with room for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        Self { addresses: vec![None; n], live: 0 }
    }

    /// Record the address of a point, growing the directory as needed.
    pub fn set(&mut self, point: PointId, address: PageAddress) {
        let idx = point as usize;
        if idx >= self.addresses.len() {
            self.addresses.resize(idx + 1, None);
        }
        if self.addresses[idx].is_none() {
            self.live += 1;
        }
        self.addresses[idx] = Some(address);
    }

    /// Look up the address of a point.
    pub fn get(&self, point: PointId) -> Option<PageAddress> {
        self.addresses.get(point as usize).copied().flatten()
    }

    /// Number of points with a recorded address (O(1): the live count is
    /// maintained incrementally, not recounted per call).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no address has been recorded.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over `(point, address)` pairs in point-id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, PageAddress)> + '_ {
        self.addresses.iter().enumerate().filter_map(|(i, a)| a.map(|addr| (i as PointId, addr)))
    }

    /// Group a set of points by the page they live on, preserving first-seen
    /// page order. This is the primitive both the BB-forest and the VA-file
    /// use to turn a candidate list into a page access list.
    pub fn pages_for(&self, points: &[PointId]) -> Vec<(PageId, Vec<PointId>)> {
        let mut order: Vec<PageId> = Vec::new();
        let mut groups: std::collections::HashMap<PageId, Vec<PointId>> =
            std::collections::HashMap::new();
        for &p in points {
            if let Some(addr) = self.get(p) {
                let entry = groups.entry(addr.page).or_insert_with(|| {
                    order.push(addr.page);
                    Vec::new()
                });
                entry.push(p);
            }
        }
        order
            .into_iter()
            .map(|page| {
                let pts = groups.remove(&page).unwrap_or_default();
                (page, pts)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_and_growth() {
        let mut layout = DiskLayout::with_capacity(2);
        layout.set(0, PageAddress { page: PageId(0), slot: 0 });
        layout.set(5, PageAddress { page: PageId(2), slot: 1 });
        assert_eq!(layout.get(0), Some(PageAddress { page: PageId(0), slot: 0 }));
        assert_eq!(layout.get(5), Some(PageAddress { page: PageId(2), slot: 1 }));
        assert_eq!(layout.get(1), None);
        assert_eq!(layout.get(99), None);
        assert_eq!(layout.len(), 2);
        assert!(!layout.is_empty());
    }

    #[test]
    fn iter_returns_only_recorded_points() {
        let mut layout = DiskLayout::default();
        layout.set(3, PageAddress { page: PageId(1), slot: 0 });
        layout.set(1, PageAddress { page: PageId(0), slot: 7 });
        let pairs: Vec<_> = layout.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 1);
        assert_eq!(pairs[1].0, 3);
    }

    #[test]
    fn pages_for_groups_and_preserves_first_seen_order() {
        let mut layout = DiskLayout::default();
        layout.set(0, PageAddress { page: PageId(4), slot: 0 });
        layout.set(1, PageAddress { page: PageId(2), slot: 0 });
        layout.set(2, PageAddress { page: PageId(4), slot: 1 });
        layout.set(3, PageAddress { page: PageId(9), slot: 0 });
        let groups = layout.pages_for(&[0, 1, 2, 3, 99]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, PageId(4));
        assert_eq!(groups[0].1, vec![0, 2]);
        assert_eq!(groups[1].0, PageId(2));
        assert_eq!(groups[2].0, PageId(9));
    }

    #[test]
    fn rewriting_an_address_does_not_inflate_len() {
        let mut layout = DiskLayout::with_capacity(4);
        layout.set(2, PageAddress { page: PageId(0), slot: 0 });
        layout.set(2, PageAddress { page: PageId(3), slot: 5 });
        assert_eq!(layout.len(), 1);
        assert_eq!(layout.get(2), Some(PageAddress { page: PageId(3), slot: 5 }));
        layout.set(7, PageAddress { page: PageId(1), slot: 0 });
        assert_eq!(layout.len(), 2);
    }

    #[test]
    fn empty_layout_reports_empty() {
        let layout = DiskLayout::default();
        assert!(layout.is_empty());
        assert!(layout.pages_for(&[1, 2, 3]).is_empty());
    }
}
