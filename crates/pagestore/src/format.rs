//! Little-endian binary encoding primitives shared by every persistent
//! artifact in the workspace.
//!
//! Each saved artifact (page file, BB-tree, VA-file metadata, BrePartition
//! index metadata, spec envelope, delta log) is a *sealed envelope*:
//!
//! ```text
//! offset  size  field
//! 0       8     magic      — artifact tag, e.g. b"BREPPGS1"
//! 8       4     version    — format version (little-endian u32)
//! 12      8     payload_len — length of the payload in bytes (u64)
//! 20      8     checksum   — FNV-1a 64 over the payload
//! 28      …     payload    — artifact-specific body
//! ```
//!
//! [`seal`] produces the envelope, [`unseal`] validates magic, version,
//! length and checksum before handing the payload back. Payload bodies are
//! written with [`ByteWriter`] and parsed with [`ByteReader`]; every scalar
//! is little-endian and every sequence is length-prefixed, so the format is
//! architecture-independent.

use std::fmt;

/// Size in bytes of the sealed-envelope header.
pub const ENVELOPE_HEADER_BYTES: usize = 8 + 4 + 8 + 8;

/// Errors raised while saving or opening a persistent artifact.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected artifact magic.
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 8],
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The file was written by an unsupported format version.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The payload does not match the checksum recorded in the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the payload.
        found: u64,
    },
    /// The payload is structurally invalid (truncated, inconsistent counts,
    /// out-of-range references, …).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads version {supported})"
                )
            }
            PersistError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}")
            }
            PersistError::Corrupt(message) => write!(f, "corrupt artifact: {message}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Convenience alias for persistence results.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

/// Incremental FNV-1a 64-bit hasher, the checksum used by every sealed
/// envelope (cheap, dependency-free, and plenty for corruption detection —
/// this is not a cryptographic integrity check). The incremental form lets
/// writers and readers stream large payloads without materializing them.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: Self::OFFSET_BASIS }
    }

    /// Fold more bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The hash of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64 of a byte slice in one call.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = Fnv1a64::new();
    hash.update(bytes);
    hash.finish()
}

/// Wrap a payload in a sealed envelope (magic, version, length, checksum).
pub fn seal(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_BYTES + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse a sealed envelope header, returning `(payload_len, checksum)`.
///
/// `data` must hold at least [`ENVELOPE_HEADER_BYTES`]; the payload itself
/// is *not* validated — callers that stream the payload (the file-backed
/// page store) verify the checksum separately.
pub fn read_envelope_header(
    magic: &[u8; 8],
    version: u32,
    data: &[u8],
) -> PersistResult<(u64, u64)> {
    if data.len() < ENVELOPE_HEADER_BYTES {
        return Err(PersistError::Corrupt(format!(
            "file too short for an envelope header ({} bytes)",
            data.len()
        )));
    }
    let mut found_magic = [0u8; 8];
    found_magic.copy_from_slice(&data[..8]);
    if &found_magic != magic {
        return Err(PersistError::BadMagic { expected: *magic, found: found_magic });
    }
    let found_version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if found_version != version {
        return Err(PersistError::UnsupportedVersion { found: found_version, supported: version });
    }
    let payload_len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
    Ok((payload_len, checksum))
}

/// Validate a sealed envelope held entirely in memory and return its payload.
pub fn unseal<'a>(magic: &[u8; 8], version: u32, data: &'a [u8]) -> PersistResult<&'a [u8]> {
    let (payload_len, checksum) = read_envelope_header(magic, version, data)?;
    let payload = &data[ENVELOPE_HEADER_BYTES..];
    if payload.len() as u64 != payload_len {
        return Err(PersistError::Corrupt(format!(
            "payload length mismatch: header says {payload_len}, file holds {}",
            payload.len()
        )));
    }
    let found = fnv1a64(payload);
    if found != checksum {
        return Err(PersistError::ChecksumMismatch { expected: checksum, found });
    }
    Ok(payload)
}

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` by its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Append a length-prefixed `u16` sequence.
    pub fn put_u16_seq(&mut self, values: &[u16]) {
        self.put_usize(values.len());
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u32` sequence.
    pub fn put_u32_seq(&mut self, values: &[u32]) {
        self.put_usize(values.len());
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u64` sequence.
    pub fn put_u64_seq(&mut self, values: &[u64]) {
        self.put_usize(values.len());
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `f64` sequence.
    pub fn put_f64_seq(&mut self, values: &[f64]) {
        self.put_usize(values.len());
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Little-endian payload reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt(format!(
                "truncated payload: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> PersistResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn take_u32(&mut self) -> PersistResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn take_u64(&mut self) -> PersistResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a `usize` stored as a `u64`, rejecting values that do not fit.
    pub fn take_usize(&mut self) -> PersistResult<usize> {
        let v = self.take_u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::Corrupt(format!("length {v} exceeds the address space")))
    }

    /// Read an `f64`.
    pub fn take_f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> PersistResult<&'a [u8]> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> PersistResult<String> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PersistError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }

    /// Read a length-prefixed `u16` sequence.
    pub fn take_u16_seq(&mut self) -> PersistResult<Vec<u16>> {
        let len = self.seq_len(2)?;
        (0..len)
            .map(|_| Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes"))))
            .collect()
    }

    /// Read a length-prefixed `u32` sequence.
    pub fn take_u32_seq(&mut self) -> PersistResult<Vec<u32>> {
        let len = self.seq_len(4)?;
        (0..len).map(|_| self.take_u32()).collect()
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn take_u64_seq(&mut self) -> PersistResult<Vec<u64>> {
        let len = self.seq_len(8)?;
        (0..len).map(|_| self.take_u64()).collect()
    }

    /// Read a length-prefixed `f64` sequence.
    pub fn take_f64_seq(&mut self) -> PersistResult<Vec<f64>> {
        let len = self.seq_len(8)?;
        (0..len).map(|_| self.take_f64()).collect()
    }

    /// Require that every byte was consumed.
    pub fn expect_end(&self) -> PersistResult<()> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Validate a sequence length prefix against the bytes that remain, so a
    /// corrupted length cannot trigger a huge allocation.
    fn seq_len(&mut self, element_bytes: usize) -> PersistResult<usize> {
        let len = self.take_usize()?;
        if len.checked_mul(element_bytes).is_none_or(|total| total > self.remaining()) {
            return Err(PersistError::Corrupt(format!(
                "sequence of {len} × {element_bytes}-byte elements exceeds the {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_every_type() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f64(-1.5);
        w.put_str("bregman");
        w.put_u16_seq(&[1, 2, 3]);
        w.put_u32_seq(&[9, 8]);
        w.put_u64_seq(&[5]);
        w.put_f64_seq(&[0.25, -0.5]);
        w.put_bytes(&[0xAA, 0xBB]);
        let bytes = w.into_vec();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_usize().unwrap(), 42);
        assert_eq!(r.take_f64().unwrap(), -1.5);
        assert_eq!(r.take_str().unwrap(), "bregman");
        assert_eq!(r.take_u16_seq().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_u32_seq().unwrap(), vec![9, 8]);
        assert_eq!(r.take_u64_seq().unwrap(), vec![5]);
        assert_eq!(r.take_f64_seq().unwrap(), vec![0.25, -0.5]);
        assert_eq!(r.take_bytes().unwrap(), &[0xAA, 0xBB]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let bytes = vec![1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.take_u64().is_err());
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 1);
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn oversized_sequence_length_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_f64_seq(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let magic = b"TESTMAG1";
        let payload = b"hello payload".to_vec();
        let sealed = seal(magic, 3, &payload);
        assert_eq!(unseal(magic, 3, &sealed).unwrap(), payload.as_slice());
    }

    #[test]
    fn unseal_rejects_wrong_magic_version_and_corruption() {
        let magic = b"TESTMAG1";
        let sealed = seal(magic, 1, b"payload");
        assert!(matches!(unseal(b"OTHERMAG", 1, &sealed), Err(PersistError::BadMagic { .. })));
        assert!(matches!(
            unseal(magic, 2, &sealed),
            Err(PersistError::UnsupportedVersion { found: 1, supported: 2 })
        ));
        let mut flipped = sealed.clone();
        *flipped.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(unseal(magic, 1, &flipped), Err(PersistError::ChecksumMismatch { .. })));
        let mut short = sealed;
        short.truncate(ENVELOPE_HEADER_BYTES + 2);
        assert!(matches!(unseal(magic, 1, &short), Err(PersistError::Corrupt(_))));
        assert!(matches!(unseal(magic, 1, &[1, 2, 3]), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable() {
        // Reference values of FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn persist_error_display_is_informative() {
        let e = PersistError::BadMagic { expected: *b"BREPPGS1", found: *b"NOTMAGIC" };
        assert!(e.to_string().contains("BREPPGS1"));
        let e = PersistError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains('9'));
        let e = PersistError::ChecksumMismatch { expected: 1, found: 2 };
        assert!(e.to_string().contains("checksum"));
        let e: PersistError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(PersistError::Corrupt("x".into()).source().is_none());
    }
}
