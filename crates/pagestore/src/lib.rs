//! A disk-resident page store with I/O accounting and pluggable storage.
//!
//! The BrePartition paper evaluates every index by its *I/O cost*: the number
//! of disk pages fetched per query on an SSD with a configurable page size
//! (Table 4 uses 32 KB–128 KB pages depending on the dataset). This crate
//! reproduces that measurement deterministically:
//!
//! * [`PageStore`] — an immutable, page-organized copy of a dataset. Points
//!   are serialized into fixed-size pages in a caller-supplied order (the
//!   BB-forest lays points out in the leaf order of one of its trees so that
//!   all subspaces touch the same pages).
//! * [`StorageBackend`] — where the page images physically live:
//!   [`MemoryBackend`] (the deterministic in-memory simulation, the default
//!   when building) or [`FileBackend`] (a real page file with a versioned,
//!   checksummed header, opened with [`PageStore::open`]). See [`file`](mod@file) for
//!   the on-disk format.
//! * [`DiskLayout`] — the point → (page, slot) directory, i.e. the
//!   `P.address` stored in BB-forest leaf nodes.
//! * [`BufferPool`] — a scan-resistant (SIEVE) cache in front of the store,
//!   with O(1) touches and pinnable pages. Every miss counts as one physical
//!   page read in [`IoStats`]; hits are counted separately. Capacity zero is
//!   the *unbuffered* pool: nothing is retained and every access is a
//!   counted physical read.
//! * [`SharedPageCache`] — one SIEVE cache shared by several [`BufferPool`]
//!   handles (warm multi-worker serving; I/O stays attributed per handle);
//!   [`SharedBufferPool`] — a mutex-wrapped pool for multi-threaded
//!   experiment harnesses.
//! * [`format`](mod@format) — the little-endian encoding primitives and the sealed
//!   envelope (magic, version, FNV-1a checksum) shared by every persistent
//!   artifact in the workspace (page files, BB-trees, index metadata).
//!
//! With the memory backend the store is "simulated": pages live in memory,
//! but the byte-level layout (little-endian `f64` records packed into
//! fixed-size pages) and the access-path accounting match what a real
//! disk-resident implementation does. [`PageStore::save`] serializes exactly
//! that image to a file; [`PageStore::open`] serves the same pages — same
//! ids, same layout, same I/O counts — from disk.
//!
//! ```
//! use pagestore::{BufferPool, PageStore, PageStoreConfig};
//!
//! let data: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
//! let store = PageStore::build_sequential(
//!     PageStoreConfig::with_page_size(256),
//!     2,
//!     data.len(),
//!     |pid| &data[pid as usize],
//! );
//! let path = std::env::temp_dir().join("pagestore-doc-example.pages");
//! store.save(&path).unwrap();
//!
//! let reopened = PageStore::open(&path).unwrap();
//! let mut pool = BufferPool::unbuffered();
//! assert_eq!(pool.read_point(&reopened, 17).unwrap(), data[17]);
//! assert_eq!(pool.stats().pages_read, 1);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod buffer_pool;
pub mod file;
pub mod format;
pub mod io_stats;
pub mod layout;
pub mod page;
pub mod store;

pub use backend::{MemoryBackend, PageStoreError, StorageBackend};
pub use buffer_pool::{BufferPool, SharedBufferPool, SharedPageCache};
pub use file::FileBackend;
pub use format::{PersistError, PersistResult};
pub use io_stats::{AtomicIoStats, IoStats};
pub use layout::{DiskLayout, PageAddress};
pub use page::{Page, PageId, PageLayout};
pub use store::{PageStore, PageStoreConfig};

/// Identifier of a point: a dense `u32` index, matching
/// `bregman::PointId.0`. The page store is deliberately independent of the
/// `bregman` crate so it can page out any fixed-width `f64` records.
pub type PointId = u32;
