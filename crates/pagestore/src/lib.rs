//! A simulated disk-resident page store with I/O accounting.
//!
//! The BrePartition paper evaluates every index by its *I/O cost*: the number
//! of disk pages fetched per query on an SSD with a configurable page size
//! (Table 4 uses 32 KB–128 KB pages depending on the dataset). This crate
//! reproduces that measurement deterministically:
//!
//! * [`PageStore`] — an immutable, page-organized copy of a dataset. Points
//!   are serialized into fixed-size pages in a caller-supplied order (the
//!   BB-forest lays points out in the leaf order of one of its trees so that
//!   all subspaces touch the same pages).
//! * [`DiskLayout`] — the point → (page, slot) directory, i.e. the
//!   `P.address` stored in BB-forest leaf nodes.
//! * [`BufferPool`] — an LRU cache in front of the store. Every miss counts
//!   as one physical page read in [`IoStats`]; hits are counted separately.
//! * [`SharedBufferPool`] — a mutex-wrapped pool for multi-threaded
//!   experiment harnesses.
//!
//! The store is "simulated" in the sense that pages live in memory, but the
//! byte-level layout (little-endian `f64` records packed into fixed-size
//! pages) and the access-path accounting match what a real disk-resident
//! implementation would do, which is what the paper's I/O metric measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer_pool;
pub mod io_stats;
pub mod layout;
pub mod page;
pub mod store;

pub use buffer_pool::{BufferPool, SharedBufferPool};
pub use io_stats::{AtomicIoStats, IoStats};
pub use layout::{DiskLayout, PageAddress};
pub use page::{Page, PageId};
pub use store::{PageStore, PageStoreConfig};

/// Identifier of a point: a dense `u32` index, matching
/// `bregman::PointId.0`. The page store is deliberately independent of the
/// `bregman` crate so it can page out any fixed-width `f64` records.
pub type PointId = u32;
