//! The [`StorageBackend`] abstraction: where page images physically live.
//!
//! A [`crate::PageStore`] owns the page *directory* (point → page/slot
//! layout, configuration) but delegates page-image storage to a backend:
//!
//! * [`MemoryBackend`] — the deterministic in-memory simulation the paper's
//!   experiments run against. Every page is resident; a "physical read" is a
//!   cheap clone of the shared page (the I/O counters in
//!   [`crate::BufferPool`] still model a disk).
//! * [`crate::FileBackend`] — a real file with a versioned, checksummed
//!   header; every physical read seeks into the page region and
//!   materializes the page from disk (see [`crate::file`] for the format).
//!
//! Both are served through the same [`crate::BufferPool`]/[`crate::IoStats`]
//! path, so per-query I/O accounting is identical no matter where the bytes
//! come from.

use crate::page::{Page, PageId};

/// A physical page read that failed *after* the store opened successfully:
/// bit rot caught by a per-page checksum, or a device/file error underneath
/// an open handle. Distinct from [`crate::PersistError`], which covers
/// open/save-time failures — this is the mid-serve failure surface that the
/// batch read paths ([`crate::BufferPool::read_points_with`] /
/// [`crate::BufferPool::read_points_block`]) report as an error instead of
/// panicking or serving garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageStoreError {
    /// The page payload read from storage no longer matches the checksum
    /// recorded when the file was opened.
    Checksum {
        /// The page whose payload failed verification.
        page: PageId,
        /// Checksum recorded at open time.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
        /// The backing file that served the bytes.
        path: String,
    },
    /// The backing device or file failed mid-read.
    Io {
        /// The page being read when the failure happened.
        page: PageId,
        /// The underlying I/O error, rendered.
        message: String,
        /// The backing file that was being read.
        path: String,
    },
}

impl std::fmt::Display for PageStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageStoreError::Checksum { page, expected, found, path } => write!(
                f,
                "{page} of {path} failed checksum verification: expected {expected:#018x}, \
                 read {found:#018x} (bit rot or concurrent modification since open)"
            ),
            PageStoreError::Io { page, message, path } => write!(
                f,
                "{page} of {path} failed to read: {message} \
                 (file changed or device error since open)"
            ),
        }
    }
}

impl std::error::Error for PageStoreError {}

/// Physical storage of page images behind a [`crate::PageStore`].
///
/// Implementations must be `Send + Sync`: one store is shared (via `Arc`)
/// across the query-engine worker threads.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Short backend tag (`"memory"` or `"file"`), used in diagnostics.
    fn kind(&self) -> &'static str;

    /// Number of pages stored.
    fn page_count(&self) -> usize;

    /// Materialize one page, or `None` for an unknown id. This is a
    /// *physical* access with no accounting — indexes must go through a
    /// [`crate::BufferPool`].
    fn read_page(&self, id: PageId) -> Option<Page>;

    /// Materialize one page like [`StorageBackend::read_page`], but report
    /// post-open corruption or device failure as a [`PageStoreError`]
    /// instead of panicking. `Ok(None)` still means "unknown page id".
    /// Backends with no post-open failure mode (the in-memory simulation)
    /// use this default.
    fn try_read_page(&self, id: PageId) -> Result<Option<Page>, PageStoreError> {
        Ok(self.read_page(id))
    }

    /// Total size of the stored page images in bytes (payloads including
    /// padding, excluding directory metadata).
    fn size_bytes(&self) -> usize;
}

/// The in-memory backend: all pages resident, reads are clone-outs.
#[derive(Debug)]
pub struct MemoryBackend {
    pages: Vec<Page>,
}

impl MemoryBackend {
    /// A backend over the given pages (page `i` must have id `i`).
    pub fn new(pages: Vec<Page>) -> Self {
        debug_assert!(pages.iter().enumerate().all(|(i, p)| p.id().index() == i));
        Self { pages }
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&self, id: PageId) -> Option<Page> {
        self.pages.get(id.index()).cloned()
    }

    fn size_bytes(&self) -> usize {
        self.pages.iter().map(Page::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backend_reads_by_id() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let pages = vec![
            Page::encode(PageId(0), 2, &[(0, &a)], 64),
            Page::encode(PageId(1), 2, &[(1, &b)], 64),
        ];
        let backend = MemoryBackend::new(pages);
        assert_eq!(backend.kind(), "memory");
        assert_eq!(backend.page_count(), 2);
        assert_eq!(backend.size_bytes(), 128);
        assert_eq!(backend.read_page(PageId(1)).unwrap().decode_slot(0), b);
        assert!(backend.read_page(PageId(9)).is_none());
    }
}
