//! The [`StorageBackend`] abstraction: where page images physically live.
//!
//! A [`crate::PageStore`] owns the page *directory* (point → page/slot
//! layout, configuration) but delegates page-image storage to a backend:
//!
//! * [`MemoryBackend`] — the deterministic in-memory simulation the paper's
//!   experiments run against. Every page is resident; a "physical read" is a
//!   cheap clone of the shared page (the I/O counters in
//!   [`crate::BufferPool`] still model a disk).
//! * [`crate::FileBackend`] — a real file with a versioned, checksummed
//!   header; every physical read seeks into the page region and
//!   materializes the page from disk (see [`crate::file`] for the format).
//!
//! Both are served through the same [`crate::BufferPool`]/[`crate::IoStats`]
//! path, so per-query I/O accounting is identical no matter where the bytes
//! come from.

use crate::page::{Page, PageId};

/// Physical storage of page images behind a [`crate::PageStore`].
///
/// Implementations must be `Send + Sync`: one store is shared (via `Arc`)
/// across the query-engine worker threads.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Short backend tag (`"memory"` or `"file"`), used in diagnostics.
    fn kind(&self) -> &'static str;

    /// Number of pages stored.
    fn page_count(&self) -> usize;

    /// Materialize one page, or `None` for an unknown id. This is a
    /// *physical* access with no accounting — indexes must go through a
    /// [`crate::BufferPool`].
    fn read_page(&self, id: PageId) -> Option<Page>;

    /// Total size of the stored page images in bytes (payloads including
    /// padding, excluding directory metadata).
    fn size_bytes(&self) -> usize;
}

/// The in-memory backend: all pages resident, reads are clone-outs.
#[derive(Debug)]
pub struct MemoryBackend {
    pages: Vec<Page>,
}

impl MemoryBackend {
    /// A backend over the given pages (page `i` must have id `i`).
    pub fn new(pages: Vec<Page>) -> Self {
        debug_assert!(pages.iter().enumerate().all(|(i, p)| p.id().index() == i));
        Self { pages }
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&self, id: PageId) -> Option<Page> {
        self.pages.get(id.index()).cloned()
    }

    fn size_bytes(&self) -> usize {
        self.pages.iter().map(Page::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backend_reads_by_id() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let pages = vec![
            Page::encode(PageId(0), 2, &[(0, &a)], 64),
            Page::encode(PageId(1), 2, &[(1, &b)], 64),
        ];
        let backend = MemoryBackend::new(pages);
        assert_eq!(backend.kind(), "memory");
        assert_eq!(backend.page_count(), 2);
        assert_eq!(backend.size_bytes(), 128);
        assert_eq!(backend.read_page(PageId(1)).unwrap().decode_slot(0), b);
        assert!(backend.read_page(PageId(9)).is_none());
    }
}
