//! Workload construction and method runners shared by every experiment.

use std::time::Instant;

use bbtree::{BBTreeConfig, DiskBBTree, VariationalConfig};
use bregman::{
    DenseDataset, DivergenceKind, Exponential, GeneralizedI, ItakuraSaito, PointId,
    SquaredEuclidean,
};
use brepartition_core::{
    ApproximateConfig, BrePartitionConfig, BrePartitionIndex, PartitionStrategy,
};
use datagen::{
    ground_truth_knn, overall_ratio, DatasetSpec, GroundTruth, PaperDataset, QueryWorkload,
};
use pagestore::{BufferPool, PageStoreConfig};
use vafile::{VaFile, VaFileConfig};

use crate::scale::Scale;

/// One generated workload: a proxy dataset, its divergence, its queries and
/// the page size the paper associates with the dataset.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Name of the dataset (paper naming).
    pub name: String,
    /// The generated points.
    pub dataset: DenseDataset,
    /// Divergence used with this dataset.
    pub kind: DivergenceKind,
    /// Query batch.
    pub queries: QueryWorkload,
    /// Page size in bytes.
    pub page_size: usize,
}

/// Aggregated per-method measurements over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodMetrics {
    /// Method label ("BP", "VAF", "BBT", "ABP (p=0.9)", "Var").
    pub method: String,
    /// Index construction time in seconds.
    pub build_seconds: f64,
    /// Average physical page reads per query.
    pub avg_io_pages: f64,
    /// Average query time in milliseconds.
    pub avg_time_ms: f64,
    /// Average candidate-set size per query (0 when the method has no
    /// filter/refine split).
    pub avg_candidates: f64,
    /// Average overall ratio against the exact results (1.0 for exact
    /// methods).
    pub overall_ratio: f64,
}

/// Experiment workbench: builds workloads and runs every method.
#[derive(Debug, Clone, Copy)]
pub struct Workbench {
    /// The scale preset in effect.
    pub scale: Scale,
}

impl Workbench {
    /// A workbench at the given scale.
    pub fn new(scale: Scale) -> Workbench {
        Workbench { scale }
    }

    /// Generate the proxy workload for one of the paper's datasets.
    pub fn workload(&self, dataset: PaperDataset, seed: u64) -> Workload {
        let spec = dataset.scaled_spec(self.scale.max_points);
        let spec = spec.with_dim(self.scale.dim(spec.dim)).with_points(self.scale.points(spec.n));
        self.workload_from_spec(dataset.name(), spec, seed)
    }

    /// Generate a workload from an explicit spec (used by the dimensionality
    /// and data-size sweeps).
    pub fn workload_from_spec(&self, name: &str, spec: DatasetSpec, seed: u64) -> Workload {
        let dataset = spec.generate(seed);
        let queries = QueryWorkload::perturbed_from(
            &dataset,
            spec.divergence,
            self.scale.queries,
            0.02,
            seed ^ 0x51DE,
        );
        Workload {
            name: name.to_string(),
            dataset,
            kind: spec.divergence,
            queries,
            page_size: spec.page_size_bytes.min(64 * 1024),
        }
    }

    /// Exact ground truth for a workload (used by the approximate
    /// experiments).
    pub fn ground_truth(&self, workload: &Workload, k: usize) -> GroundTruth {
        ground_truth_knn(workload.kind, &workload.dataset, &workload.queries.queries, k, 4)
    }

    /// The number of partitions the paper's Table 4 would use for this
    /// dimensionality: the paper's optimized M keeps roughly `d/M ≈ 7`
    /// dimensions per subspace on its full-size datasets, so comparison
    /// experiments on the scaled proxies reuse that ratio rather than the
    /// cost-model optimum of the (much smaller) proxy, which would otherwise
    /// under-partition.
    pub fn paper_m(&self, dim: usize) -> usize {
        (dim / 7).clamp(2, dim.max(2))
    }

    /// Run BrePartition (exact). `partitions` of `None` uses the cost-model
    /// optimum.
    pub fn run_brepartition(
        &self,
        workload: &Workload,
        k: usize,
        partitions: Option<usize>,
        strategy: PartitionStrategy,
    ) -> MethodMetrics {
        let mut config = BrePartitionConfig::default()
            .with_page_size(workload.page_size)
            .with_strategy(strategy);
        if let Some(m) = partitions {
            config = config.with_partitions(m);
        }
        let build_started = Instant::now();
        let index = BrePartitionIndex::build(workload.kind, &workload.dataset, &config)
            .expect("BrePartition build");
        let build_seconds = build_started.elapsed().as_secs_f64();
        let mut io = 0u64;
        let mut candidates = 0usize;
        let query_started = Instant::now();
        for query in workload.queries.iter() {
            let result = index.knn(query, k).expect("BrePartition query");
            io += result.stats.io.pages_read;
            candidates += result.stats.candidates;
        }
        let elapsed = query_started.elapsed().as_secs_f64();
        let q = workload.queries.len() as f64;
        MethodMetrics {
            method: "BP".to_string(),
            build_seconds,
            avg_io_pages: io as f64 / q,
            avg_time_ms: elapsed * 1e3 / q,
            avg_candidates: candidates as f64 / q,
            overall_ratio: 1.0,
        }
    }

    /// Run the approximate BrePartition (ABP) at probability `p`, with the
    /// paper-ratio number of partitions.
    pub fn run_abp(
        &self,
        workload: &Workload,
        k: usize,
        p: f64,
        truth: &GroundTruth,
    ) -> MethodMetrics {
        let config = BrePartitionConfig::default()
            .with_page_size(workload.page_size)
            .with_partitions(self.paper_m(workload.dataset.dim()));
        let build_started = Instant::now();
        let index =
            BrePartitionIndex::build(workload.kind, &workload.dataset, &config).expect("ABP build");
        let build_seconds = build_started.elapsed().as_secs_f64();
        let approx = ApproximateConfig::with_probability(p);
        let mut io = 0u64;
        let mut candidates = 0usize;
        let mut ratios = Vec::new();
        let query_started = Instant::now();
        for (qi, query) in workload.queries.iter().enumerate() {
            let result = index.knn_approximate(query, k, &approx).expect("ABP query");
            io += result.stats.io.pages_read;
            candidates += result.stats.candidates;
            ratios.push(overall_ratio(&result.neighbors, truth.neighbors_of(qi)));
        }
        let elapsed = query_started.elapsed().as_secs_f64();
        let q = workload.queries.len() as f64;
        MethodMetrics {
            method: format!("ABP (p={p})"),
            build_seconds,
            avg_io_pages: io as f64 / q,
            avg_time_ms: elapsed * 1e3 / q,
            avg_candidates: candidates as f64 / q,
            overall_ratio: datagen::metrics::mean(&ratios),
        }
    }

    /// Run the disk-resident BB-tree baseline (exact, "BBT").
    pub fn run_bbt(&self, workload: &Workload, k: usize) -> MethodMetrics {
        self.run_bbt_impl(workload, k, None, "BBT")
    }

    /// Run the variational approximate BB-tree baseline ("Var").
    pub fn run_var(
        &self,
        workload: &Workload,
        k: usize,
        explore_fraction: f64,
        truth: &GroundTruth,
    ) -> MethodMetrics {
        let mut metrics = self.run_bbt_impl(workload, k, Some((explore_fraction, truth)), "Var");
        metrics.method = "Var".to_string();
        metrics
    }

    fn run_bbt_impl(
        &self,
        workload: &Workload,
        k: usize,
        variational: Option<(f64, &GroundTruth)>,
        label: &str,
    ) -> MethodMetrics {
        macro_rules! go {
            ($div:expr) => {{
                let build_started = Instant::now();
                let index = DiskBBTree::build(
                    $div,
                    &workload.dataset,
                    BBTreeConfig::with_leaf_capacity(32),
                    PageStoreConfig::with_page_size(workload.page_size),
                );
                let build_seconds = build_started.elapsed().as_secs_f64();
                let mut io = 0u64;
                let mut ratios = Vec::new();
                let query_started = Instant::now();
                for (qi, query) in workload.queries.iter().enumerate() {
                    let mut pool = BufferPool::unbuffered();
                    let result = match variational {
                        Some((fraction, _)) => index.knn_variational(
                            &mut pool,
                            query,
                            k,
                            &VariationalConfig { explore_fraction: fraction },
                        ),
                        None => index.knn(&mut pool, query, k),
                    }
                    .expect("bbt query");
                    io += result.io.pages_read;
                    if let Some((_, truth)) = variational {
                        let pairs: Vec<(PointId, f64)> =
                            result.neighbors.iter().map(|n| (n.id, n.distance)).collect();
                        ratios.push(overall_ratio(&pairs, truth.neighbors_of(qi)));
                    }
                }
                let elapsed = query_started.elapsed().as_secs_f64();
                let q = workload.queries.len() as f64;
                MethodMetrics {
                    method: label.to_string(),
                    build_seconds,
                    avg_io_pages: io as f64 / q,
                    avg_time_ms: elapsed * 1e3 / q,
                    avg_candidates: 0.0,
                    overall_ratio: if ratios.is_empty() {
                        1.0
                    } else {
                        datagen::metrics::mean(&ratios)
                    },
                }
            }};
        }
        match workload.kind {
            DivergenceKind::SquaredEuclidean => go!(SquaredEuclidean),
            DivergenceKind::ItakuraSaito => go!(ItakuraSaito),
            DivergenceKind::Exponential => go!(Exponential),
            DivergenceKind::GeneralizedI => go!(GeneralizedI),
        }
    }

    /// Run the VA-file baseline (exact, "VAF").
    pub fn run_vaf(&self, workload: &Workload, k: usize) -> MethodMetrics {
        macro_rules! go {
            ($div:expr) => {{
                let build_started = Instant::now();
                let index = VaFile::build(
                    $div,
                    &workload.dataset,
                    VaFileConfig { page_size_bytes: workload.page_size, ..VaFileConfig::default() },
                );
                let build_seconds = build_started.elapsed().as_secs_f64();
                let mut io = 0u64;
                let mut candidates = 0usize;
                let query_started = Instant::now();
                for query in workload.queries.iter() {
                    let mut pool = BufferPool::unbuffered();
                    let result = index.knn(&mut pool, query, k);
                    io += result.io.pages_read;
                    candidates += result.candidates;
                }
                let elapsed = query_started.elapsed().as_secs_f64();
                let q = workload.queries.len() as f64;
                MethodMetrics {
                    method: "VAF".to_string(),
                    build_seconds,
                    avg_io_pages: io as f64 / q,
                    avg_time_ms: elapsed * 1e3 / q,
                    avg_candidates: candidates as f64 / q,
                    overall_ratio: 1.0,
                }
            }};
        }
        match workload.kind {
            DivergenceKind::SquaredEuclidean => go!(SquaredEuclidean),
            DivergenceKind::ItakuraSaito => go!(ItakuraSaito),
            DivergenceKind::Exponential => go!(Exponential),
            DivergenceKind::GeneralizedI => go!(GeneralizedI),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> (Workbench, Workload) {
        let bench = Workbench::new(Scale::tiny());
        let workload = bench.workload(PaperDataset::Audio, 1);
        (bench, workload)
    }

    #[test]
    fn workload_respects_scale() {
        let (bench, workload) = tiny_bench();
        assert!(workload.dataset.len() <= bench.scale.max_points);
        assert!(workload.dataset.dim() <= bench.scale.max_dim);
        assert_eq!(workload.queries.len(), bench.scale.queries);
        assert_eq!(workload.kind, DivergenceKind::Exponential);
    }

    #[test]
    fn exact_methods_report_unit_ratio_and_positive_io() {
        let (bench, workload) = tiny_bench();
        let bp = bench.run_brepartition(&workload, 5, Some(4), PartitionStrategy::Pccp);
        let bbt = bench.run_bbt(&workload, 5);
        let vaf = bench.run_vaf(&workload, 5);
        for m in [&bp, &bbt, &vaf] {
            assert_eq!(m.overall_ratio, 1.0, "{}", m.method);
            assert!(m.avg_io_pages > 0.0, "{}", m.method);
            assert!(m.avg_time_ms >= 0.0);
            assert!(m.build_seconds >= 0.0);
        }
        assert!(bp.avg_candidates > 0.0);
    }

    #[test]
    fn approximate_methods_report_ratio_at_least_one() {
        let (bench, workload) = tiny_bench();
        let truth = bench.ground_truth(&workload, 5);
        let abp = bench.run_abp(&workload, 5, 0.8, &truth);
        let var = bench.run_var(&workload, 5, 0.2, &truth);
        assert!(abp.overall_ratio >= 1.0 - 1e-9);
        assert!(var.overall_ratio >= 1.0 - 1e-9);
        assert!(abp.method.contains("0.8"));
        assert_eq!(var.method, "Var");
    }
}
