//! Markdown table rendering for experiment results.

/// A simple markdown table builder used by every experiment module.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are already formatted).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", self.headers.iter().map(|_| "---|").collect::<String>()));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Format a float with a sensible number of decimals for tables.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}")
    } else if value.abs() >= 0.01 {
        format!("{value:.3}")
    } else {
        format!("{value:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_contains_title_headers_and_rows() {
        let mut t = Table::new("Fig. X", &["method", "io"]);
        t.row(vec!["BP".into(), "12".into()]);
        t.row(vec!["VAF".into(), "40".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig. X"));
        assert!(md.contains("| method | io |"));
        assert!(md.contains("| BP | 12 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.to_string(), md);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(0.00004), "4.00e-5");
    }
}
