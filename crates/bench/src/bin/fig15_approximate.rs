//! Regenerate the "fig15_approximate" experiment and print its markdown tables.
//!
//! Scale is controlled by the `BREPARTITION_SCALE` environment variable
//! (`quick` default, `paper`, `tiny`).

use brepartition_bench::experiments::fig15_approximate;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    for table in fig15_approximate::run(&bench) {
        print!("{table}");
    }
}
