//! Regenerate the "kernels" experiment (naive vs prepared-query refinement
//! distances), print its markdown table and write the machine-diffable
//! report to `BENCH_kernels.json` (override the path with the
//! `BREPARTITION_BENCH_JSON_KERNELS` environment variable — deliberately
//! not the `throughput` bin's variable, so overriding both bins cannot
//! make one report clobber the other), so the refine-kernel perf
//! trajectory can be diffed across PRs.
//!
//! Scale is controlled by the `BREPARTITION_SCALE` environment variable
//! (`quick` default, `paper`, `tiny`); it only changes how many
//! evaluations each measurement averages over — the (kind, dim) grid is
//! fixed.

use brepartition_bench::experiments::kernels;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    let (tables, json) = kernels::run_with_json(&bench);
    for table in tables {
        print!("{table}");
    }
    let path = std::env::var("BREPARTITION_BENCH_JSON_KERNELS")
        .unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
