//! Regenerate the "persistence" (index lifecycle) experiment and print its
//! markdown tables.
//!
//! Scale is controlled by the `BREPARTITION_SCALE` environment variable
//! (`quick` default, `paper`, `tiny`).

use brepartition_bench::experiments::persistence;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    for table in persistence::run(&bench) {
        print!("{table}");
    }
}
