//! Regenerate the "fig11_fig12_vs_k" experiment and print its markdown tables.
//!
//! Scale is controlled by the `BREPARTITION_SCALE` environment variable
//! (`quick` default, `paper`, `tiny`).

use brepartition_bench::experiments::fig11_fig12_vs_k;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    for table in fig11_fig12_vs_k::run(&bench) {
        print!("{table}");
    }
}
