//! Regenerate the open-loop "serving" experiment, print its markdown
//! table and write the machine-diffable report to `BENCH_serving.json`
//! (override the path with the `BREPARTITION_BENCH_JSON` environment
//! variable).
//!
//! If the output path already holds a baseline, its per-row key schema is
//! compared against the fresh run first: a drifted schema aborts with
//! exit code 1 instead of overwriting, so schema changes must be
//! explicit, reviewed edits (delete or move the baseline to accept a new
//! schema). Values are free to change — only the key sequence is pinned.
//!
//! Scale is controlled by `BREPARTITION_SCALE` (`quick` default, `paper`,
//! `tiny`); see the experiment docs for the `BREPARTITION_SERVING_*`
//! workload knobs.

use brepartition_bench::experiments::serving;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    let (tables, json) = serving::run_with_json(&bench);
    for table in tables {
        print!("{table}");
    }
    let path = std::env::var("BREPARTITION_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_serving.json".to_string());

    if let Ok(baseline) = std::fs::read_to_string(&path) {
        let old = serving::json_row_schemas(&baseline);
        let new = serving::json_row_schemas(&json);
        let old_schema = old.first();
        let new_schema = new.first();
        if old_schema.is_some() && old_schema != new_schema {
            eprintln!(
                "schema drift: {path} rows carry keys {old_schema:?} but this build \
                 produces {new_schema:?}; refusing to overwrite (delete the baseline \
                 to accept the new schema)"
            );
            std::process::exit(1);
        }
    }

    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
