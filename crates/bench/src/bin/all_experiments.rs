//! Run the complete reproduced evaluation and write the markdown report.
//!
//! ```bash
//! cargo run --release -p brepartition-bench --bin all_experiments [output.md]
//! ```
//!
//! Scale is controlled by `BREPARTITION_SCALE` (`quick` default, `paper`,
//! `tiny`). The report is printed to stdout and, when a path argument is
//! given, also written to that file (this is how `EXPERIMENTS.md`'s measured
//! numbers were produced).

use brepartition_bench::experiments::run_all;
use brepartition_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let report = run_all(scale);
    println!("{report}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &report).expect("write report file");
        eprintln!("report written to {path}");
    }
}
