//! Regenerate the "fig8_fig9_partitions" experiment and print its markdown tables.
//!
//! Scale is controlled by the `BREPARTITION_SCALE` environment variable
//! (`quick` default, `paper`, `tiny`).

use brepartition_bench::experiments::fig8_fig9_partitions;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    for table in fig8_fig9_partitions::run(&bench) {
        print!("{table}");
    }
}
