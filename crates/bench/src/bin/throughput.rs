//! Regenerate the "throughput" experiment, print its markdown tables and
//! write the machine-diffable report to `BENCH_throughput.json` (override
//! the path with the `BREPARTITION_BENCH_JSON` environment variable), so
//! bench runs can be diffed across PRs.
//!
//! Scale is controlled by the `BREPARTITION_SCALE` environment variable
//! (`quick` default, `paper`, `tiny`).

use brepartition_bench::experiments::throughput;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    let bench = Workbench::new(scale);
    let (tables, json) = throughput::run_with_json(&bench);
    for table in tables {
        print!("{table}");
    }
    let path = std::env::var("BREPARTITION_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
