//! Loom-free seeded concurrency stress for the LSM mutable layer.
//!
//! Races N mutator threads, a pool of readers and an explicit compactor
//! against one shared `Index` with background compaction armed on an
//! aggressive trigger, then replays the mutation ledger serially and
//! demands every version-pinned sample back id-for-id. The schedule is
//! fully seeded — same seed, same ledger, same verdict — so a CI failure
//! here is a repro recipe, not a flake. The process exits non-zero on any
//! divergence (assertions propagate out of `thread::scope`).
//!
//! Knobs (all environment variables):
//!
//! * `BREPARTITION_STRESS_SEED` — base seed (default `0xD0C5_EED`).
//! * `BREPARTITION_STRESS_ROUNDS` — index lifetimes per run (default 2).
//! * `BREPARTITION_STRESS_THREADS` — mutator threads (default 4).
//! * `BREPARTITION_STRESS_OPS` — mutations per mutator thread (default 250).

use std::sync::Mutex;
use std::time::Instant;

use brepartition::prelude::*;
use loadgen::SplitMix64;

const DIM: usize = 6;
const INITIAL_POINTS: usize = 64;
const READERS: usize = 2;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Strictly positive rows keep every divergence in domain.
fn random_row(rng: &mut SplitMix64) -> Vec<f64> {
    (0..DIM).map(|_| 0.2 + rng.next_f64() * 8.0).collect()
}

/// One applied mutation, recorded in application order under the ledger
/// lock — the replay script.
enum Applied {
    Insert { id: u32, row: Vec<f64> },
    Delete { id: u32 },
}

struct Ledger {
    live: Vec<u32>,
    dead: Vec<u32>,
    log: Vec<Applied>,
}

/// A version-pinned sample: (ledger version, query, k, answered ids).
type Sample = (usize, Vec<f64>, usize, Vec<u32>);

fn stress_round(round: u64, seed: u64, mutators: usize, ops_per_mutator: usize) {
    let spec = IndexSpec::new(Method::BrePartition, DivergenceKind::ItakuraSaito)
        .with_partitions(2)
        .with_leaf_capacity(8)
        .with_page_size(1024)
        .with_sample_size(64)
        .with_seed(0x0B5)
        .with_background_compaction(true)
        .with_compaction_ratios(0.05, 0.05);
    let mut rng = SplitMix64::new(seed ^ (round << 32));
    let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
    let data = DenseDataset::from_rows(&rows).expect("stress dataset");
    let index = Index::build(&spec, &data).expect("stress build");

    let ledger = Mutex::new(Ledger {
        live: (0..INITIAL_POINTS as u32).collect(),
        dead: Vec::new(),
        log: Vec::new(),
    });
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..mutators {
            let index = &index;
            let ledger = &ledger;
            let mut rng = SplitMix64::new(seed ^ (round << 32) ^ (0xA110 + ((t as u64) << 16)));
            scope.spawn(move || {
                for _ in 0..ops_per_mutator {
                    match rng.next_below(8) {
                        0..=4 => {
                            let row = random_row(&mut rng);
                            let mut guard = ledger.lock().unwrap();
                            let id = index.insert(&row).expect("stress insert");
                            guard.live.push(id.0);
                            guard.log.push(Applied::Insert { id: id.0, row });
                        }
                        5..=6 => {
                            let mut guard = ledger.lock().unwrap();
                            if guard.live.len() <= 8 {
                                continue;
                            }
                            let slot = rng.next_below(guard.live.len() as u64) as usize;
                            let id = guard.live.swap_remove(slot);
                            assert!(
                                index.delete(PointId(id)).expect("stress delete"),
                                "ledger said {id} was live"
                            );
                            guard.dead.push(id);
                            guard.log.push(Applied::Delete { id });
                        }
                        // Dead / never-issued deletes: strict no-ops, never
                        // logged — the replay depends on it.
                        _ => {
                            let guard = ledger.lock().unwrap();
                            let target = if guard.dead.is_empty() || rng.next_below(2) == 0 {
                                u32::MAX - rng.next_below(512) as u32
                            } else {
                                guard.dead[rng.next_below(guard.dead.len() as u64) as usize]
                            };
                            assert!(
                                !index.delete(PointId(target)).expect("stress dead delete"),
                                "delete({target}) resurrected a dead id"
                            );
                        }
                    }
                }
            });
        }
        for r in 0..READERS {
            let index = &index;
            let ledger = &ledger;
            let samples = &samples;
            let queries = mutators * ops_per_mutator / READERS;
            let mut rng = SplitMix64::new(seed ^ (round << 32) ^ (0xBEAD + ((r as u64) << 16)));
            scope.spawn(move || {
                for i in 0..queries {
                    let query = random_row(&mut rng);
                    let k = 1 + rng.next_below(7) as usize;
                    if i % 5 == 0 {
                        // Sampled: hold the ledger closed so the version
                        // read and the query see the same state.
                        let guard = ledger.lock().unwrap();
                        let version = guard.log.len();
                        let answer = index
                            .query(&QueryRequest::new(&query, k))
                            .expect("stress sampled query")
                            .neighbors;
                        drop(guard);
                        let ids = answer.into_iter().map(|(id, _)| id.0).collect();
                        samples.lock().unwrap().push((version, query, k, ids));
                    } else {
                        // Unsampled: no harness lock — these race the
                        // mutators and the compactor's epoch swaps.
                        index.query(&QueryRequest::new(&query, k)).expect("stress query");
                    }
                }
            });
        }
        // Explicit request-and-wait folds interleaved with the writes.
        {
            let index = &index;
            scope.spawn(move || {
                for _ in 0..6 {
                    index.compact().expect("stress compact");
                    std::thread::yield_now();
                }
            });
        }
    });

    let compactions = index.compactions();
    assert!(compactions >= 1, "the stress schedule must fold at least once");

    // Serial replay on a fresh single-threaded index: every sample must
    // come back id-for-id.
    let replay_spec = spec.with_background_compaction(false);
    let replay = Index::build(&replay_spec, &data).expect("replay build");
    let ledger = ledger.into_inner().unwrap();
    let mut samples = samples.into_inner().unwrap();
    samples.sort_by_key(|a| a.0);
    let mut applied = 0usize;
    for (version, query, k, answer) in &samples {
        while applied < *version {
            match &ledger.log[applied] {
                Applied::Insert { id, row } => {
                    assert_eq!(
                        replay.insert(row).expect("replay insert").0,
                        *id,
                        "replay id issue order"
                    );
                }
                Applied::Delete { id } => {
                    assert!(replay.delete(PointId(*id)).expect("replay delete"), "delete({id})");
                }
            }
            applied += 1;
        }
        let want: Vec<u32> = replay
            .query(&QueryRequest::new(query, *k))
            .expect("replay query")
            .neighbors
            .iter()
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(
            answer, &want,
            "round {round}: sample at version {version} diverged from the serial replay"
        );
    }
    println!(
        "round {round}: ok — {} mutations, {} samples, {} live, {compactions} compactions",
        ledger.log.len(),
        samples.len(),
        ledger.live.len(),
    );
}

fn main() {
    let seed = env_u64("BREPARTITION_STRESS_SEED", 0xD0C_5EED);
    let rounds = env_u64("BREPARTITION_STRESS_ROUNDS", 2);
    let mutators = env_u64("BREPARTITION_STRESS_THREADS", 4) as usize;
    let ops = env_u64("BREPARTITION_STRESS_OPS", 250) as usize;
    println!(
        "stress: seed={seed} rounds={rounds} mutators={mutators} ops/mutator={ops} \
         readers={READERS}"
    );
    let start = Instant::now();
    for round in 0..rounds {
        stress_round(round, seed, mutators, ops);
    }
    println!("stress: all rounds clean in {:.2?}", start.elapsed());
}
