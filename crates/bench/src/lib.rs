//! Experiment harness reproducing the BrePartition evaluation.
//!
//! Every table and figure of the paper's Section 9 has a module under
//! [`experiments`] that generates the (scaled-down, synthetic-proxy)
//! workload, runs the relevant methods and renders a markdown table with the
//! same rows/series the paper reports. The binaries in `src/bin/` and the
//! `fig*`/`table*` bench targets are thin wrappers around these modules, so
//! `cargo bench` regenerates every experiment and
//! `cargo run --bin all_experiments` writes the complete report used to fill
//! `EXPERIMENTS.md`.
//!
//! Scale is controlled by [`Scale`]: the default keeps the whole suite in
//! the minutes range on a laptop; set `BREPARTITION_SCALE=paper` for a
//! larger run (still far below the paper's real datasets, which are not
//! redistributable).

pub mod experiments;
pub mod report;
pub mod runner;
pub mod scale;

pub use report::Table;
pub use runner::{MethodMetrics, Workbench};
pub use scale::Scale;
