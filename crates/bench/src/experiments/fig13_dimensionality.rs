//! Fig. 13: impact of dimensionality — I/O cost and running time of BP, VAF
//! and BBT on the Fonts proxy as the dimensionality grows.
//!
//! Paper shape: every method gets more expensive with dimensionality, but
//! BP grows the slowest (the bound adapts through the growing optimal `M`),
//! VAF's growth rate accelerates, and BBT degrades the fastest once the
//! dimensionality exceeds what ball clustering can separate.

use brepartition_core::PartitionStrategy;
use datagen::PaperDataset;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// The dimensionality sweep: the paper uses 10–400; the sweep is clamped to
/// the scale's dimensionality cap while keeping the 10/50/100/200/400 shape.
fn dimension_sweep(max_dim: usize) -> Vec<usize> {
    [10usize, 50, 100, 200, 400]
        .iter()
        .map(|&d| d.min(max_dim))
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Reproduce Fig. 13.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let k = 20;
    let mut io_table = Table::new(
        "Fig. 13(a) — Fonts proxy: per-query I/O (pages) vs dimensionality",
        &["d", "M (cost model)", "BP", "VAF", "BBT"],
    );
    let mut time_table = Table::new(
        "Fig. 13(b) — Fonts proxy: per-query running time (ms) vs dimensionality",
        &["d", "BP", "VAF", "BBT"],
    );
    for dim in dimension_sweep(bench.scale.max_dim) {
        let spec = PaperDataset::Fonts
            .scaled_spec(bench.scale.max_points)
            .with_points(
                bench.scale.points(PaperDataset::Fonts.scaled_spec(bench.scale.max_points).n),
            )
            .with_dim(dim);
        let workload = bench.workload_from_spec("Fonts", spec, 13);
        let m = bench.paper_m(workload.dataset.dim());
        let bp = bench.run_brepartition(&workload, k, Some(m), PartitionStrategy::Pccp);
        let vaf = bench.run_vaf(&workload, k);
        let bbt = bench.run_bbt(&workload, k);
        // Recover the M that Auto picked by rebuilding the cost model cheaply.
        let m = brepartition_core::CostModel::fit(workload.kind, &workload.dataset, 128, 13)
            .map(|model| model.optimal_partitions(1).to_string())
            .unwrap_or_else(|_| "-".into());
        io_table.row(vec![
            dim.to_string(),
            m,
            fmt_f64(bp.avg_io_pages),
            fmt_f64(vaf.avg_io_pages),
            fmt_f64(bbt.avg_io_pages),
        ]);
        time_table.row(vec![
            dim.to_string(),
            fmt_f64(bp.avg_time_ms),
            fmt_f64(vaf.avg_time_ms),
            fmt_f64(bbt.avg_time_ms),
        ]);
    }
    vec![io_table, time_table]
}
