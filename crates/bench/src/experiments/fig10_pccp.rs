//! Fig. 10: impact of PCCP — per-query I/O cost and running time with and
//! without the correlation-aware partitioning, k = 20.
//!
//! Paper shape: PCCP reduces both I/O and running time by roughly 20–30%
//! compared to the naive equal/contiguous split, because the per-subspace
//! candidate sets overlap more and resolve to the same disk pages.

use brepartition_core::PartitionStrategy;
use datagen::PaperDataset;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// Reproduce Fig. 10.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let datasets =
        [PaperDataset::Audio, PaperDataset::Fonts, PaperDataset::Deep, PaperDataset::Sift];
    let k = 20;
    let mut table = Table::new(
        "Fig. 10 — impact of PCCP (k = 20)",
        &[
            "Dataset",
            "I/O none",
            "I/O PCCP",
            "time none (ms)",
            "time PCCP (ms)",
            "candidates none",
            "candidates PCCP",
        ],
    );
    for dataset in datasets {
        let workload = bench.workload(dataset, 10);
        let m = bench.paper_m(workload.dataset.dim());
        let none =
            bench.run_brepartition(&workload, k, Some(m), PartitionStrategy::EqualContiguous);
        let pccp = bench.run_brepartition(&workload, k, Some(m), PartitionStrategy::Pccp);
        table.row(vec![
            dataset.name().to_string(),
            fmt_f64(none.avg_io_pages),
            fmt_f64(pccp.avg_io_pages),
            fmt_f64(none.avg_time_ms),
            fmt_f64(pccp.avg_time_ms),
            fmt_f64(none.avg_candidates),
            fmt_f64(pccp.avg_candidates),
        ]);
    }
    vec![table]
}
