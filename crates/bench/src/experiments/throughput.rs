//! Batch-serving throughput of the concurrent query engine.
//!
//! Not a figure of the paper: the paper measures single queries in
//! isolation, while this experiment drives the [`brepartition_engine`]
//! serving layer with a large batch of queries on a hierarchically
//! clustered Itakura-Saito workload and reports, per backend and thread
//! count, the numbers a deployment is tuned against — QPS, latency
//! percentiles, candidate-set sizes and per-query physical I/O.

use std::sync::Arc;

use bbtree::BBTreeConfig;
use bregman::DivergenceKind;
use brepartition_core::{ApproximateConfig, BrePartitionConfig, BrePartitionIndex};
use brepartition_engine::{
    bbtree_backend_for_kind, vafile_backend_for_kind, BrePartitionBackend, EngineConfig,
    QueryEngine, SearchBackend, ThroughputReport,
};
use datagen::{HierarchicalSpec, QueryWorkload};
use pagestore::PageStoreConfig;
use vafile::VaFileConfig;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

const PAGE_SIZE: usize = 32 * 1024;
const K: usize = 10;

/// Run the throughput experiment: all four backends, 1 thread vs all cores.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let kind = DivergenceKind::ItakuraSaito;
    let n = bench.scale.max_points.max(600);
    let dim = 32.min(bench.scale.max_dim);
    let dataset = HierarchicalSpec {
        n,
        dim,
        clusters: (n / 100).clamp(8, 32),
        blocks: (dim / 4).max(2),
        ..Default::default()
    }
    .generate();
    // The paper measures 50 isolated queries; a throughput experiment needs
    // a real batch, so the query count scales with the preset.
    let batch_size = (bench.scale.queries * 16).clamp(64, 1024);
    let workload = QueryWorkload::perturbed_from(&dataset, kind, batch_size, 0.02, 0x7B);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();

    let bp_config =
        BrePartitionConfig::default().with_partitions(bench.paper_m(dim)).with_page_size(PAGE_SIZE);
    let index = Arc::new(BrePartitionIndex::build(kind, &dataset, &bp_config).expect("BP build"));

    let backends: Vec<Arc<dyn SearchBackend>> = vec![
        Arc::new(BrePartitionBackend::exact(index.clone())),
        Arc::new(BrePartitionBackend::approximate(index, ApproximateConfig::with_probability(0.9))),
        Arc::from(bbtree_backend_for_kind(
            kind,
            &dataset,
            BBTreeConfig::with_leaf_capacity(32),
            PageStoreConfig::with_page_size(PAGE_SIZE),
        )),
        Arc::from(vafile_backend_for_kind(
            kind,
            &dataset,
            VaFileConfig { page_size_bytes: PAGE_SIZE, ..VaFileConfig::default() },
        )),
    ];

    let pool_threads = brepartition_engine::recommended_pool_threads();
    let mut table = Table::new(
        format!(
            "Engine throughput — hierarchical ISD, n={n}, d={dim}, {batch_size} queries, k={K}"
        ),
        &[
            "method",
            "threads",
            "QPS",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "mean (ms)",
            "cand/q",
            "IO pages/q",
        ],
    );
    for backend in backends {
        for threads in [1, pool_threads] {
            let engine = QueryEngine::with_config(
                backend.clone(),
                EngineConfig::default().with_threads(threads),
            );
            let batch = engine.run_batch(&queries, K).expect("batch run");
            table.row(report_row(&batch.report));
        }
    }
    vec![table]
}

fn report_row(report: &ThroughputReport) -> Vec<String> {
    vec![
        report.backend.clone(),
        report.threads.to_string(),
        fmt_f64(report.qps),
        fmt_f64(report.latency.p50_ms),
        fmt_f64(report.latency.p95_ms),
        fmt_f64(report.latency.p99_ms),
        fmt_f64(report.latency.mean_ms),
        fmt_f64(report.avg_candidates),
        fmt_f64(report.avg_io_pages),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn throughput_rows_cover_all_backends_and_thread_counts() {
        let bench = Workbench::new(Scale::tiny());
        let tables = run(&bench);
        assert_eq!(tables.len(), 1);
        // 4 backends × 2 thread counts.
        assert_eq!(tables[0].len(), 8);
    }
}
