//! Batch-serving throughput of the concurrent query engine.
//!
//! Not a figure of the paper: the paper measures single queries in
//! isolation, while this experiment drives the [`brepartition_engine`]
//! serving layer with a large batch of queries on a hierarchically
//! clustered Itakura-Saito workload and reports, per backend and thread
//! count, the numbers a deployment is tuned against — QPS, latency
//! percentiles, candidate-set sizes and per-query physical I/O.
//!
//! Per method the experiment emits four rows:
//!
//! * **cold, 1 thread** and **cold, pool threads** — the default serving
//!   configuration: a fresh scratch (and an unbuffered pool) per query, so
//!   `io_pages_read` counts every physical page and `io_cache_hits` is 0
//!   *by construction*, not by accounting error.
//! * **warm, pool threads** (`+warm` suffix) — the same index rebuilt with
//!   a non-zero per-query buffer pool and served with
//!   [`EngineConfig::with_warm_scratch`], where repeat page reads hit the
//!   pool and `io_cache_hits` must be non-zero.
//! * **sharded, pool threads** (`xN:capacity` suffix) — a 4-shard
//!   capacity-mode [`ShardedIndex`] fanning the identical batch out under
//!   the same total thread budget, for the sharded-vs-unsharded comparison.
//!
//! "Pool threads" is [`brepartition_engine::recommended_pool_threads`],
//! which follows the machine's available parallelism with no floor: on a
//! single-core runner the pool rows legitimately run at `threads=1`.
//! Earlier revisions floored the heuristic at 4 workers, which on such
//! boxes oversubscribed the core and produced ~12 ms scheduler-preemption
//! tail latencies in every `threads=4` row (see the root-cause write-up on
//! `recommended_pool_threads`).
//!
//! Workload size is configurable without recompiling: the
//! `BREPARTITION_BENCH_POINTS` and `BREPARTITION_BENCH_QUERIES` environment
//! variables override the preset-derived dataset and batch sizes.
//!
//! All backends are built through the identical spec-driven façade
//! (`IndexSpec` → `Index::build`); besides the markdown table,
//! [`run_with_json`] emits one stable-format JSON object per row (see
//! `ThroughputReport::to_json`), which the `throughput` bin writes to
//! `BENCH_throughput.json` so runs can be diffed across PRs.

use bregman::DivergenceKind;
use brepartition::{Index, IndexSpec, Method, Request, ShardSpec, ShardedIndex};
use brepartition_engine::{EngineConfig, ThroughputReport};
use datagen::{HierarchicalSpec, QueryWorkload};

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

const PAGE_SIZE: usize = 32 * 1024;
const K: usize = 10;
/// Per-query buffer-pool capacity (pages) for the warm-scratch rows.
const WARM_POOL_PAGES: usize = 64;
/// Shard count for the sharded-vs-unsharded rows.
const SHARDS: usize = 4;

/// A positive-integer environment override, or `None` when unset.
fn env_size(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    let parsed: usize = raw
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{var} must be a positive integer, got {raw:?}"));
    assert!(parsed > 0, "{var} must be positive");
    Some(parsed)
}

/// Run the throughput experiment: all four methods × (cold 1 thread, cold
/// pool threads, warm pool threads, sharded pool threads).
pub fn run(bench: &Workbench) -> Vec<Table> {
    run_with_json(bench).0
}

/// Run the experiment and also return the collected reports as one JSON
/// array (stable key order, machine-diffable).
pub fn run_with_json(bench: &Workbench) -> (Vec<Table>, String) {
    let kind = DivergenceKind::ItakuraSaito;
    let n =
        env_size("BREPARTITION_BENCH_POINTS").unwrap_or_else(|| bench.scale.max_points.max(600));
    let dim = 32.min(bench.scale.max_dim);
    let dataset = HierarchicalSpec {
        n,
        dim,
        clusters: (n / 100).clamp(8, 32),
        blocks: (dim / 4).max(2),
        ..Default::default()
    }
    .generate();
    // The paper measures 50 isolated queries; a throughput experiment needs
    // a real batch, so the query count scales with the preset (and can be
    // pinned exactly via the environment for cross-machine comparisons).
    let batch_size = env_size("BREPARTITION_BENCH_QUERIES")
        .unwrap_or_else(|| (bench.scale.queries * 32).clamp(128, 2048));
    let workload = QueryWorkload::perturbed_from(&dataset, kind, batch_size, 0.02, 0x7B);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();

    let pool_threads = brepartition_engine::recommended_pool_threads();
    let mut table = Table::new(
        format!(
            "Engine throughput — hierarchical ISD, n={n}, d={dim}, {batch_size} queries, k={K}"
        ),
        &[
            "method",
            "threads",
            "QPS",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "mean (ms)",
            "cand/q",
            "IO pages/q",
        ],
    );
    let mut jsons: Vec<String> = Vec::new();
    let mut push = |table: &mut Table, report: &ThroughputReport| {
        table.row(report_row(report));
        jsons.push(report.to_json());
    };
    // Each method builds its own self-contained Index: the experiment
    // deliberately exercises the uniform spec-driven path.
    for &method in Method::ALL.iter() {
        let spec = IndexSpec::new(method, kind)
            .with_partitions(bench.paper_m(dim))
            .with_page_size(PAGE_SIZE)
            .with_leaf_capacity(32)
            .with_probability(0.9);
        let index = Index::build(&spec, &dataset).expect("index build");
        for threads in [1, pool_threads] {
            let engine = index
                .engine(EngineConfig::default().with_threads(threads))
                .expect("engine construction");
            let batch = engine.run_batch(&queries, K).expect("batch run");
            push(&mut table, &batch.report);
        }

        // Warm-pool variant: per-worker scratch survives across queries, so
        // repeat page reads land in the buffer pool and the `io_cache_hits`
        // column becomes non-zero (the cold rows report 0 by construction).
        let warm_index = Index::build(&spec.with_buffer_pool_pages(WARM_POOL_PAGES), &dataset)
            .expect("warm index build");
        let engine = warm_index
            .engine(EngineConfig::default().with_threads(pool_threads).with_warm_scratch())
            .expect("warm engine construction");
        let mut batch = engine.run_batch(&queries, K).expect("warm batch run");
        batch.report.backend.push_str("+warm");
        push(&mut table, &batch.report);

        // Sharded variant: the same batch scatter-gathered over a 4-shard
        // capacity tier under the same total thread budget.
        let sharded = ShardedIndex::build(&ShardSpec::capacity(spec, SHARDS), &dataset)
            .expect("sharded build");
        let batch = sharded
            .run_with_budget(&Request::uniform(&queries, K), pool_threads)
            .expect("sharded batch run");
        push(&mut table, &batch.report);
    }
    (vec![table], format!("[\n{}\n]\n", jsons.join(",\n")))
}

fn report_row(report: &ThroughputReport) -> Vec<String> {
    vec![
        report.backend.clone(),
        report.threads.to_string(),
        fmt_f64(report.qps),
        fmt_f64(report.latency.p50_ms),
        fmt_f64(report.latency.p95_ms),
        fmt_f64(report.latency.p99_ms),
        fmt_f64(report.latency.mean_ms),
        fmt_f64(report.avg_candidates),
        fmt_f64(report.avg_io_pages),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn throughput_rows_cover_all_backends_thread_counts_and_variants() {
        let bench = Workbench::new(Scale::tiny());
        let (tables, json) = run_with_json(&bench);
        assert_eq!(tables.len(), 1);
        // 4 methods × (cold 1 thread, cold pool, warm pool, sharded pool).
        assert_eq!(tables[0].len(), 16);
        // The JSON artifact holds one object per row, with stable keys.
        assert_eq!(json.matches("\"backend\":").count(), 16);
        assert_eq!(json.matches("\"qps\":").count(), 16);
        assert_eq!(json.matches("+warm\"").count(), 4, "one warm row per method");
        assert_eq!(
            json.matches(&format!("x{SHARDS}:capacity")).count(),
            4,
            "one sharded row per method"
        );
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));

        // Warm rows must not just register pool hits — with the batch-wide
        // shared SIEVE cache, the whole batch faults the working set in
        // roughly once, so the hit *rate* has a hard floor well above what
        // per-worker caches could reach. Cold rows' `0` is the unbuffered
        // default, not broken accounting.
        for object in json.split("\"backend\":").skip(1) {
            let label = object.split('"').nth(1).unwrap_or("");
            let counter = |key: &str| {
                object
                    .split(key)
                    .nth(1)
                    .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|digits| digits.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("row {label} has no {key} field"))
            };
            let hits = counter("\"io_cache_hits\":");
            let reads = counter("\"io_pages_read\":");
            if label.contains("+warm") {
                assert!(hits > 0, "warm row {label} recorded no buffer-pool hits");
                let rate = hits as f64 / (hits + reads) as f64;
                assert!(
                    rate >= 0.5,
                    "warm row {label} hit rate {rate:.3} below the 0.5 floor \
                     ({hits} hits / {reads} reads)"
                );
            }
        }
    }
}
