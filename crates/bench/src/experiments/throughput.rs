//! Batch-serving throughput of the concurrent query engine.
//!
//! Not a figure of the paper: the paper measures single queries in
//! isolation, while this experiment drives the [`brepartition_engine`]
//! serving layer with a large batch of queries on a hierarchically
//! clustered Itakura-Saito workload and reports, per backend and thread
//! count, the numbers a deployment is tuned against — QPS, latency
//! percentiles, candidate-set sizes and per-query physical I/O.
//!
//! All four backends are built through the identical spec-driven façade
//! (`IndexSpec` → `Index::build`); besides the markdown table,
//! [`run_with_json`] emits one stable-format JSON object per
//! (backend, thread-count) pair (see `ThroughputReport::to_json`), which
//! the `throughput` bin writes to `BENCH_throughput.json` so runs can be
//! diffed across PRs.

use bregman::DivergenceKind;
use brepartition::{Index, IndexSpec, Method};
use brepartition_engine::{EngineConfig, ThroughputReport};
use datagen::{HierarchicalSpec, QueryWorkload};

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

const PAGE_SIZE: usize = 32 * 1024;
const K: usize = 10;

/// Run the throughput experiment: all four methods, 1 thread vs all cores.
pub fn run(bench: &Workbench) -> Vec<Table> {
    run_with_json(bench).0
}

/// Run the experiment and also return the collected reports as one JSON
/// array (stable key order, machine-diffable).
pub fn run_with_json(bench: &Workbench) -> (Vec<Table>, String) {
    let kind = DivergenceKind::ItakuraSaito;
    let n = bench.scale.max_points.max(600);
    let dim = 32.min(bench.scale.max_dim);
    let dataset = HierarchicalSpec {
        n,
        dim,
        clusters: (n / 100).clamp(8, 32),
        blocks: (dim / 4).max(2),
        ..Default::default()
    }
    .generate();
    // The paper measures 50 isolated queries; a throughput experiment needs
    // a real batch, so the query count scales with the preset.
    let batch_size = (bench.scale.queries * 16).clamp(64, 1024);
    let workload = QueryWorkload::perturbed_from(&dataset, kind, batch_size, 0.02, 0x7B);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();

    // Each method builds its own self-contained Index (BP and ABP no longer
    // share one construction as the pre-façade code did): the experiment
    // deliberately exercises the uniform spec-driven path, at the cost of
    // one extra BrePartition build per run.
    let indexes: Vec<Index> = Method::ALL
        .iter()
        .map(|&method| {
            let spec = IndexSpec::new(method, kind)
                .with_partitions(bench.paper_m(dim))
                .with_page_size(PAGE_SIZE)
                .with_leaf_capacity(32)
                .with_probability(0.9);
            Index::build(&spec, &dataset).expect("index build")
        })
        .collect();

    let pool_threads = brepartition_engine::recommended_pool_threads();
    let mut table = Table::new(
        format!(
            "Engine throughput — hierarchical ISD, n={n}, d={dim}, {batch_size} queries, k={K}"
        ),
        &[
            "method",
            "threads",
            "QPS",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "mean (ms)",
            "cand/q",
            "IO pages/q",
        ],
    );
    let mut jsons: Vec<String> = Vec::new();
    for index in &indexes {
        for threads in [1, pool_threads] {
            let engine = index
                .engine(EngineConfig::default().with_threads(threads))
                .expect("engine construction");
            let batch = engine.run_batch(&queries, K).expect("batch run");
            table.row(report_row(&batch.report));
            jsons.push(batch.report.to_json());
        }
    }
    (vec![table], format!("[\n{}\n]\n", jsons.join(",\n")))
}

fn report_row(report: &ThroughputReport) -> Vec<String> {
    vec![
        report.backend.clone(),
        report.threads.to_string(),
        fmt_f64(report.qps),
        fmt_f64(report.latency.p50_ms),
        fmt_f64(report.latency.p95_ms),
        fmt_f64(report.latency.p99_ms),
        fmt_f64(report.latency.mean_ms),
        fmt_f64(report.avg_candidates),
        fmt_f64(report.avg_io_pages),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn throughput_rows_cover_all_backends_and_thread_counts() {
        let bench = Workbench::new(Scale::tiny());
        let (tables, json) = run_with_json(&bench);
        assert_eq!(tables.len(), 1);
        // 4 backends × 2 thread counts.
        assert_eq!(tables[0].len(), 8);
        // The JSON artifact holds one object per row, with stable keys.
        assert_eq!(json.matches("\"backend\":").count(), 8);
        assert_eq!(json.matches("\"qps\":").count(), 8);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }
}
