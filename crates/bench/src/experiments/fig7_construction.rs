//! Fig. 7: index construction time of VAF, BP (BB-forest) and BBT on all six
//! datasets.
//!
//! Paper shape: VA-file construction is the fastest everywhere; the
//! Bregman-ball based indexes (BB-forest, BB-tree) are at least an order of
//! magnitude slower because of the clustering; BB-tree construction is
//! slower than the BB-forest at high dimensionality because clustering the
//! full-dimensional space converges more slowly than clustering the
//! partitioned subspaces.

use brepartition_core::PartitionStrategy;
use datagen::PaperDataset;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// Reproduce Fig. 7.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 7 — index construction time (seconds, scaled proxies)",
        &["Dataset", "VAF", "BP (BB-forest)", "BBT"],
    );
    for dataset in PaperDataset::ALL {
        let workload = bench.workload(dataset, 7);
        let k = 20;
        let vaf = bench.run_vaf(&workload, k);
        let m = bench.paper_m(workload.dataset.dim());
        let bp = bench.run_brepartition(&workload, k, Some(m), PartitionStrategy::Pccp);
        let bbt = bench.run_bbt(&workload, k);
        table.row(vec![
            dataset.name().to_string(),
            fmt_f64(vaf.build_seconds),
            fmt_f64(bp.build_seconds),
            fmt_f64(bbt.build_seconds),
        ]);
    }
    vec![table]
}
