//! Figs. 11 & 12: per-query I/O cost and running time of BP, VAF and BBT as
//! k grows from 20 to 100, on the four "real" proxies.
//!
//! Paper shape: BP has the lowest I/O and running time almost everywhere;
//! VAF sits between BP and BBT (its approximation-file scan gives it
//! moderate I/O but scanning all approximations costs CPU); BBT is the worst
//! in high dimensions because cluster overlap forces it to visit most
//! leaves.

use std::time::Instant;

use bbtree::{BBTreeConfig, DiskBBTree};
use bregman::{DivergenceKind, Exponential, GeneralizedI, ItakuraSaito, SquaredEuclidean};
use brepartition_core::{BrePartitionConfig, BrePartitionIndex};
use datagen::PaperDataset;
use pagestore::{BufferPool, PageStoreConfig};
use vafile::{VaFile, VaFileConfig};

use crate::report::{fmt_f64, Table};
use crate::runner::{Workbench, Workload};

const KS: [usize; 5] = [20, 40, 60, 80, 100];

/// Reproduce Figs. 11 and 12.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let datasets =
        [PaperDataset::Audio, PaperDataset::Fonts, PaperDataset::Deep, PaperDataset::Sift];
    let mut tables = Vec::new();
    for dataset in datasets {
        let workload = bench.workload(dataset, 11);
        let mut io_table = Table::new(
            format!("Fig. 11 — {} : per-query I/O (pages) vs k", dataset),
            &["k", "BP", "VAF", "BBT"],
        );
        let mut time_table = Table::new(
            format!("Fig. 12 — {} : per-query running time (ms) vs k", dataset),
            &["k", "BP", "VAF", "BBT"],
        );
        let series = run_methods(&workload, bench.paper_m(workload.dataset.dim()));
        for (i, &k) in KS.iter().enumerate() {
            io_table.row(vec![
                k.to_string(),
                fmt_f64(series.bp[i].0),
                fmt_f64(series.vaf[i].0),
                fmt_f64(series.bbt[i].0),
            ]);
            time_table.row(vec![
                k.to_string(),
                fmt_f64(series.bp[i].1),
                fmt_f64(series.vaf[i].1),
                fmt_f64(series.bbt[i].1),
            ]);
        }
        tables.push(io_table);
        tables.push(time_table);
    }
    tables
}

struct Series {
    /// `(avg I/O pages, avg ms)` per k, per method.
    bp: Vec<(f64, f64)>,
    vaf: Vec<(f64, f64)>,
    bbt: Vec<(f64, f64)>,
}

fn run_methods(workload: &Workload, paper_m: usize) -> Series {
    // Build each index once and sweep k over it.
    let bp_config =
        BrePartitionConfig::default().with_page_size(workload.page_size).with_partitions(paper_m);
    let bp_index =
        BrePartitionIndex::build(workload.kind, &workload.dataset, &bp_config).expect("BP build");
    let bp: Vec<(f64, f64)> = KS
        .iter()
        .map(|&k| {
            let mut pages = 0u64;
            let started = Instant::now();
            for query in workload.queries.iter() {
                pages += bp_index.knn(query, k).expect("BP query").stats.io.pages_read;
            }
            let q = workload.queries.len() as f64;
            (pages as f64 / q, started.elapsed().as_secs_f64() * 1e3 / q)
        })
        .collect();

    macro_rules! baselines {
        ($div:expr) => {{
            let bbt_index = DiskBBTree::build(
                $div,
                &workload.dataset,
                BBTreeConfig::with_leaf_capacity(32),
                PageStoreConfig::with_page_size(workload.page_size),
            );
            let bbt: Vec<(f64, f64)> = KS
                .iter()
                .map(|&k| {
                    let mut pages = 0u64;
                    let started = Instant::now();
                    for query in workload.queries.iter() {
                        let mut pool = BufferPool::unbuffered();
                        pages +=
                            bbt_index.knn(&mut pool, query, k).expect("bbt query").io.pages_read;
                    }
                    let q = workload.queries.len() as f64;
                    (pages as f64 / q, started.elapsed().as_secs_f64() * 1e3 / q)
                })
                .collect();
            let vaf_index = VaFile::build(
                $div,
                &workload.dataset,
                VaFileConfig { page_size_bytes: workload.page_size, ..VaFileConfig::default() },
            );
            let vaf: Vec<(f64, f64)> = KS
                .iter()
                .map(|&k| {
                    let mut pages = 0u64;
                    let started = Instant::now();
                    for query in workload.queries.iter() {
                        let mut pool = BufferPool::unbuffered();
                        pages += vaf_index.knn(&mut pool, query, k).io.pages_read;
                    }
                    let q = workload.queries.len() as f64;
                    (pages as f64 / q, started.elapsed().as_secs_f64() * 1e3 / q)
                })
                .collect();
            (vaf, bbt)
        }};
    }
    let (vaf, bbt) = match workload.kind {
        DivergenceKind::SquaredEuclidean => baselines!(SquaredEuclidean),
        DivergenceKind::ItakuraSaito => baselines!(ItakuraSaito),
        DivergenceKind::Exponential => baselines!(Exponential),
        DivergenceKind::GeneralizedI => baselines!(GeneralizedI),
    };
    Series { bp, vaf, bbt }
}
