//! Refinement-kernel microbenchmark: naive vs prepared-query distances.
//!
//! Not a figure of the paper: this experiment measures the repository's own
//! hottest loop — the refine-phase divergence evaluation — in isolation.
//! For every divergence kind × dimensionality it times
//!
//! * **naive** — `DivergenceKind::divergence(x, q)`, which re-evaluates the
//!   generator (`ln`/`exp` transcendentals) over both arguments for every
//!   candidate (the pre-kernel refine path), and
//! * **prepared** — `PreparedQuery::distance(Φ(x), x)` over a precomputed
//!   `Φ` column, which is one 8-lane dot product with zero
//!   transcendentals (the per-point refine path), and
//! * **block** — `PreparedQuery::distance_block` over lane-major (SoA)
//!   candidate blocks, exactly the shape the dimension-major page codec
//!   decodes into: one gradient broadcast per dimension, multiply-adds
//!   vectorized across candidates (the batched refine path; bit-identical
//!   outputs to **prepared**),
//!
//! and reports ns/distance plus the speedups. Besides the markdown table,
//! [`run_with_json`] emits one stable-format JSON object per (kind, dim)
//! pair, which the `kernels` bin writes to `BENCH_kernels.json` so the perf
//! trajectory can be diffed across PRs.
//!
//! Dimensionalities are fixed (not scale-clamped): the cost of one distance
//! does not depend on dataset size, and the cross-PR artifact must always
//! contain the `d ≥ 50` rows the acceptance gates watch. The scale preset
//! only controls how many evaluations each measurement averages over.

use std::time::Instant;

use bregman::DivergenceKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// Dimensionalities measured for every divergence kind.
pub const DIMS: [usize; 4] = [2, 16, 50, 100];

/// Cap on candidates per lane-major block in the batched measurement.
pub const BLOCK_ROWS: usize = 64;

/// Candidates per lane-major block at a given dimensionality: the row
/// count of a decoded page group on the default 32 KiB pages (capped at
/// [`BLOCK_ROWS`]) — the block shape the refine path actually hands to
/// `distance_block`.
pub fn block_rows(dim: usize) -> usize {
    (32 * 1024 / (8 * dim)).clamp(8, BLOCK_ROWS)
}

/// Cap the candidate set so `rows` stays L2-resident (~1 MiB). The refine
/// path scores pages *just decoded* into per-query scratch — cache-hot by
/// construction — so the microbenchmark measures kernel cost; without the
/// cap, large-dimension cells degenerate into a DRAM-streaming benchmark
/// that hides kernel differences entirely.
fn resident_points(points: usize, dim: usize) -> usize {
    points.min((131_072 / dim).max(256))
}

/// Timed repetitions per path; the minimum is reported. Single-shot
/// timings on a busy single-core box swing by 2×, and the minimum — not
/// the mean — estimates the intrinsic cost of the loop.
pub const TRIALS: usize = 5;

/// One measured cell of the experiment.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Divergence short name ("SE", "ISD", "ED", "GI").
    pub kind: String,
    /// Dimensionality.
    pub dim: usize,
    /// Distance evaluations per timed loop.
    pub evals: usize,
    /// Naive path, nanoseconds per distance.
    pub naive_ns: f64,
    /// Prepared path, nanoseconds per distance.
    pub prepared_ns: f64,
    /// Batched lane-major block path, nanoseconds per distance.
    pub block_ns: f64,
    /// `naive_ns / prepared_ns`.
    pub speedup: f64,
    /// `prepared_ns / block_ns` — the additional gain of batching.
    pub block_speedup: f64,
    /// Largest |naive − prepared| observed (sanity: the paths agree; the
    /// block path is checked for *bit* equality with prepared separately).
    pub max_abs_delta: f64,
}

impl KernelMeasurement {
    /// Stable-key JSON object (manual rendering, no deps — same convention
    /// as `ThroughputReport::to_json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":\"kernels\",\"kind\":\"{}\",\"dim\":{},\"evals\":{},\
             \"naive_ns_per_eval\":{:.3},\"prepared_ns_per_eval\":{:.3},\
             \"block_ns_per_eval\":{:.3},\"speedup\":{:.3},\"block_speedup\":{:.3},\
             \"max_abs_delta\":{:e}}}",
            self.kind,
            self.dim,
            self.evals,
            self.naive_ns,
            self.prepared_ns,
            self.block_ns,
            self.speedup,
            self.block_speedup,
            self.max_abs_delta
        )
    }
}

/// Measure one (kind, dim) cell.
fn measure(kind: DivergenceKind, dim: usize, points: usize, reps: usize) -> KernelMeasurement {
    let capped = resident_points(points, dim);
    // Keep total evaluations comparable when the residency cap shrinks
    // the candidate set.
    let reps = (points * reps / capped).max(reps);
    let points = capped;
    let block_rows = block_rows(dim);
    let mut rng = StdRng::seed_from_u64(0x5EED ^ (dim as u64) << 16 ^ points as u64);
    // 0.1..6.1 is inside every kind's domain (ISD/GI need positivity).
    let mut coord = move || rng.gen_range(0.1..6.1);
    let rows: Vec<f64> = (0..points * dim).map(|_| coord()).collect();
    let query: Vec<f64> = (0..dim).map(|_| coord()).collect();
    let phi: Vec<f64> = rows.chunks_exact(dim).map(|row| kind.phi_sum(row)).collect();
    let prepared = kind.prepare_query(&query);

    // Warm-up + agreement check (also keeps both loops observable so the
    // optimizer cannot discard them).
    let mut max_abs_delta = 0.0f64;
    for (i, row) in rows.chunks_exact(dim).enumerate() {
        let delta = (kind.divergence(row, &query) - prepared.distance(phi[i], row)).abs();
        max_abs_delta = max_abs_delta.max(delta);
    }

    // Each path is timed TRIALS times and the *minimum* is kept: on a
    // shared/noisy machine the minimum is the best estimate of the code's
    // intrinsic cost, while means absorb scheduler preemptions.
    let mut naive_sum = 0.0;
    let mut naive_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for _ in 0..reps {
            for row in rows.chunks_exact(dim) {
                naive_sum += kind.divergence(row, &query);
            }
        }
        naive_seconds = naive_seconds.min(started.elapsed().as_secs_f64());
    }

    let mut prepared_sum = 0.0;
    let mut prepared_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for _ in 0..reps {
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                prepared_sum += prepared.distance(phi[i], row);
            }
        }
        prepared_seconds = prepared_seconds.min(started.elapsed().as_secs_f64());
    }

    // The batched path consumes lane-major blocks — the exact shape the
    // dimension-major page codec decodes into, transposed here once
    // outside the timed loop just as `decode_slots_into` does per page.
    let row_slices: Vec<&[f64]> = rows.chunks_exact(dim).collect();
    let mut block_inputs: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for (ci, chunk) in row_slices.chunks(block_rows).enumerate() {
        let m = chunk.len();
        let mut lanes = vec![0.0; dim * m];
        for (j, row) in chunk.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                lanes[i * m + j] = v;
            }
        }
        block_inputs.push((phi[ci * block_rows..ci * block_rows + m].to_vec(), lanes));
    }
    let mut out = Vec::new();
    // Warm-up + the block path's exactness contract: bit-identical to the
    // per-point prepared path, not merely close.
    for (ci, (phis, lanes)) in block_inputs.iter().enumerate() {
        prepared.distance_block(phis, lanes, &mut out);
        for (j, d) in out.iter().enumerate() {
            let i = ci * block_rows + j;
            assert_eq!(
                d.to_bits(),
                prepared.distance(phi[i], row_slices[i]).to_bits(),
                "block refine diverged from the per-point kernel"
            );
        }
    }
    let mut block_sum = 0.0;
    let mut block_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for _ in 0..reps {
            for (phis, lanes) in &block_inputs {
                prepared.distance_block(phis, lanes, &mut out);
                block_sum += out.iter().sum::<f64>();
            }
        }
        block_seconds = block_seconds.min(started.elapsed().as_secs_f64());
    }
    assert!(
        naive_sum.is_finite() && prepared_sum.is_finite() && block_sum.is_finite(),
        "kernel benchmark produced non-finite sums"
    );

    let evals = points * reps;
    let naive_ns = naive_seconds * 1e9 / evals as f64;
    let prepared_ns = prepared_seconds * 1e9 / evals as f64;
    let block_ns = block_seconds * 1e9 / evals as f64;
    KernelMeasurement {
        kind: kind.short_name().to_string(),
        dim,
        evals,
        naive_ns,
        prepared_ns,
        block_ns,
        speedup: if prepared_ns > 0.0 { naive_ns / prepared_ns } else { f64::INFINITY },
        block_speedup: if block_ns > 0.0 { prepared_ns / block_ns } else { f64::INFINITY },
        max_abs_delta,
    }
}

/// Run the kernel microbenchmark over every kind × dimensionality.
pub fn run(bench: &Workbench) -> Vec<Table> {
    run_with_json(bench).0
}

/// Run the experiment and also return the measurements as one JSON array
/// (stable key order, machine-diffable).
pub fn run_with_json(bench: &Workbench) -> (Vec<Table>, String) {
    let points = bench.scale.max_points.clamp(512, 4096);
    let mut table = Table::new(
        format!(
            "Refinement kernels — naive vs prepared vs SoA block, \
             {points} candidates per measurement"
        ),
        &[
            "divergence",
            "dim",
            "naive ns/dist",
            "prepared ns/dist",
            "block ns/dist",
            "speedup",
            "block speedup",
            "max |Δ|",
        ],
    );
    let mut jsons = Vec::new();
    for kind in DivergenceKind::ALL {
        for dim in DIMS {
            // Keep total distance evaluations roughly constant across dims
            // so every cell averages over comparable work.
            let reps = (200_000 / points).max(4);
            let m = measure(kind, dim, points, reps);
            table.row(vec![
                m.kind.clone(),
                m.dim.to_string(),
                fmt_f64(m.naive_ns),
                fmt_f64(m.prepared_ns),
                fmt_f64(m.block_ns),
                fmt_f64(m.speedup),
                fmt_f64(m.block_speedup),
                format!("{:.1e}", m.max_abs_delta),
            ]);
            jsons.push(m.to_json());
        }
    }
    (vec![table], format!("[\n{}\n]\n", jsons.join(",\n")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn kernel_rows_cover_every_kind_and_dim() {
        let bench = Workbench::new(Scale::tiny());
        let (tables, json) = run_with_json(&bench);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), DivergenceKind::ALL.len() * DIMS.len());
        assert_eq!(json.matches("\"kind\":").count(), tables[0].len());
        assert_eq!(json.matches("\"speedup\":").count(), tables[0].len());
        assert_eq!(json.matches("\"block_ns_per_eval\":").count(), tables[0].len());
        assert_eq!(json.matches("\"block_speedup\":").count(), tables[0].len());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn measured_paths_agree_numerically() {
        let m = measure(DivergenceKind::ItakuraSaito, 50, 256, 2);
        // Distances in this workload are O(d); 1e-8 absolute is far below
        // any neighbor gap and far above reassociation noise.
        assert!(m.max_abs_delta < 1e-8, "paths diverge: {}", m.max_abs_delta);
        assert_eq!(m.kind, "ISD");
        assert_eq!(m.dim, 50);
    }
}
