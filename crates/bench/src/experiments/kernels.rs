//! Refinement-kernel microbenchmark: naive vs prepared-query distances.
//!
//! Not a figure of the paper: this experiment measures the repository's own
//! hottest loop — the refine-phase divergence evaluation — in isolation.
//! For every divergence kind × dimensionality it times
//!
//! * **naive** — `DivergenceKind::divergence(x, q)`, which re-evaluates the
//!   generator (`ln`/`exp` transcendentals) over both arguments for every
//!   candidate (the pre-kernel refine path), and
//! * **prepared** — `PreparedQuery::distance(Φ(x), x)` over a precomputed
//!   `Φ` column, which is one chunked dot product with zero
//!   transcendentals (the current refine path),
//!
//! and reports ns/distance plus the speedup. Besides the markdown table,
//! [`run_with_json`] emits one stable-format JSON object per (kind, dim)
//! pair, which the `kernels` bin writes to `BENCH_kernels.json` so the perf
//! trajectory can be diffed across PRs.
//!
//! Dimensionalities are fixed (not scale-clamped): the cost of one distance
//! does not depend on dataset size, and the cross-PR artifact must always
//! contain the `d ≥ 50` rows the acceptance gates watch. The scale preset
//! only controls how many evaluations each measurement averages over.

use std::time::Instant;

use bregman::DivergenceKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// Dimensionalities measured for every divergence kind.
pub const DIMS: [usize; 4] = [2, 16, 50, 100];

/// One measured cell of the experiment.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Divergence short name ("SE", "ISD", "ED", "GI").
    pub kind: String,
    /// Dimensionality.
    pub dim: usize,
    /// Distance evaluations per timed loop.
    pub evals: usize,
    /// Naive path, nanoseconds per distance.
    pub naive_ns: f64,
    /// Prepared path, nanoseconds per distance.
    pub prepared_ns: f64,
    /// `naive_ns / prepared_ns`.
    pub speedup: f64,
    /// Largest |naive − prepared| observed (sanity: the paths agree).
    pub max_abs_delta: f64,
}

impl KernelMeasurement {
    /// Stable-key JSON object (manual rendering, no deps — same convention
    /// as `ThroughputReport::to_json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":\"kernels\",\"kind\":\"{}\",\"dim\":{},\"evals\":{},\
             \"naive_ns_per_eval\":{:.3},\"prepared_ns_per_eval\":{:.3},\
             \"speedup\":{:.3},\"max_abs_delta\":{:e}}}",
            self.kind,
            self.dim,
            self.evals,
            self.naive_ns,
            self.prepared_ns,
            self.speedup,
            self.max_abs_delta
        )
    }
}

/// Measure one (kind, dim) cell.
fn measure(kind: DivergenceKind, dim: usize, points: usize, reps: usize) -> KernelMeasurement {
    let mut rng = StdRng::seed_from_u64(0x5EED ^ (dim as u64) << 16 ^ points as u64);
    // 0.1..6.1 is inside every kind's domain (ISD/GI need positivity).
    let mut coord = move || rng.gen_range(0.1..6.1);
    let rows: Vec<f64> = (0..points * dim).map(|_| coord()).collect();
    let query: Vec<f64> = (0..dim).map(|_| coord()).collect();
    let phi: Vec<f64> = rows.chunks_exact(dim).map(|row| kind.phi_sum(row)).collect();
    let prepared = kind.prepare_query(&query);

    // Warm-up + agreement check (also keeps both loops observable so the
    // optimizer cannot discard them).
    let mut max_abs_delta = 0.0f64;
    for (i, row) in rows.chunks_exact(dim).enumerate() {
        let delta = (kind.divergence(row, &query) - prepared.distance(phi[i], row)).abs();
        max_abs_delta = max_abs_delta.max(delta);
    }

    let mut naive_sum = 0.0;
    let naive_started = Instant::now();
    for _ in 0..reps {
        for row in rows.chunks_exact(dim) {
            naive_sum += kind.divergence(row, &query);
        }
    }
    let naive_seconds = naive_started.elapsed().as_secs_f64();

    let mut prepared_sum = 0.0;
    let prepared_started = Instant::now();
    for _ in 0..reps {
        for (i, row) in rows.chunks_exact(dim).enumerate() {
            prepared_sum += prepared.distance(phi[i], row);
        }
    }
    let prepared_seconds = prepared_started.elapsed().as_secs_f64();
    assert!(
        naive_sum.is_finite() && prepared_sum.is_finite(),
        "kernel benchmark produced non-finite sums"
    );

    let evals = points * reps;
    let naive_ns = naive_seconds * 1e9 / evals as f64;
    let prepared_ns = prepared_seconds * 1e9 / evals as f64;
    KernelMeasurement {
        kind: kind.short_name().to_string(),
        dim,
        evals,
        naive_ns,
        prepared_ns,
        speedup: if prepared_ns > 0.0 { naive_ns / prepared_ns } else { f64::INFINITY },
        max_abs_delta,
    }
}

/// Run the kernel microbenchmark over every kind × dimensionality.
pub fn run(bench: &Workbench) -> Vec<Table> {
    run_with_json(bench).0
}

/// Run the experiment and also return the measurements as one JSON array
/// (stable key order, machine-diffable).
pub fn run_with_json(bench: &Workbench) -> (Vec<Table>, String) {
    let points = bench.scale.max_points.clamp(512, 4096);
    let mut table = Table::new(
        format!("Refinement kernels — naive vs prepared, {points} candidates per measurement"),
        &["divergence", "dim", "naive ns/dist", "prepared ns/dist", "speedup", "max |Δ|"],
    );
    let mut jsons = Vec::new();
    for kind in DivergenceKind::ALL {
        for dim in DIMS {
            // Keep total distance evaluations roughly constant across dims
            // so every cell averages over comparable work.
            let reps = (200_000 / points).max(4);
            let m = measure(kind, dim, points, reps);
            table.row(vec![
                m.kind.clone(),
                m.dim.to_string(),
                fmt_f64(m.naive_ns),
                fmt_f64(m.prepared_ns),
                fmt_f64(m.speedup),
                format!("{:.1e}", m.max_abs_delta),
            ]);
            jsons.push(m.to_json());
        }
    }
    (vec![table], format!("[\n{}\n]\n", jsons.join(",\n")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn kernel_rows_cover_every_kind_and_dim() {
        let bench = Workbench::new(Scale::tiny());
        let (tables, json) = run_with_json(&bench);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), DivergenceKind::ALL.len() * DIMS.len());
        assert_eq!(json.matches("\"kind\":").count(), tables[0].len());
        assert_eq!(json.matches("\"speedup\":").count(), tables[0].len());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn measured_paths_agree_numerically() {
        let m = measure(DivergenceKind::ItakuraSaito, 50, 256, 2);
        // Distances in this workload are O(d); 1e-8 absolute is far below
        // any neighbor gap and far above reassociation noise.
        assert!(m.max_abs_delta < 1e-8, "paths diverge: {}", m.max_abs_delta);
        assert_eq!(m.kind, "ISD");
        assert_eq!(m.dim, 50);
    }
}
