//! Cold-open vs rebuild: what the persistent index lifecycle buys.
//!
//! Not a figure of the paper: the paper treats index construction as an
//! offline phase amortized over many queries, which presumes the index can
//! be *reopened* rather than rebuilt on every process start. This experiment
//! drives **all four methods through the identical spec-driven lifecycle**
//! (`IndexSpec` → `Index::build` → `save` → `Index::open`) and measures the
//! cost of each phase — build from raw vectors, save to a self-describing
//! index directory, cold-open from that directory — verifying that the
//! reopened index answers a query batch with exactly the neighbors and
//! per-query physical I/O of the freshly built one.

use std::path::PathBuf;
use std::time::Instant;

use bregman::DivergenceKind;
use brepartition::{Index, IndexSpec, Method, Request};
use brepartition_engine::EngineConfig;
use datagen::{HierarchicalSpec, QueryWorkload};

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

const PAGE_SIZE: usize = 16 * 1024;
const K: usize = 10;

/// One method's lifecycle measurements.
struct LifecycleRow {
    method: &'static str,
    build_seconds: f64,
    save_seconds: f64,
    open_seconds: f64,
    index_bytes: u64,
    identical: bool,
}

/// Run the persistence experiment: build, save, cold-open and re-serve
/// every method through the façade.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let kind = DivergenceKind::ItakuraSaito;
    let n = bench.scale.max_points.max(600);
    let dim = 24.min(bench.scale.max_dim);
    let dataset = HierarchicalSpec {
        n,
        dim,
        clusters: (n / 100).clamp(8, 24),
        blocks: (dim / 4).max(2),
        ..Default::default()
    }
    .generate();
    let batch_size = (bench.scale.queries * 8).clamp(32, 256);
    let workload = QueryWorkload::perturbed_from(&dataset, kind, batch_size, 0.02, 0x9E5);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();

    let root = std::env::temp_dir()
        .join(format!("brepartition-persistence-experiment-{}", std::process::id()));
    let mut rows: Vec<LifecycleRow> = Vec::new();

    for method in Method::ALL {
        let spec = IndexSpec::new(method, kind)
            .with_partitions(bench.paper_m(dim))
            .with_leaf_capacity(32)
            .with_page_size(PAGE_SIZE)
            .with_probability(0.9);

        let started = Instant::now();
        let built = Index::build(&spec, &dataset).expect("index build");
        let build_seconds = started.elapsed().as_secs_f64();

        let dir = root.join(method.short_name());
        let started = Instant::now();
        built.save(&dir).expect("index save");
        let save_seconds = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let reopened = Index::open(&dir).expect("index cold open");
        let open_seconds = started.elapsed().as_secs_f64();

        rows.push(LifecycleRow {
            method: method.short_name(),
            build_seconds,
            save_seconds,
            open_seconds,
            index_bytes: dir_bytes(&dir),
            identical: batches_identical(&built, &reopened, &queries),
        });
    }

    let _ = std::fs::remove_dir_all(&root);

    let mut table = Table::new(
        format!("Index lifecycle — hierarchical ISD, n={n}, d={dim}, {batch_size} queries, k={K}"),
        &[
            "method",
            "build (s)",
            "save (s)",
            "cold open (s)",
            "open speedup",
            "index size (KB)",
            "reopened identical",
        ],
    );
    for row in rows {
        let speedup = if row.open_seconds > 0.0 {
            row.build_seconds / row.open_seconds
        } else {
            f64::INFINITY
        };
        table.row(vec![
            row.method.to_string(),
            fmt_f64(row.build_seconds),
            fmt_f64(row.save_seconds),
            fmt_f64(row.open_seconds),
            format!("{}x", fmt_f64(speedup)),
            fmt_f64(row.index_bytes as f64 / 1024.0),
            if row.identical { "yes".to_string() } else { "NO".to_string() },
        ]);
    }
    vec![table]
}

/// Run the same batch on the built and the reopened index and compare
/// neighbors, candidates and per-query physical I/O.
fn batches_identical(built: &Index, reopened: &Index, queries: &[Vec<f64>]) -> bool {
    let request = Request::uniform(queries, K);
    let config = EngineConfig::default().with_threads(2);
    let a = built.run_with(&request, config).expect("built batch");
    let b = reopened.run_with(&request, config).expect("reopened batch");
    a.outcomes
        .iter()
        .zip(b.outcomes.iter())
        .all(|(x, y)| x.neighbors == y.neighbors && x.io == y.io && x.candidates == y.candidates)
}

/// Total size of every file in an index directory.
fn dir_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.filter_map(|e| e.ok()).filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn lifecycle_rows_cover_all_methods_and_roundtrips_are_identical() {
        let bench = Workbench::new(Scale::tiny());
        let tables = run(&bench);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 4); // BP, ABP, BBT, VAF
        let rendered = tables[0].to_markdown();
        assert!(!rendered.contains("| NO |"), "a reopened index diverged:\n{rendered}");
    }
}
