//! Fig. 15: evaluation of the approximate solution on the synthetic Normal
//! and Uniform datasets — overall ratio, I/O cost and running time of BP,
//! ABP (p ∈ {0.7, 0.8, 0.9}) and the variational baseline Var, as k grows.
//!
//! Paper shape: the overall ratio grows mildly with k and shrinks as the
//! probability guarantee rises (p = 0.9 is the most accurate); ABP's I/O and
//! time sit below the exact BP and below Var in most settings, because the
//! shrunken bound admits fewer candidates.

use datagen::PaperDataset;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

const KS: [usize; 3] = [20, 60, 100];
const PROBABILITIES: [f64; 3] = [0.7, 0.8, 0.9];

/// Reproduce Fig. 15 (and the Uniform variant from the supplementary file).
pub fn run(bench: &Workbench) -> Vec<Table> {
    let mut tables = Vec::new();
    for dataset in [PaperDataset::Normal, PaperDataset::Uniform] {
        let workload = bench.workload(dataset, 15);
        let mut ratio_table = Table::new(
            format!("Fig. 15(a) — {dataset}: overall ratio vs k"),
            &["k", "ABP p=0.7", "ABP p=0.8", "ABP p=0.9", "Var"],
        );
        let mut io_table = Table::new(
            format!("Fig. 15(b) — {dataset}: per-query I/O (pages) vs k"),
            &["k", "BP", "ABP p=0.7", "ABP p=0.8", "ABP p=0.9", "Var"],
        );
        let mut time_table = Table::new(
            format!("Fig. 15(c) — {dataset}: per-query running time (ms) vs k"),
            &["k", "BP", "ABP p=0.7", "ABP p=0.8", "ABP p=0.9", "Var"],
        );
        for k in KS {
            let truth = bench.ground_truth(&workload, k);
            let bp = bench.run_brepartition(
                &workload,
                k,
                Some(bench.paper_m(workload.dataset.dim())),
                brepartition_core::PartitionStrategy::Pccp,
            );
            let abp: Vec<_> =
                PROBABILITIES.iter().map(|&p| bench.run_abp(&workload, k, p, &truth)).collect();
            let var = bench.run_var(&workload, k, 0.15, &truth);
            ratio_table.row(vec![
                k.to_string(),
                fmt_f64(abp[0].overall_ratio),
                fmt_f64(abp[1].overall_ratio),
                fmt_f64(abp[2].overall_ratio),
                fmt_f64(var.overall_ratio),
            ]);
            io_table.row(vec![
                k.to_string(),
                fmt_f64(bp.avg_io_pages),
                fmt_f64(abp[0].avg_io_pages),
                fmt_f64(abp[1].avg_io_pages),
                fmt_f64(abp[2].avg_io_pages),
                fmt_f64(var.avg_io_pages),
            ]);
            time_table.row(vec![
                k.to_string(),
                fmt_f64(bp.avg_time_ms),
                fmt_f64(abp[0].avg_time_ms),
                fmt_f64(abp[1].avg_time_ms),
                fmt_f64(abp[2].avg_time_ms),
                fmt_f64(var.avg_time_ms),
            ]);
        }
        tables.push(ratio_table);
        tables.push(io_table);
        tables.push(time_table);
    }
    tables
}
