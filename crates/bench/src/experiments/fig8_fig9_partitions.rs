//! Figs. 8 & 9: I/O cost and running time as a function of the number of
//! partitions `M`, for k ∈ {20, 60, 100}, on the four "real" proxies.
//!
//! Paper shape: I/O decreases monotonically (and with diminishing returns)
//! as M grows; running time first falls then rises again, with its minimum
//! at (or near) the cost-model optimum.

use std::time::Instant;

use brepartition_core::{BrePartitionConfig, BrePartitionIndex};
use datagen::PaperDataset;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// The M values swept, expressed as divisors/multiples of the dimensionality.
fn m_sweep(dim: usize) -> Vec<usize> {
    let candidates = [2, 4, 8, 12, 16, 24, 32, 48, 64];
    candidates.iter().copied().filter(|&m| m <= dim).collect()
}

/// Reproduce Figs. 8 and 9.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let datasets =
        [PaperDataset::Audio, PaperDataset::Fonts, PaperDataset::Deep, PaperDataset::Sift];
    let ks = [20usize, 60, 100];
    let mut tables = Vec::new();
    for dataset in datasets {
        let workload = bench.workload(dataset, 8);
        let mut table = Table::new(
            format!("Figs. 8/9 — {} : per-query I/O (pages) and running time (ms) vs M", dataset),
            &[
                "M",
                "I/O k=20",
                "I/O k=60",
                "I/O k=100",
                "time k=20",
                "time k=60",
                "time k=100",
                "candidates k=20",
            ],
        );
        for m in m_sweep(workload.dataset.dim()) {
            let config =
                BrePartitionConfig::default().with_partitions(m).with_page_size(workload.page_size);
            let Ok(index) = BrePartitionIndex::build(workload.kind, &workload.dataset, &config)
            else {
                continue;
            };
            let mut io = Vec::new();
            let mut time = Vec::new();
            let mut candidates_k20 = 0.0;
            for &k in &ks {
                let mut pages = 0u64;
                let mut cands = 0usize;
                let started = Instant::now();
                for query in workload.queries.iter() {
                    let result = index.knn(query, k).expect("query");
                    pages += result.stats.io.pages_read;
                    cands += result.stats.candidates;
                }
                let elapsed = started.elapsed().as_secs_f64();
                let q = workload.queries.len() as f64;
                io.push(pages as f64 / q);
                time.push(elapsed * 1e3 / q);
                if k == 20 {
                    candidates_k20 = cands as f64 / q;
                }
            }
            table.row(vec![
                m.to_string(),
                fmt_f64(io[0]),
                fmt_f64(io[1]),
                fmt_f64(io[2]),
                fmt_f64(time[0]),
                fmt_f64(time[1]),
                fmt_f64(time[2]),
                fmt_f64(candidates_k20),
            ]);
        }
        // Record the cost-model optimum for the validation discussion
        // (Section 9.3.2).
        let auto = BrePartitionConfig::default().with_page_size(workload.page_size);
        if let Ok(index) = BrePartitionIndex::build(workload.kind, &workload.dataset, &auto) {
            table.row(vec![
                format!("optimum (cost model) = {}", index.partitions()),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        tables.push(table);
    }
    tables
}
