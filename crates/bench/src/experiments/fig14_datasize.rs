//! Fig. 14: impact of data size — I/O cost and running time of BP, VAF and
//! BBT on the SIFT proxy as the number of points grows.
//!
//! Paper shape: both metrics grow roughly linearly with the data size for
//! every method; BP stays the cheapest, VAF is competitive, BBT's cost is a
//! multiple of the other two. The number of partitions barely changes with
//! n, so a single M is used across the sweep (as in the paper).

use brepartition_core::PartitionStrategy;
use datagen::PaperDataset;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

/// Reproduce Fig. 14.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let k = 20;
    let mut io_table = Table::new(
        "Fig. 14(a) — SIFT proxy: per-query I/O (pages) vs data size",
        &["n", "BP", "VAF", "BBT"],
    );
    let mut time_table = Table::new(
        "Fig. 14(b) — SIFT proxy: per-query running time (ms) vs data size",
        &["n", "BP", "VAF", "BBT"],
    );
    let max = bench.scale.max_points;
    let sweep: Vec<usize> =
        [0.2, 0.4, 0.6, 0.8, 1.0].iter().map(|f| ((max as f64 * f) as usize).max(200)).collect();
    for n in sweep {
        let spec =
            PaperDataset::Sift.scaled_spec(max).with_points(n).with_dim(bench.scale.dim(128));
        let workload = bench.workload_from_spec("Sift", spec, 14);
        let m = bench.paper_m(workload.dataset.dim());
        let bp = bench.run_brepartition(&workload, k, Some(m), PartitionStrategy::Pccp);
        let vaf = bench.run_vaf(&workload, k);
        let bbt = bench.run_bbt(&workload, k);
        io_table.row(vec![
            n.to_string(),
            fmt_f64(bp.avg_io_pages),
            fmt_f64(vaf.avg_io_pages),
            fmt_f64(bbt.avg_io_pages),
        ]);
        time_table.row(vec![
            n.to_string(),
            fmt_f64(bp.avg_time_ms),
            fmt_f64(vaf.avg_time_ms),
            fmt_f64(bbt.avg_time_ms),
        ]);
    }
    vec![io_table, time_table]
}
