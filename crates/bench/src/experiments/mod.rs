//! One module per table/figure of the paper's evaluation (Section 9).
//!
//! Every module exposes `run(&Workbench) -> Vec<Table>`; [`run_all`] renders
//! the complete report.

pub mod fig10_pccp;
pub mod fig11_fig12_vs_k;
pub mod fig13_dimensionality;
pub mod fig14_datasize;
pub mod fig15_approximate;
pub mod fig7_construction;
pub mod fig8_fig9_partitions;
pub mod kernels;
pub mod persistence;
pub mod serving;
pub mod table4_datasets;
pub mod throughput;

use crate::report::Table;
use crate::runner::Workbench;
use crate::scale::Scale;

/// Run every experiment at the given scale and render a single markdown
/// report.
pub fn run_all(scale: Scale) -> String {
    let bench = Workbench::new(scale);
    let mut out = String::new();
    out.push_str("# BrePartition — reproduced evaluation\n\n");
    out.push_str(&format!(
        "Scale: up to {} points, {} queries per workload, dimensionality cap {}.\n\n",
        scale.max_points, scale.queries, scale.max_dim
    ));
    let sections: Vec<(&str, Vec<Table>)> = vec![
        ("Table 4 — datasets and optimized M", table4_datasets::run(&bench)),
        ("Fig. 7 — index construction time", fig7_construction::run(&bench)),
        ("Figs. 8 & 9 — impact of the number of partitions", fig8_fig9_partitions::run(&bench)),
        ("Fig. 10 — impact of PCCP", fig10_pccp::run(&bench)),
        ("Figs. 11 & 12 — I/O cost and running time vs k", fig11_fig12_vs_k::run(&bench)),
        ("Fig. 13 — impact of dimensionality", fig13_dimensionality::run(&bench)),
        ("Fig. 14 — impact of data size", fig14_datasize::run(&bench)),
        ("Fig. 15 — approximate solution", fig15_approximate::run(&bench)),
        ("Engine — batch-serving throughput (beyond the paper)", throughput::run(&bench)),
        ("Engine — open-loop serving under mixed load (beyond the paper)", serving::run(&bench)),
        ("Kernels — naive vs prepared-query refinement (beyond the paper)", kernels::run(&bench)),
        ("Storage — index lifecycle: build vs save vs cold open", persistence::run(&bench)),
    ];
    for (title, tables) in sections {
        out.push_str(&format!("## {title}\n\n"));
        for table in tables {
            out.push_str(&table.to_markdown());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_smoke_test_at_tiny_scale() {
        let bench = Workbench::new(Scale::tiny());
        let tables = table4_datasets::run(&bench);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 6, "one row per dataset");
    }

    #[test]
    fn pccp_experiment_produces_rows_for_each_dataset() {
        let bench = Workbench::new(Scale::tiny());
        let tables = fig10_pccp::run(&bench);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 2);
    }
}
