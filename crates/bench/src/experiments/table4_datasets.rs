//! Table 4: the six datasets, their divergences, page sizes and the
//! optimized number of partitions computed by the cost model.

use bregman::DivergenceKind;
use brepartition_core::CostModel;
use datagen::PaperDataset;

use crate::report::Table;
use crate::runner::Workbench;

/// Reproduce Table 4 on the scaled proxies.
pub fn run(bench: &Workbench) -> Vec<Table> {
    let mut table = Table::new(
        "Table 4 — datasets (scaled proxies) and optimized number of partitions M",
        &[
            "Dataset",
            "n (proxy)",
            "d (proxy)",
            "Measure",
            "Page size",
            "M (paper)",
            "M (cost model)",
        ],
    );
    for dataset in PaperDataset::ALL {
        let workload = bench.workload(dataset, 4);
        let paper = dataset.paper_spec();
        let paper_m: String = match dataset {
            PaperDataset::Audio => "28".into(),
            PaperDataset::Fonts => "50".into(),
            PaperDataset::Deep => "37".into(),
            PaperDataset::Sift => "22".into(),
            PaperDataset::Normal => "25".into(),
            PaperDataset::Uniform => "21".into(),
        };
        let fitted = match workload.kind {
            DivergenceKind::GeneralizedI => None,
            kind => CostModel::fit(kind, &workload.dataset, 128, 7).ok(),
        };
        let m = fitted
            .map(|model| model.optimal_partitions(1).to_string())
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            dataset.name().to_string(),
            workload.dataset.len().to_string(),
            workload.dataset.dim().to_string(),
            workload.kind.short_name().to_string(),
            format!("{} KB", paper.page_size_bytes / 1024),
            paper_m,
            m,
        ]);
    }
    vec![table]
}
