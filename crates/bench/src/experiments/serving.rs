//! Open-loop serving benchmark: recall-vs-QPS and tail-latency-vs-QPS
//! curves under a mixed query/insert/delete load.
//!
//! The throughput experiment answers "how fast can the engine drain a
//! batch"; this one answers the production question: *what latency does a
//! client see when requests arrive at a rate the server does not
//! control?* The [`loadgen`] harness precomputes a seeded Poisson arrival
//! schedule at each target QPS and measures every operation from its
//! **intended arrival time**, so queueing delay behind a saturated server
//! is measured instead of silently stretching the schedule (the
//! coordinated-omission correction). Sweeping the target rate yields the
//! two curves a capacity plan needs: achieved-vs-target QPS with p999
//! latency, and recall degradation for the approximate methods.
//!
//! Per backend (BP, ABP, BBT, VAF, plus one 4-shard capacity tier and one
//! `+bgc` row-set: BP with background compaction enabled, driven through
//! [`loadgen::run_open_loop_concurrent`] so mutations land while queries
//! are in flight and the compactor swaps epochs mid-stream) the
//! experiment:
//!
//! 1. builds the index over a hierarchical Itakura-Saito workload,
//!    streamed from [`datagen::HierarchicalStream`] in blocks so the
//!    generator never stages its own full `n × dim` matrix;
//! 2. runs one open-loop session per target QPS — the *same* index
//!    carries its delta forward across sweep points like a long-running
//!    server, with insert and delete weights balanced so the live count
//!    stays roughly flat;
//! 3. samples queries, records the mutation-log version each executed
//!    under, and scores recall against the exact [`loadgen::oracle`]
//!    truth reconstructed at that version (base side brute-forced once
//!    per sampled query, memoized across backends and sweep points);
//! 4. reads physical I/O from the telemetry counters the serve target is
//!    bound to in a [`telemetry::Registry`].
//!
//! Environment knobs (all optional):
//!
//! * `BREPARTITION_SERVING_POINTS` — base dataset size (default: scale).
//! * `BREPARTITION_SERVING_OPS` — operations per sweep point.
//! * `BREPARTITION_SERVING_QPS` — comma-separated target QPS sweep, e.g.
//!   `"100,400,1600"`.
//! * `BREPARTITION_SERVING_THREADS` — dispatch threads (default 1; on a
//!   single-core runner more dispatchers only add scheduler noise).
//!
//! The `serving` bin writes the rows to `BENCH_serving.json` (stable key
//! order, one object per row) and refuses to overwrite a baseline whose
//! per-row key schema differs — schema drift must be an explicit,
//! reviewed change.

use std::collections::HashMap;
use std::sync::Arc;

use bregman::{DenseDataset, DivergenceKind, PointId};
use brepartition::{Index, IndexSpec, Method, QueryRequest, ShardSpec, ShardedIndex};
use brepartition_engine::FanoutPolicy;
use datagen::{HierarchicalSpec, QueryWorkload};
use loadgen::oracle::BaseNeighbors;
use loadgen::{
    delete_count, operation_stream, run_open_loop, run_open_loop_concurrent, AvailabilityCounters,
    ConcurrentServeTarget, OpKind, OpMix, Operation, RunOutcome, RunnerConfig, Schedule,
    ServeTarget,
};
use pagestore::AtomicIoStats;
use telemetry::Registry;

use crate::report::{fmt_f64, Table};
use crate::runner::Workbench;

const PAGE_SIZE: usize = 32 * 1024;
const K: usize = 10;
const SHARDS: usize = 4;
/// Query pool size: perturbed copies of dataset rows.
const QUERY_POOL: usize = 128;
/// query : insert : delete weights. Insert and delete weights are equal,
/// so the live count performs a random walk around the base size instead
/// of drifting.
const MIX: OpMix = OpMix { query: 92, insert: 4, delete: 4 };
/// Every 5th stream position's query is recall-sampled.
const SAMPLE_EVERY: usize = 5;
/// Seed for schedules and op streams (sweep index is added per point).
const SEED: u64 = 0x5E21;

/// A positive-integer environment override, or `None` when unset.
fn env_size(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    let parsed: usize = raw
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{var} must be a positive integer, got {raw:?}"));
    assert!(parsed > 0, "{var} must be positive");
    Some(parsed)
}

/// The target QPS sweep: `BREPARTITION_SERVING_QPS` as a comma-separated
/// list, or a default three-point sweep.
fn qps_sweep() -> Vec<f64> {
    match std::env::var("BREPARTITION_SERVING_QPS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                let qps: f64 = part
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("BREPARTITION_SERVING_QPS entry {part:?}"));
                assert!(qps > 0.0, "target QPS must be positive");
                qps
            })
            .collect(),
        Err(_) => vec![100.0, 400.0, 1600.0],
    }
}

/// One row of the serving report. Field order here is the JSON key order;
/// the private `fields` method is the single source of truth for both.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Backend label (e.g. `BP`, `ABP(p=0.90)`, `BPx4:capacity`).
    pub backend: String,
    /// Base dataset size the index was built over.
    pub points: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Target arrival rate of the open-loop schedule.
    pub target_qps: f64,
    /// Completed post-warmup operations per second.
    pub achieved_qps: f64,
    /// Open-loop dispatch threads.
    pub dispatch_threads: usize,
    /// Post-warmup operations recorded.
    pub ops: usize,
    /// Of which queries.
    pub queries: usize,
    /// Of which inserts.
    pub inserts: usize,
    /// Of which deletes.
    pub deletes: usize,
    /// Wall seconds from first intended arrival to last completion.
    pub wall_seconds: f64,
    /// Mean latency from intended arrival, milliseconds.
    pub latency_mean_ms: f64,
    /// p50 latency from intended arrival, milliseconds.
    pub latency_p50_ms: f64,
    /// p95 latency from intended arrival, milliseconds.
    pub latency_p95_ms: f64,
    /// p99 latency from intended arrival, milliseconds.
    pub latency_p99_ms: f64,
    /// p999 latency from intended arrival, milliseconds.
    pub latency_p999_ms: f64,
    /// Worst latency from intended arrival, milliseconds.
    pub latency_max_ms: f64,
    /// Physical page reads during this row, from the bound telemetry
    /// counters.
    pub io_pages_read: u64,
    /// Buffer-pool hits during this row.
    pub io_cache_hits: u64,
    /// Pages written during this row (delta compactions would show here).
    pub io_pages_written: u64,
    /// Compactions the target completed during this row (background epoch
    /// swaps plus any explicit folds).
    pub compactions: u64,
    /// Total wall time those compactions spent rebuilding, milliseconds —
    /// time the *worker* spent, not time any query waited (queries keep
    /// serving the old epoch throughout).
    pub compaction_ms: f64,
    /// Mean recall of sampled queries against the exact oracle truth at
    /// each sample's mutation-log version.
    pub recall_mean: f64,
    /// How many queries were recall-sampled.
    pub recall_samples: usize,
    /// Queries this row answered with reduced shard coverage (0 for
    /// single-index backends and for a healthy sharded tier).
    pub degraded_queries: u64,
    /// Per-shard retry dispatches during this row.
    pub shard_retries: u64,
    /// Circuit-breaker closed-to-open transitions during this row.
    pub breaker_opens: u64,
    /// Fraction of this row's queries answered at full coverage
    /// (1.0 means no degraded answers).
    pub availability: f64,
}

impl ServingReport {
    fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("backend", format!("\"{}\"", self.backend)),
            ("points", self.points.to_string()),
            ("dim", self.dim.to_string()),
            ("k", self.k.to_string()),
            ("target_qps", format_json_f64(self.target_qps)),
            ("achieved_qps", format_json_f64(self.achieved_qps)),
            ("dispatch_threads", self.dispatch_threads.to_string()),
            ("ops", self.ops.to_string()),
            ("queries", self.queries.to_string()),
            ("inserts", self.inserts.to_string()),
            ("deletes", self.deletes.to_string()),
            ("wall_seconds", format_json_f64(self.wall_seconds)),
            ("latency_mean_ms", format_json_f64(self.latency_mean_ms)),
            ("latency_p50_ms", format_json_f64(self.latency_p50_ms)),
            ("latency_p95_ms", format_json_f64(self.latency_p95_ms)),
            ("latency_p99_ms", format_json_f64(self.latency_p99_ms)),
            ("latency_p999_ms", format_json_f64(self.latency_p999_ms)),
            ("latency_max_ms", format_json_f64(self.latency_max_ms)),
            ("io_pages_read", self.io_pages_read.to_string()),
            ("io_cache_hits", self.io_cache_hits.to_string()),
            ("io_pages_written", self.io_pages_written.to_string()),
            ("compactions", self.compactions.to_string()),
            ("compaction_ms", format_json_f64(self.compaction_ms)),
            ("recall_mean", format_json_f64(self.recall_mean)),
            ("recall_samples", self.recall_samples.to_string()),
            ("degraded_queries", self.degraded_queries.to_string()),
            ("shard_retries", self.shard_retries.to_string()),
            ("breaker_opens", self.breaker_opens.to_string()),
            ("availability", format_json_f64(self.availability)),
        ]
    }

    /// One stable-key-order JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> =
            self.fields().iter().map(|(key, value)| format!("\"{key}\":{value}")).collect();
        format!("{{{}}}", body.join(","))
    }
}

fn format_json_f64(value: f64) -> String {
    if value.is_finite() {
        let formatted = format!("{value}");
        if formatted.contains('.') || formatted.contains('e') {
            formatted
        } else {
            format!("{formatted}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Cumulative compaction counters a serve target exposes so each sweep
/// point can report its delta: `(completed compactions, worker
/// nanoseconds)`.
trait CompactionStats {
    fn compaction_stats(&self) -> (u64, u64);
}

/// An [`Index`] driven through the façade query/insert/delete surface,
/// accumulating per-query physical I/O into telemetry counters.
struct IndexTarget {
    index: Index,
    io: Arc<AtomicIoStats>,
}

impl ServeTarget for IndexTarget {
    fn query(&self, query: &[f64], k: usize) -> Vec<u64> {
        ConcurrentServeTarget::query(self, query, k)
    }

    fn insert(&mut self, row: &[f64]) -> u64 {
        ConcurrentServeTarget::insert(self, row)
    }

    fn delete(&mut self, id: u64) -> bool {
        ConcurrentServeTarget::delete(self, id)
    }
}

/// The same target through the lock-free harness surface — the index
/// synchronizes itself, so `insert`/`delete` take `&self` and the runner
/// never serializes queries behind mutations.
impl ConcurrentServeTarget for IndexTarget {
    fn query(&self, query: &[f64], k: usize) -> Vec<u64> {
        let outcome = self.index.query(&QueryRequest::new(query, k)).expect("serving query");
        self.io.record(&outcome.io);
        outcome.neighbors.into_iter().map(|(id, _)| u64::from(id.0)).collect()
    }

    fn insert(&self, row: &[f64]) -> u64 {
        u64::from(self.index.insert(row).expect("serving insert").0)
    }

    fn delete(&self, id: u64) -> bool {
        self.index.delete(PointId(id as u32)).expect("serving delete")
    }
}

impl CompactionStats for IndexTarget {
    fn compaction_stats(&self) -> (u64, u64) {
        (self.index.compactions(), self.index.compaction_nanos())
    }
}

/// A [`ShardedIndex`] behind the same surface (routed mutations,
/// scatter-gather point queries). Queries go through the fault-tolerant
/// fan-out ([`ShardedIndex::run_with_policy`]) with partial results
/// allowed, so a degraded tier keeps serving and the availability
/// counters record exactly what coverage each answer had.
struct ShardedTarget {
    index: ShardedIndex,
    io: Arc<AtomicIoStats>,
    policy: FanoutPolicy,
}

impl ServeTarget for ShardedTarget {
    fn query(&self, query: &[f64], k: usize) -> Vec<u64> {
        let rows = [query.to_vec()];
        let request = brepartition::Request::uniform(&rows, k).allow_partial();
        let mut batch =
            self.index.run_with_policy(&request, SHARDS, &self.policy).expect("sharded query");
        let outcome = batch.outcomes.remove(0);
        self.io.record(&outcome.io);
        outcome.neighbors.into_iter().map(|(id, _)| u64::from(id.0)).collect()
    }

    fn insert(&mut self, row: &[f64]) -> u64 {
        u64::from(self.index.insert(row).expect("sharded insert").0)
    }

    fn delete(&mut self, id: u64) -> bool {
        self.index.delete(PointId(id as u32)).expect("sharded delete")
    }

    fn availability(&self) -> AvailabilityCounters {
        AvailabilityCounters {
            degraded_queries: self.index.degraded_queries(),
            shard_retries: self.index.health().retries(),
            breaker_opens: self.index.health().breaker_opens(),
        }
    }
}

impl CompactionStats for ShardedTarget {
    fn compaction_stats(&self) -> (u64, u64) {
        (0..self.index.shards())
            .map(|s| {
                let shard = self.index.shard(s);
                (shard.compactions(), shard.compaction_nanos())
            })
            .fold((0, 0), |(c, n), (sc, sn)| (c + sc, n + sn))
    }
}

/// Memoized exact base-side neighbor lists: brute force over the base
/// dataset, once per sampled query index, shared by every backend and
/// sweep point (the base data never changes).
struct BaseOracle<'a> {
    dataset: &'a DenseDataset,
    queries: &'a [Vec<f64>],
    kind: DivergenceKind,
    depth: usize,
    cache: HashMap<usize, BaseNeighbors>,
}

impl BaseOracle<'_> {
    fn neighbors(&mut self, query_index: usize) -> BaseNeighbors {
        let dataset = self.dataset;
        let kind = self.kind;
        let depth = self.depth;
        let query = &self.queries[query_index];
        self.cache
            .entry(query_index)
            .or_insert_with(|| {
                let mut scored: Vec<(u64, f64)> = (0..dataset.len())
                    .map(|i| (i as u64, kind.divergence(dataset.row(i), query)))
                    .collect();
                scored.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                scored.truncate(depth);
                BaseNeighbors { neighbors: scored }
            })
            .clone()
    }
}

/// One serving session: a sweep of open-loop runs over one target,
/// carrying the mutation log (and live set) forward between sweep points
/// like a long-running server.
///
/// `run` executes one sweep point — [`run_open_loop`] for `&mut` targets
/// the harness serializes itself, [`run_open_loop_concurrent`] for
/// internally synchronized targets — so both serving disciplines share
/// this bookkeeping (log carry, recall oracle, report assembly).
#[allow(clippy::too_many_arguments)]
fn serve_sessions<T: CompactionStats>(
    label: &str,
    mut target: T,
    io: &Arc<AtomicIoStats>,
    sweep: &[f64],
    ops_per_point: usize,
    queries: &[Vec<f64>],
    insert_rows: &[Vec<f64>],
    base: &mut BaseOracle<'_>,
    points: usize,
    dim: usize,
    dispatch_threads: usize,
    run: impl Fn(T, &Schedule, &[Operation], &RunnerConfig) -> (T, RunOutcome),
) -> Vec<ServingReport> {
    let kind = base.kind;
    let mut reports = Vec::new();
    let mut live: Vec<u64> = (0..points as u64).collect();
    let mut session_log: Vec<loadgen::Mutation> = Vec::new();
    let warmup = (ops_per_point / 10).min(64);

    for (sweep_index, &target_qps) in sweep.iter().enumerate() {
        let seed = SEED.wrapping_add(sweep_index as u64);
        let schedule = Schedule::poisson(seed, target_qps, ops_per_point);
        let ops = operation_stream(seed, MIX, ops_per_point, queries.len());
        let config = RunnerConfig {
            k: K,
            dispatch_threads,
            warmup_ops: warmup,
            sample_every: SAMPLE_EVERY,
            initial_live: live.clone(),
        };
        let io_before = io.snapshot();
        let (compactions_before, compaction_nanos_before) = target.compaction_stats();
        let (returned, outcome) = run(target, &schedule, &ops, &config);
        target = returned;
        let io_delta = io.snapshot().since(&io_before);
        let (compactions_after, compaction_nanos_after) = target.compaction_stats();

        // Carry the live set and the session-cumulative log forward; a
        // sample's truth needs *every* mutation since the build, not just
        // this sweep point's.
        let log_offset = session_log.len();
        for mutation in &outcome.log {
            match *mutation {
                loadgen::Mutation::Insert { id, .. } => live.push(id),
                loadgen::Mutation::Delete { id } => {
                    if let Some(pos) = live.iter().position(|&l| l == id) {
                        live.swap_remove(pos);
                    }
                }
            }
        }
        session_log.extend(outcome.log.iter().copied());

        let mut recall_total = 0.0;
        for sample in &outcome.samples {
            let neighbors = base.neighbors(sample.query_index);
            let truth = loadgen::oracle::truth_at_version(
                &loadgen::RecallSample { version: log_offset + sample.version, ..sample.clone() },
                &neighbors,
                &queries[sample.query_index],
                insert_rows,
                &session_log,
                &|q, row| kind.divergence(row, q),
                K,
            );
            recall_total += loadgen::oracle::sample_recall(sample, &truth);
        }
        let recall_samples = outcome.samples.len();
        let recall_mean =
            if recall_samples == 0 { 1.0 } else { recall_total / recall_samples as f64 };

        reports.push(build_report(
            label,
            points,
            dim,
            target_qps,
            dispatch_threads,
            &outcome,
            io_delta,
            compactions_after.saturating_sub(compactions_before),
            compaction_nanos_after.saturating_sub(compaction_nanos_before) as f64 / 1e6,
            recall_mean,
            recall_samples,
        ));
    }
    reports
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    label: &str,
    points: usize,
    dim: usize,
    target_qps: f64,
    dispatch_threads: usize,
    outcome: &RunOutcome,
    io: pagestore::IoStats,
    compactions: u64,
    compaction_ms: f64,
    recall_mean: f64,
    recall_samples: usize,
) -> ServingReport {
    let mut latencies: Vec<u64> = outcome.records.iter().map(|r| r.latency_ns).collect();
    latencies.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1] as f64 / 1e6
    };
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e6
    };
    let count_kind = |kind: OpKind| outcome.records.iter().filter(|r| r.kind == kind).count();
    let queries = count_kind(OpKind::Query);
    let availability = if queries == 0 {
        1.0
    } else {
        1.0 - (outcome.availability.degraded_queries as f64 / queries as f64).min(1.0)
    };
    ServingReport {
        backend: label.to_string(),
        points,
        dim,
        k: K,
        target_qps,
        achieved_qps: outcome.achieved_qps(),
        dispatch_threads,
        ops: outcome.records.len(),
        queries,
        inserts: count_kind(OpKind::Insert),
        deletes: count_kind(OpKind::Delete),
        wall_seconds: outcome.wall_ns as f64 / 1e9,
        latency_mean_ms: mean_ms,
        latency_p50_ms: pct(0.50),
        latency_p95_ms: pct(0.95),
        latency_p99_ms: pct(0.99),
        latency_p999_ms: pct(0.999),
        latency_max_ms: latencies.last().copied().unwrap_or(0) as f64 / 1e6,
        io_pages_read: io.pages_read,
        io_cache_hits: io.cache_hits,
        io_pages_written: io.pages_written,
        compactions,
        compaction_ms,
        recall_mean,
        recall_samples,
        degraded_queries: outcome.availability.degraded_queries,
        shard_retries: outcome.availability.shard_retries,
        breaker_opens: outcome.availability.breaker_opens,
        availability,
    }
}

/// Run the serving experiment, returning the markdown table.
pub fn run(bench: &Workbench) -> Vec<Table> {
    run_with_json(bench).0
}

/// Run the serving experiment: the QPS sweep over BP/ABP/BBT/VAF plus one
/// 4-shard capacity tier, returning the markdown table and the stable
/// JSON rows for `BENCH_serving.json`.
pub fn run_with_json(bench: &Workbench) -> (Vec<Table>, String) {
    let kind = DivergenceKind::ItakuraSaito;
    let n =
        env_size("BREPARTITION_SERVING_POINTS").unwrap_or_else(|| bench.scale.max_points.max(600));
    let dim = 32.min(bench.scale.max_dim);
    let ops_per_point = env_size("BREPARTITION_SERVING_OPS")
        .unwrap_or_else(|| (bench.scale.queries * 32).clamp(200, 1000));
    let dispatch_threads = env_size("BREPARTITION_SERVING_THREADS").unwrap_or(1);
    let sweep = qps_sweep();

    // Stream the base dataset into the one flat buffer the builders will
    // consume — the generator never holds a second full copy.
    let spec = HierarchicalSpec {
        n,
        dim,
        clusters: (n / 100).clamp(8, 32),
        blocks: (dim / 4).max(2),
        ..Default::default()
    };
    let mut stream = spec.stream();
    let mut flat = Vec::with_capacity(n * dim);
    while stream.fill_block(64 * 1024, &mut flat) > 0 {}
    let dataset = DenseDataset::from_flat(dim, flat).expect("streamed dataset");

    let workload = QueryWorkload::perturbed_from(&dataset, kind, QUERY_POOL, 0.02, 0x7C);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();

    // Insert pool: enough rows for the largest possible insert count (one
    // whole sweep of ops), drawn from the same distribution under a
    // different seed, streamed in blocks.
    let insert_pool_spec =
        HierarchicalSpec { n: ops_per_point * sweep.len().max(1), seed: spec.seed ^ 0xA5, ..spec };
    let mut insert_rows: Vec<Vec<f64>> = Vec::with_capacity(insert_pool_spec.n);
    let mut insert_stream = insert_pool_spec.stream();
    while let Some(block) = insert_stream.next_block(8 * 1024) {
        insert_rows.extend((0..block.len()).map(|i| block.row(i).to_vec()));
    }

    // Base-oracle depth: k + every delete the whole session could apply.
    let total_deletes: usize = (0..sweep.len())
        .map(|i| {
            delete_count(&operation_stream(
                SEED.wrapping_add(i as u64),
                MIX,
                ops_per_point,
                queries.len(),
            ))
        })
        .sum();
    let mut base = BaseOracle {
        dataset: &dataset,
        queries: &queries,
        kind,
        depth: K + total_deletes,
        cache: HashMap::new(),
    };

    let registry = Registry::new();
    let mut table = Table::new(
        format!(
            "Open-loop serving — hierarchical ISD, n={n}, d={dim}, {ops_per_point} ops/point, \
             mix {}:{}:{}, k={K}",
            MIX.query, MIX.insert, MIX.delete
        ),
        &[
            "method",
            "target QPS",
            "achieved QPS",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "recall",
            "IO reads",
            "compactions",
            "avail",
        ],
    );
    let mut jsons: Vec<String> = Vec::new();
    let mut collect = |table: &mut Table, reports: Vec<ServingReport>| {
        for report in reports {
            table.row(vec![
                report.backend.clone(),
                fmt_f64(report.target_qps),
                fmt_f64(report.achieved_qps),
                fmt_f64(report.latency_p50_ms),
                fmt_f64(report.latency_p99_ms),
                fmt_f64(report.latency_p999_ms),
                fmt_f64(report.recall_mean),
                report.io_pages_read.to_string(),
                report.compactions.to_string(),
                fmt_f64(report.availability),
            ]);
            jsons.push(report.to_json());
        }
    };

    for &method in Method::ALL.iter() {
        let spec = IndexSpec::new(method, kind)
            .with_partitions(bench.paper_m(dim))
            .with_page_size(PAGE_SIZE)
            .with_leaf_capacity(32)
            .with_probability(0.9);
        let index = Index::build(&spec, &dataset).expect("index build");
        let label = index.backend().name().to_string();
        let io = Arc::new(AtomicIoStats::new());
        io.bind(&registry, &format!("serving.{}.io", method.short_name()));
        let reports = serve_sessions(
            &label,
            IndexTarget { index, io: Arc::clone(&io) },
            &io,
            &sweep,
            ops_per_point,
            &queries,
            &insert_rows,
            &mut base,
            n,
            dim,
            dispatch_threads,
            |t, schedule, ops, config| {
                run_open_loop(t, &queries, &insert_rows, schedule, ops, config)
            },
        );
        collect(&mut table, reports);

        if method == Method::BrePartition {
            // One background-compaction row-set: the same BP spec with the
            // compactor enabled on an aggressive trigger, driven through
            // the *concurrent* harness with at least two dispatchers —
            // mutations land while queries are in flight, and epoch swaps
            // happen mid-stream. The compaction columns report how many
            // rebuilds the worker completed and how long they took;
            // writers never blocked readers for any of it. The trigger
            // ratio is sized so the mutation stream's handful of inserts
            // (a few per mille of the base) actually crosses it — a
            // production ratio would never fold inside one sweep point.
            let bgc_spec =
                spec.with_background_compaction(true).with_compaction_ratios(0.002, 0.002);
            let index = Index::build(&bgc_spec, &dataset).expect("index build");
            let bgc_label = format!("{label}+bgc");
            let bgc_io = Arc::new(AtomicIoStats::new());
            bgc_io.bind(&registry, "serving.bgc.io");
            index.bind_telemetry(&registry, "serving.bgc");
            let reports = serve_sessions(
                &bgc_label,
                IndexTarget { index, io: Arc::clone(&bgc_io) },
                &bgc_io,
                &sweep,
                ops_per_point,
                &queries,
                &insert_rows,
                &mut base,
                n,
                dim,
                dispatch_threads.max(2),
                |t, schedule, ops, config| {
                    run_open_loop_concurrent(t, &queries, &insert_rows, schedule, ops, config)
                },
            );
            collect(&mut table, reports);

            // One sharded row-set: the BP spec scattered over a 4-shard
            // capacity tier.
            let sharded =
                ShardedIndex::build(&ShardSpec::capacity(spec, SHARDS), &dataset).expect("sharded");
            let label = format!("{label}x{SHARDS}:capacity");
            let io = Arc::new(AtomicIoStats::new());
            io.bind(&registry, "serving.sharded.io");
            let reports = serve_sessions(
                &label,
                ShardedTarget {
                    index: sharded,
                    io: Arc::clone(&io),
                    policy: FanoutPolicy::default(),
                },
                &io,
                &sweep,
                ops_per_point,
                &queries,
                &insert_rows,
                &mut base,
                n,
                dim,
                dispatch_threads,
                |t, schedule, ops, config| {
                    run_open_loop(t, &queries, &insert_rows, schedule, ops, config)
                },
            );
            collect(&mut table, reports);
        }
    }
    (vec![table], format!("[\n{}\n]\n", jsons.join(",\n")))
}

/// The per-row JSON key sequence, for schema-drift detection: extract the
/// keys of each object in a `BENCH_serving.json`-shaped array.
pub fn json_row_schemas(json: &str) -> Vec<Vec<String>> {
    json.split('{')
        .skip(1)
        .map(|object| {
            let object = object.split('}').next().unwrap_or("");
            // Quoted tokens sit at odd split positions; a token is a key
            // exactly when the unquoted text after it starts with ':'.
            let tokens: Vec<&str> = object.split('"').collect();
            let mut keys = Vec::new();
            let mut i = 1;
            while i < tokens.len() {
                if tokens.get(i + 1).is_some_and(|next| next.starts_with(':')) {
                    keys.push(tokens[i].to_string());
                }
                i += 2;
            }
            keys
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_env() -> (Workbench, Vec<(&'static str, String)>) {
        // Pin every knob so the test is independent of ambient env vars.
        let saved: Vec<(&'static str, String)> = [
            "BREPARTITION_SERVING_POINTS",
            "BREPARTITION_SERVING_OPS",
            "BREPARTITION_SERVING_QPS",
            "BREPARTITION_SERVING_THREADS",
        ]
        .iter()
        .filter_map(|&var| std::env::var(var).ok().map(|v| (var, v)))
        .collect();
        std::env::set_var("BREPARTITION_SERVING_POINTS", "500");
        std::env::set_var("BREPARTITION_SERVING_OPS", "120");
        std::env::set_var("BREPARTITION_SERVING_QPS", "2000,8000");
        std::env::set_var("BREPARTITION_SERVING_THREADS", "1");
        (Workbench::new(Scale::tiny()), saved)
    }

    fn restore_env(saved: Vec<(&'static str, String)>) {
        for var in [
            "BREPARTITION_SERVING_POINTS",
            "BREPARTITION_SERVING_OPS",
            "BREPARTITION_SERVING_QPS",
            "BREPARTITION_SERVING_THREADS",
        ] {
            std::env::remove_var(var);
        }
        for (var, value) in saved {
            std::env::set_var(var, value);
        }
    }

    #[test]
    fn serving_rows_cover_all_backends_and_sweep_points() {
        let (bench, saved) = tiny_env();
        let (tables, json) = run_with_json(&bench);
        restore_env(saved);
        assert_eq!(tables.len(), 1);
        // (4 methods + 1 background-compaction + 1 sharded) × 2 sweep
        // points.
        assert_eq!(tables[0].len(), 12);
        assert_eq!(json.matches("\"backend\":").count(), 12);
        assert_eq!(json.matches("\"recall_mean\":").count(), 12);
        assert_eq!(json.matches(":capacity\"").count(), 2, "two sharded rows");
        assert_eq!(json.matches("+bgc\"").count(), 2, "two background-compaction rows");
        assert_eq!(json.matches("\"compactions\":").count(), 12);
        assert_eq!(json.matches("\"compaction_ms\":").count(), 12);

        // No chaos is armed, so every row (sharded included) must report
        // full availability and zero fault-tolerance activity.
        assert_eq!(json.matches("\"availability\":1.0").count(), 12);
        assert_eq!(json.matches("\"degraded_queries\":0").count(), 12);
        assert_eq!(json.matches("\"shard_retries\":0").count(), 12);
        assert_eq!(json.matches("\"breaker_opens\":0").count(), 12);

        // Every row carries the same key schema, in the same order.
        let schemas = json_row_schemas(&json);
        assert_eq!(schemas.len(), 12);
        for schema in &schemas[1..] {
            assert_eq!(schema, &schemas[0]);
        }

        // Exact methods must track the oracle almost perfectly even under
        // mutation; the approximate row may dip but not collapse.
        for object in json.split("\"backend\":").skip(1) {
            let label = object.split('"').nth(1).unwrap_or("");
            let recall: f64 = object
                .split("\"recall_mean\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| panic!("row {label} has no recall_mean"));
            let floor = if label.starts_with("ABP") { 0.5 } else { 0.9 };
            assert!(recall >= floor, "row {label} recall {recall} below {floor}");
            let samples: usize = object
                .split("\"recall_samples\":")
                .nth(1)
                .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
                .and_then(|raw| raw.parse().ok())
                .unwrap_or(0);
            assert!(samples > 0, "row {label} sampled no queries");
        }
    }

    #[test]
    fn row_schema_extraction_sees_drift() {
        let a = "[\n{\"backend\":\"BP\",\"qps\":1.0},\n{\"backend\":\"VAF\",\"qps\":2.0}\n]";
        let b = "[\n{\"backend\":\"BP\",\"p99\":1.0}\n]";
        let sa = json_row_schemas(a);
        let sb = json_row_schemas(b);
        assert_eq!(sa.len(), 2);
        assert_eq!(sa[0], vec!["backend".to_string(), "qps".to_string()]);
        assert_ne!(sa[0], sb[0]);
    }
}
