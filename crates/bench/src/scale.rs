//! Experiment scale control.

/// How large the generated proxy workloads are.
///
/// The paper's real datasets range from 54 K to 11 M points; this
/// reproduction defaults to a few thousand points so the complete
/// evaluation runs in minutes. The environment variable
/// `BREPARTITION_SCALE` selects a preset: `quick` (default), `paper`
/// (larger, tens of thousands of points) or `tiny` (CI smoke test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of points of the largest dataset (the SIFT proxy); other
    /// datasets are scaled proportionally with a floor.
    pub max_points: usize,
    /// Queries per workload (the paper uses 50).
    pub queries: usize,
    /// Dimensionality cap applied to the proxies (the paper's full
    /// dimensionalities are kept under `paper` scale).
    pub max_dim: usize,
}

impl Scale {
    /// The default laptop-friendly scale.
    pub fn quick() -> Scale {
        Scale { max_points: 4_000, queries: 10, max_dim: 96 }
    }

    /// A larger scale closer to the paper's setting (minutes to hours).
    pub fn paper() -> Scale {
        Scale { max_points: 40_000, queries: 50, max_dim: 400 }
    }

    /// A smoke-test scale for CI.
    pub fn tiny() -> Scale {
        Scale { max_points: 600, queries: 4, max_dim: 32 }
    }

    /// Read the scale from `BREPARTITION_SCALE` (`quick`, `paper`, `tiny`),
    /// defaulting to [`Scale::quick`].
    pub fn from_env() -> Scale {
        match std::env::var("BREPARTITION_SCALE").ok().as_deref() {
            Some("paper") | Some("full") => Scale::paper(),
            Some("tiny") | Some("ci") => Scale::tiny(),
            _ => Scale::quick(),
        }
    }

    /// Clamp a requested dimensionality to this scale.
    pub fn dim(&self, requested: usize) -> usize {
        requested.min(self.max_dim)
    }

    /// Clamp a requested point count to this scale. The floor of a quarter
    /// of `max_points` keeps the scaled datasets large enough for the
    /// paper's k values (up to 100) to remain meaningful.
    pub fn points(&self, requested: usize) -> usize {
        requested.min(self.max_points).max(self.max_points / 4).max(200)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Scale::tiny().max_points < Scale::quick().max_points);
        assert!(Scale::quick().max_points < Scale::paper().max_points);
    }

    #[test]
    fn clamps_respect_limits() {
        let s = Scale::quick();
        assert_eq!(s.dim(400), 96);
        assert_eq!(s.dim(32), 32);
        assert_eq!(s.points(1_000_000), 4_000);
        assert_eq!(s.points(10), 1_000);
        assert_eq!(Scale::tiny().points(10), 200);
    }

    #[test]
    fn default_is_quick() {
        assert_eq!(Scale::default(), Scale::quick());
    }
}
