//! `cargo bench` target regenerating the "kernels" experiment.
//!
//! Runs at the `tiny` scale by default so the whole bench suite finishes
//! quickly; set `BREPARTITION_SCALE=quick` or `paper` for larger runs.

use brepartition_bench::experiments::kernels;
use brepartition_bench::{Scale, Workbench};

fn main() {
    let scale =
        if std::env::var("BREPARTITION_SCALE").is_ok() { Scale::from_env() } else { Scale::tiny() };
    let bench = Workbench::new(scale);
    for table in kernels::run(&bench) {
        print!("{table}");
    }
}
