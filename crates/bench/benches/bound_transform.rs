//! Criterion micro-benchmarks for the BrePartition transform and bound
//! determination (the per-query cost the optimal-M model reasons about).

use bregman::DivergenceKind;
use brepartition_core::partition::equal::equal_contiguous;
use brepartition_core::{QueryBounds, TransformedDataset, TransformedQuery};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::HierarchicalSpec;

fn bench_transforms(c: &mut Criterion) {
    let data =
        HierarchicalSpec { n: 2_000, dim: 96, clusters: 20, blocks: 12, ..Default::default() }
            .generate();
    let kind = DivergenceKind::ItakuraSaito;
    let mut group = c.benchmark_group("bound_pipeline");
    for m in [4usize, 12, 24, 48] {
        let partitioning = equal_contiguous(96, m).unwrap();
        let transformed = TransformedDataset::build(kind, &data, &partitioning);
        let query = data.row(5).to_vec();
        group.bench_with_input(BenchmarkId::new("query_transform", m), &m, |b, _| {
            b.iter(|| black_box(TransformedQuery::build(kind, black_box(&query), &partitioning)))
        });
        let tq = TransformedQuery::build(kind, &query, &partitioning);
        group.bench_with_input(BenchmarkId::new("qb_determine_k20", m), &m, |b, _| {
            b.iter(|| black_box(QueryBounds::determine(&transformed, &tq, 20)))
        });
    }
    group.finish();
}

fn bench_dataset_transform(c: &mut Criterion) {
    let data =
        HierarchicalSpec { n: 1_000, dim: 64, clusters: 16, blocks: 8, ..Default::default() }
            .generate();
    let partitioning = equal_contiguous(64, 8).unwrap();
    c.bench_function("ptransform_1000x64_m8", |b| {
        b.iter(|| {
            black_box(TransformedDataset::build(
                DivergenceKind::ItakuraSaito,
                black_box(&data),
                &partitioning,
            ))
        })
    });
}

criterion_group!(benches, bench_transforms, bench_dataset_transform);
criterion_main!(benches);
