//! Criterion micro-benchmarks for the VA-file baseline: quantization, bound
//! tables and the filter phase.

use bregman::ItakuraSaito;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::HierarchicalSpec;
use pagestore::BufferPool;
use vafile::{QuantizerConfig, QueryBoundTable, VaFile, VaFileConfig};

fn bench_vafile(c: &mut Criterion) {
    let data =
        HierarchicalSpec { n: 4_000, dim: 64, clusters: 32, blocks: 8, ..Default::default() }
            .generate();
    let config =
        VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 6 }, page_size_bytes: 16 * 1024 };
    let index = VaFile::build(ItakuraSaito, &data, config);
    let query = data.row(7).to_vec();

    let mut group = c.benchmark_group("vafile");
    group.sample_size(20);
    group.bench_function("build_4000x64", |b| {
        b.iter(|| black_box(VaFile::build(ItakuraSaito, black_box(&data), config)))
    });
    group.bench_function("bound_table_64d", |b| {
        b.iter(|| {
            black_box(QueryBoundTable::build(&ItakuraSaito, index.quantizer(), black_box(&query)))
        })
    });
    for k in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("knn", k), &k, |b, &k| {
            b.iter(|| {
                let mut pool = BufferPool::unbuffered();
                black_box(index.knn(&mut pool, black_box(&query), k))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vafile);
criterion_main!(benches);
