//! Criterion micro-benchmarks for the Bregman divergence kernels.

use bregman::{DecomposableBregman, Divergence, Exponential, ItakuraSaito, SquaredEuclidean};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::synthetic::uniform;

fn bench_divergences(c: &mut Criterion) {
    let mut group = c.benchmark_group("divergence");
    for dim in [32usize, 128, 400] {
        let data = uniform(2, dim, 0.5, 10.0, 7);
        let x = data.row(0).to_vec();
        let y = data.row(1).to_vec();
        group.bench_with_input(BenchmarkId::new("squared_euclidean", dim), &dim, |b, _| {
            b.iter(|| black_box(SquaredEuclidean.divergence(black_box(&x), black_box(&y))))
        });
        group.bench_with_input(BenchmarkId::new("itakura_saito", dim), &dim, |b, _| {
            b.iter(|| black_box(ItakuraSaito.divergence(black_box(&x), black_box(&y))))
        });
        group.bench_with_input(BenchmarkId::new("exponential", dim), &dim, |b, _| {
            b.iter(|| black_box(Exponential.divergence(black_box(&x), black_box(&y))))
        });
    }
    group.finish();
}

fn bench_gradients_and_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform_components");
    let data = uniform(1, 256, 0.5, 10.0, 11);
    let x = data.row(0).to_vec();
    group.bench_function("point_components_256d_isd", |b| {
        b.iter(|| black_box(ItakuraSaito.point_components(black_box(&x))))
    });
    group.bench_function("query_components_256d_isd", |b| {
        b.iter(|| black_box(ItakuraSaito.query_components(black_box(&x))))
    });
    group.bench_function("gradient_256d_exponential", |b| {
        b.iter(|| black_box(Exponential.gradient(black_box(&x))))
    });
    group.finish();
}

criterion_group!(benches, bench_divergences, bench_gradients_and_components);
criterion_main!(benches);
