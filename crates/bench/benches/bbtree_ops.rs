//! Criterion micro-benchmarks for BB-tree construction, kNN and range
//! search.

use bbtree::{BBTreeBuilder, BBTreeConfig, SearchStats};
use bregman::ItakuraSaito;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::HierarchicalSpec;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bbtree_build");
    group.sample_size(10);
    for dim in [8usize, 32] {
        let data =
            HierarchicalSpec { n: 2_000, dim, clusters: 20, blocks: 4, ..Default::default() }
                .generate();
        group.bench_with_input(BenchmarkId::new("build_2000", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(
                    BBTreeBuilder::new(ItakuraSaito, BBTreeConfig::with_leaf_capacity(32))
                        .build(black_box(&data)),
                )
            })
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let data =
        HierarchicalSpec { n: 4_000, dim: 16, clusters: 32, blocks: 4, ..Default::default() }
            .generate();
    let tree = BBTreeBuilder::new(ItakuraSaito, BBTreeConfig::with_leaf_capacity(32)).build(&data);
    let query = data.row(99).to_vec();
    let mut group = c.benchmark_group("bbtree_search");
    group.bench_function("knn_k20", |b| {
        b.iter(|| {
            let mut stats = SearchStats::new();
            black_box(tree.knn(&ItakuraSaito, &data, black_box(&query), 20, &mut stats))
        })
    });
    group.bench_function("range_candidates", |b| {
        b.iter(|| {
            let mut stats = SearchStats::new();
            black_box(tree.range_candidates(&ItakuraSaito, black_box(&query), 0.5, &mut stats))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_search);
criterion_main!(benches);
