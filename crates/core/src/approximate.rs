//! The approximate kNN extension with a probability guarantee (Section 8).
//!
//! The exact per-query searching bound has the shape `κ + µ`, where `κ`
//! collects the transform components that do not involve the Cauchy
//! relaxation and `µ = sqrt(Σ x² · Σ φ'(y)²)` is the relaxed term. The
//! relaxation replaces the true cross term `β_xy = −Σ x_j φ'(y_j)` by its
//! Cauchy–Schwarz majorant `µ`, so shrinking `µ` by a coefficient
//! `c ∈ (0, 1]` trades exactness for a smaller candidate set. Proposition 1
//! gives the coefficient that preserves the result with probability `p` when
//! the distribution of `β_xy` is known:
//!
//! ```text
//! c = Ψ⁻¹( p·Ψ(µ) + (1 − p)·Ψ(−κ) ) / µ
//! ```
//!
//! where `Ψ` is the CDF of `β_xy`. Following the paper's footnote (fit a
//! known distribution to the per-dimension histograms), `β_xy` is modelled
//! as a Normal whose mean and variance follow from the per-dimension means
//! and variances of the data:
//! `E[β_xy] = −Σ_j E[x_j]·φ'(y_j)` and
//! `Var[β_xy] = Σ_j Var[x_j]·φ'(y_j)²` (independence across dimensions).

use bregman::PointId;
use pagestore::BufferPool;
use std::time::Instant;

use crate::bound::QueryBounds;
use crate::error::{CoreError, Result};
use crate::search::{BrePartitionIndex, QueryResult};
use crate::transform::TransformedQuery;

/// Parameters of the approximate search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproximateConfig {
    /// Probability guarantee `p ∈ (0, 1]`: the returned points are the exact
    /// kNN with (modelled) probability at least `p`.
    pub probability: f64,
}

impl Default for ApproximateConfig {
    fn default() -> Self {
        Self { probability: 0.9 }
    }
}

impl ApproximateConfig {
    /// A configuration with the given probability guarantee.
    pub fn with_probability(probability: f64) -> Self {
        Self { probability }
    }
}

/// A univariate Normal distribution with the CDF and quantile function needed
/// by Proposition 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalDistribution {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (non-negative).
    pub std_dev: f64,
}

impl NormalDistribution {
    /// A Normal with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> NormalDistribution {
        NormalDistribution { mean, std_dev: std_dev.max(0.0) }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Quantile (inverse CDF), computed by bisection over ±12σ — monotone,
    /// robust and precise far beyond what the coefficient needs.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if self.std_dev == 0.0 {
            return self.mean;
        }
        if p <= 0.0 {
            return self.mean - 12.0 * self.std_dev;
        }
        if p >= 1.0 {
            return self.mean + 12.0 * self.std_dev;
        }
        let mut lo = self.mean - 12.0 * self.std_dev;
        let mut hi = self.mean + 12.0 * self.std_dev;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max absolute
/// error ≈ 1.5e-7, ample for the coefficient computation).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

impl BrePartitionIndex {
    /// Approximate kNN search with probability guarantee
    /// `config.probability` (the paper's **ABP**). Uses a fresh,
    /// configuration-sized buffer pool.
    pub fn knn_approximate(
        &self,
        query: &[f64],
        k: usize,
        config: &ApproximateConfig,
    ) -> Result<QueryResult> {
        let mut pool = self.new_buffer_pool();
        self.knn_approximate_with_pool(&mut pool, query, k, config)
    }

    /// Approximate kNN search reusing a caller-supplied buffer pool.
    pub fn knn_approximate_with_pool(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        k: usize,
        config: &ApproximateConfig,
    ) -> Result<QueryResult> {
        let mut kernel = bregman::kernel::KernelScratch::default();
        self.knn_approximate_with_scratch(pool, &mut kernel, query, k, config)
    }

    /// Approximate kNN search reusing a caller-supplied buffer pool *and*
    /// [`KernelScratch`](bregman::kernel::KernelScratch) (the batch-serving
    /// hot path).
    pub fn knn_approximate_with_scratch(
        &self,
        pool: &mut BufferPool,
        kernel: &mut bregman::kernel::KernelScratch,
        query: &[f64],
        k: usize,
        config: &ApproximateConfig,
    ) -> Result<QueryResult> {
        if !(config.probability > 0.0 && config.probability <= 1.0) {
            return Err(CoreError::InvalidProbability(config.probability));
        }
        self.validate_query(query)?;
        let bound_started = Instant::now();
        let transformed_query = TransformedQuery::build(self.kind(), query, self.partitioning());
        let Some(bounds) = QueryBounds::determine(self.transformed(), &transformed_query, k) else {
            return Ok(QueryResult {
                neighbors: Vec::new(),
                stats: crate::stats::QueryStats::default(),
                bounds: QueryBounds { pivot_point: 0, per_subspace: Vec::new(), total: 0.0 },
                coefficient: Some(1.0),
            });
        };

        // Full-space κ and µ of the pivot point t.
        let pivot = bounds.pivot_point;
        let (alpha_y, beta_yy, delta_y) = transformed_query.totals();
        let kappa = self.transformed().total_alpha(pivot) + alpha_y + beta_yy;
        let mu = (self.transformed().total_gamma(pivot) * delta_y).max(0.0).sqrt();

        // Model β_xy = −Σ_j x_j φ'(y_j) as a Normal from per-dimension
        // moments.
        let coefficient = self.shrink_coefficient(query, kappa, mu, config.probability);

        // Shrink only the Cauchy term of every subspace radius:
        // radius_j = κ_j(t) + c·µ_j(t).
        let radii: Vec<f64> = (0..self.partitions())
            .map(|s| {
                let (alpha_x, gamma_x) = self.transformed().components(pivot, s);
                let (a_y, b_yy, d_y) = transformed_query.components(s);
                let kappa_j = alpha_x + a_y + b_yy;
                let mu_j = (gamma_x * d_y).max(0.0).sqrt();
                kappa_j + coefficient * mu_j
            })
            .collect();
        let bound_seconds = bound_started.elapsed().as_secs_f64();

        let (neighbors, mut stats) = self.filter_and_refine(pool, kernel, query, k, &radii)?;
        stats.bound_seconds = bound_seconds;
        let approx_bounds = QueryBounds {
            pivot_point: pivot,
            per_subspace: radii,
            total: kappa + coefficient * mu,
        };
        Ok(QueryResult { neighbors, stats, bounds: approx_bounds, coefficient: Some(coefficient) })
    }

    /// Proposition 1: the shrink coefficient for the given query, exact
    /// bound decomposition `κ + µ` and probability guarantee `p`.
    pub fn shrink_coefficient(&self, query: &[f64], kappa: f64, mu: f64, p: f64) -> f64 {
        if mu <= 0.0 || !mu.is_finite() {
            return 1.0;
        }
        // p = 1 demands exactness. Mathematically c = Ψ⁻¹(Ψ(µ))/µ = 1, but
        // round-tripping through the erf approximation and the quantile
        // bisection can leave c one ulp shy of 1, shrinking a radius below
        // the exact search bound and (rarely) dropping a boundary point —
        // typically the pivot, whose own bound sits exactly on the radius.
        // Returning 1.0 here keeps the approximate path bit-identical to
        // the exact search at p = 1, which the oracle harness relies on.
        if p >= 1.0 {
            return 1.0;
        }
        let distribution = self.beta_xy_distribution(query);
        let target = p * distribution.cdf(mu) + (1.0 - p) * distribution.cdf(-kappa);
        let c = distribution.quantile(target) / mu;
        if !c.is_finite() {
            return 1.0;
        }
        c.clamp(0.0, 1.0)
    }

    /// The modelled distribution of `β_xy = −Σ_j x_j φ'(y_j)` over data
    /// points `x`, for a fixed query `y`.
    pub fn beta_xy_distribution(&self, query: &[f64]) -> NormalDistribution {
        let (_, grad) = {
            // φ'(y_j) per dimension, computed through the divergence kind.
            let mut grad = Vec::with_capacity(query.len());
            for &y in query {
                // query_components on a single value gives (−φ(y), yφ'(y), φ'(y)²);
                // recover φ'(y) from the last component's square root with the
                // sign of yφ'(y)/y when y ≠ 0.
                let (_, beta_yy, delta) = self.kind().query_components(&[y]);
                let magnitude = delta.max(0.0).sqrt();
                let sign = if y != 0.0 { (beta_yy / y).signum() } else { 1.0 };
                grad.push(sign * magnitude);
            }
            ((), grad)
        };
        let mut mean = 0.0;
        let mut var = 0.0;
        for (j, &g) in grad.iter().enumerate() {
            mean -= self.dimension_means()[j] * g;
            var += self.dimension_variances()[j] * g * g;
        }
        NormalDistribution::new(mean, var.max(0.0).sqrt())
    }

    /// Convenience: the union candidate count the exact search would examine
    /// for this query, used by experiments comparing exact vs approximate
    /// candidate sizes without running the refinement twice.
    pub fn exact_candidate_count(&self, query: &[f64], k: usize) -> Result<usize> {
        let result = self.knn(query, k)?;
        Ok(result.stats.candidates)
    }
}

/// The neighbours of an approximate result restricted to ids (helper for
/// accuracy evaluation).
pub fn neighbor_ids(neighbors: &[(PointId, f64)]) -> Vec<PointId> {
    neighbors.iter().map(|(id, _)| *id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BrePartitionConfig;
    use bregman::{DenseDataset, DivergenceKind};
    use datagen::correlated::CorrelatedSpec;
    use datagen::ground_truth::single_query_knn;
    use datagen::metrics::{overall_ratio, recall};

    fn dataset(n: usize, dim: usize, seed: u64) -> DenseDataset {
        CorrelatedSpec {
            n,
            dim,
            blocks: (dim / 4).max(1),
            correlation: 0.7,
            mean: 5.0,
            scale: 1.0,
            seed,
        }
        .generate()
    }

    fn index(ds: &DenseDataset) -> BrePartitionIndex {
        let cfg = BrePartitionConfig::default()
            .with_partitions(4)
            .with_leaf_capacity(16)
            .with_page_size(4096);
        BrePartitionIndex::build(DivergenceKind::ItakuraSaito, ds, &cfg).unwrap()
    }

    #[test]
    fn normal_distribution_cdf_and_quantile_are_consistent() {
        let n = NormalDistribution::new(2.0, 3.0);
        assert!((n.cdf(2.0) - 0.5).abs() < 1e-6);
        assert!(n.cdf(-10.0) < 0.001);
        assert!(n.cdf(14.0) > 0.999);
        for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let q = n.quantile(p);
            assert!((n.cdf(q) - p).abs() < 1e-6, "p={p}");
        }
        // Degenerate σ = 0.
        let point = NormalDistribution::new(1.0, 0.0);
        assert_eq!(point.cdf(0.5), 0.0);
        assert_eq!(point.cdf(1.5), 1.0);
        assert_eq!(point.quantile(0.3), 1.0);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn coefficient_is_in_unit_interval_and_monotone_in_p() {
        let ds = dataset(400, 16, 1);
        let idx = index(&ds);
        let query = ds.row(9).to_vec();
        let result = idx.knn(&query, 10).unwrap();
        let kappa = result.bounds.total; // not exactly κ, but gives a scale
        let mu = result.bounds.total.max(1.0);
        let c_low = idx.shrink_coefficient(&query, kappa, mu, 0.5);
        let c_high = idx.shrink_coefficient(&query, kappa, mu, 0.99);
        assert!((0.0..=1.0).contains(&c_low));
        assert!((0.0..=1.0).contains(&c_high));
        assert!(c_high >= c_low - 1e-9, "higher p must not shrink more ({c_high} < {c_low})");
    }

    #[test]
    fn approximate_results_have_reasonable_accuracy() {
        let ds = dataset(800, 24, 2);
        let idx = index(&ds);
        let config = ApproximateConfig::with_probability(0.9);
        let mut ratios = Vec::new();
        let mut recalls = Vec::new();
        for qi in [3usize, 77, 200, 431, 650] {
            let query = ds.row(qi).to_vec();
            let approx = idx.knn_approximate(&query, 10, &config).unwrap();
            let exact = single_query_knn(DivergenceKind::ItakuraSaito, &ds, &query, 10);
            assert_eq!(approx.neighbors.len(), 10);
            assert!(approx.coefficient.unwrap() <= 1.0);
            ratios.push(overall_ratio(&approx.neighbors, &exact));
            recalls.push(recall(&approx.neighbors, &exact));
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let mean_recall = recalls.iter().sum::<f64>() / recalls.len() as f64;
        assert!(mean_ratio < 1.5, "overall ratio too large: {mean_ratio}");
        assert!(mean_recall > 0.5, "recall too low: {mean_recall}");
    }

    #[test]
    fn approximate_candidates_never_exceed_exact_candidates() {
        let ds = dataset(900, 20, 3);
        let idx = index(&ds);
        let config = ApproximateConfig::with_probability(0.7);
        for qi in [10usize, 300, 500] {
            let query = ds.row(qi).to_vec();
            let exact = idx.knn(&query, 20).unwrap();
            let approx = idx.knn_approximate(&query, 20, &config).unwrap();
            assert!(
                approx.stats.candidates <= exact.stats.candidates,
                "approximate search should not enlarge the candidate set ({} > {})",
                approx.stats.candidates,
                exact.stats.candidates
            );
        }
    }

    #[test]
    fn higher_probability_means_no_fewer_candidates() {
        let ds = dataset(700, 16, 4);
        let idx = index(&ds);
        let query = ds.row(123).to_vec();
        let low =
            idx.knn_approximate(&query, 10, &ApproximateConfig::with_probability(0.6)).unwrap();
        let high =
            idx.knn_approximate(&query, 10, &ApproximateConfig::with_probability(0.95)).unwrap();
        assert!(high.stats.candidates >= low.stats.candidates);
        assert!(high.coefficient.unwrap() >= low.coefficient.unwrap() - 1e-9);
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let ds = dataset(100, 8, 5);
        let idx = BrePartitionIndex::build(
            DivergenceKind::ItakuraSaito,
            &ds,
            &BrePartitionConfig::default().with_partitions(2).with_leaf_capacity(8),
        )
        .unwrap();
        let query = ds.row(0).to_vec();
        for p in [0.0, -0.5, 1.5] {
            assert!(matches!(
                idx.knn_approximate(&query, 3, &ApproximateConfig::with_probability(p)),
                Err(CoreError::InvalidProbability(_))
            ));
        }
    }

    #[test]
    fn neighbor_ids_helper() {
        let pairs = vec![(PointId(3), 0.1), (PointId(9), 0.5)];
        assert_eq!(neighbor_ids(&pairs), vec![PointId(3), PointId(9)]);
    }

    #[test]
    fn beta_xy_distribution_matches_empirical_moments() {
        let ds = dataset(2000, 12, 6);
        let idx = index(&ds);
        let query = ds.row(31).to_vec();
        let model = idx.beta_xy_distribution(&query);
        // Empirical β_xy over the dataset.
        let (_, _, _delta) = DivergenceKind::ItakuraSaito.query_components(&query);
        let mut values = Vec::with_capacity(ds.len());
        for (_, point) in ds.iter() {
            let mut beta = 0.0;
            for (j, (&x, &y)) in point.iter().zip(query.iter()).enumerate() {
                let _ = j;
                // φ'(y) = −1/y for Itakura-Saito.
                beta -= x * (-1.0 / y);
            }
            values.push(beta);
        }
        let emp_mean = values.iter().sum::<f64>() / values.len() as f64;
        let emp_var = values.iter().map(|v| (v - emp_mean) * (v - emp_mean)).sum::<f64>()
            / values.len() as f64;
        assert!(
            (model.mean - emp_mean).abs() < 0.05 * emp_mean.abs().max(1.0),
            "model mean {} vs empirical {}",
            model.mean,
            emp_mean
        );
        // The independence assumption makes the modelled variance an
        // approximation; demand the right order of magnitude only.
        assert!(model.std_dev > 0.0);
        assert!(model.std_dev < 10.0 * emp_var.sqrt() + 1.0);
    }
}
