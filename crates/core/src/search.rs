//! The BrePartition index: build (Algorithm 5) and exact kNN search
//! (Algorithm 6).

use bbtree::{BBTreeConfig, SearchStats};
use bregman::kernel::{KernelScratch, PreparedQuery};
use bregman::{DenseDataset, DivergenceKind, PointId};
use pagestore::{BufferPool, PageStore, PageStoreConfig};
use std::time::Instant;

use crate::bbforest::BBForest;
use crate::bound::QueryBounds;
use crate::config::{BrePartitionConfig, PartitionCount, PartitionStrategy};
use crate::error::{CoreError, Result};
use crate::partition::optimal_m::CostModel;
use crate::partition::{equal::equal_contiguous, pccp::pccp, Partitioning};
use crate::stats::QueryStats;
use crate::transform::{TransformedDataset, TransformedQuery};

/// Result of one kNN query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The neighbours as `(id, divergence)` pairs, ordered by increasing
    /// divergence.
    pub neighbors: Vec<(PointId, f64)>,
    /// Per-phase cost breakdown.
    pub stats: QueryStats,
    /// The per-subspace searching bounds the filter phase used.
    pub bounds: QueryBounds,
    /// The shrink coefficient applied to the Cauchy term (`None` for the
    /// exact search, `Some(c)` for the approximate extension).
    pub coefficient: Option<f64>,
}

/// Summary of the precomputation phase (Algorithm 5), reported for the
/// index-construction experiment (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildReport {
    /// Number of partitions actually used.
    pub partitions: usize,
    /// Wall-clock seconds for the whole precomputation.
    pub total_seconds: f64,
    /// Seconds spent inside BB-forest construction (clustering + layout).
    pub forest_seconds: f64,
    /// Pages written while laying the data out on the simulated disk.
    pub pages_written: u64,
}

/// The disk-resident BrePartition index.
///
/// The page store inside the BB-forest sits behind an `Arc`, so cloning the
/// index (or sharing it via `Arc<BrePartitionIndex>`, as the query engine
/// does) never duplicates the disk image. The index supports a
/// build-once/open-many lifecycle: [`BrePartitionIndex::save`] persists
/// everything the search needs, [`BrePartitionIndex::open`] restores it with
/// data pages served from the page file (see [`crate::persist`]).
#[derive(Debug, Clone)]
pub struct BrePartitionIndex {
    kind: DivergenceKind,
    config: BrePartitionConfig,
    partitioning: Partitioning,
    transformed: TransformedDataset,
    forest: BBForest,
    cost_model: Option<CostModel>,
    /// Per-dimension means of the data (used by the approximate extension to
    /// model the distribution of the Cauchy-relaxed term).
    dim_means: Vec<f64>,
    /// Per-dimension variances of the data.
    dim_vars: Vec<f64>,
    /// Per-point full-space generator sums `Φ(x) = Σ_j φ(x_j)`, indexed by
    /// point id — the data side of the prepared-query refine kernel.
    /// Reassembled from the persisted per-subspace `α_x` column (the
    /// partitions are disjoint and exhaustive, so `Φ(x) = Σ_s α_x(s)`),
    /// which is why the index envelope needs no extra table.
    phi: Vec<f64>,
    /// Row-major `f32` copy of the data (`n × dim`), present only when
    /// [`BrePartitionConfig::f32_candidates`] is set. Candidate screening
    /// reads this instead of data pages; survivors are re-ranked from the
    /// full-resolution pages. Behind an `Arc` so cloning the index stays
    /// cheap. Derived from the row bits (not persisted), so it is identical
    /// whether the index was just built or reopened from disk.
    f32_rows: Option<std::sync::Arc<Vec<f32>>>,
    build: BuildReport,
}

impl BrePartitionIndex {
    /// Algorithm 5 (`BrePartitionConstruct`): determine `M`, partition the
    /// dimensions, transform every point, and build the BB-forest.
    pub fn build(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        config: &BrePartitionConfig,
    ) -> Result<BrePartitionIndex> {
        if dataset.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        if !kind.supports_partitioning() {
            return Err(CoreError::UnsupportedDivergence {
                divergence: kind.short_name().to_string(),
            });
        }
        let started = Instant::now();
        let d = dataset.dim();

        // 1. Number of partitions: fixed, or the cost-model optimum.
        let (m, cost_model) = match config.partitions {
            PartitionCount::Fixed(m) => {
                if m == 0 || m > d {
                    return Err(CoreError::InvalidPartitionCount { requested: m, dim: d });
                }
                (m, CostModel::fit(kind, dataset, config.sample_size, config.seed).ok())
            }
            PartitionCount::Auto => {
                let model = CostModel::fit(kind, dataset, config.sample_size, config.seed)?;
                (model.optimal_partitions(1).clamp(1, d), Some(model))
            }
        };

        // 2. Dimensionality partitioning.
        let partitioning = match config.strategy {
            PartitionStrategy::Pccp => pccp(dataset, m, config.sample_size, config.seed)?,
            PartitionStrategy::EqualContiguous => equal_contiguous(d, m)?,
        };

        // 3. Transform every point into per-subspace tuples.
        let transformed = TransformedDataset::build(kind, dataset, &partitioning);

        // 4. Build the BB-forest and lay the data out on the simulated disk.
        let forest = BBForest::build(
            kind,
            dataset,
            &partitioning,
            BBTreeConfig {
                leaf_capacity: config.leaf_capacity,
                max_kmeans_iters: 16,
                seed: config.seed,
            },
            PageStoreConfig::with_page_size(config.page_size_bytes),
        )?;

        // Per-dimension moments for the approximate extension.
        let (dim_means, dim_vars) = column_moments(dataset);

        let build = BuildReport {
            partitions: m,
            total_seconds: started.elapsed().as_secs_f64(),
            forest_seconds: forest.build_seconds(),
            pages_written: forest.store().build_writes(),
        };
        let phi = phi_from_rows(kind, dataset);
        let f32_rows = config.f32_candidates.then(|| {
            let mut rows = Vec::with_capacity(dataset.len() * dataset.dim());
            for i in 0..dataset.len() {
                rows.extend(dataset.row(i).iter().map(|&v| v as f32));
            }
            std::sync::Arc::new(rows)
        });
        Ok(BrePartitionIndex {
            kind,
            config: *config,
            partitioning,
            transformed,
            forest,
            cost_model,
            dim_means,
            dim_vars,
            phi,
            f32_rows,
            build,
        })
    }

    /// Reassemble an index from restored parts (the open-from-disk path;
    /// the cost model is not persisted, so a reopened index reports `None`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        kind: DivergenceKind,
        config: BrePartitionConfig,
        partitioning: Partitioning,
        transformed: TransformedDataset,
        forest: BBForest,
        dim_means: Vec<f64>,
        dim_vars: Vec<f64>,
        build: BuildReport,
    ) -> BrePartitionIndex {
        // The Φ column is recomputed from the restored full-resolution rows
        // (not persisted), so pre-existing envelopes migrate transparently
        // on open and the reopened index scores bit-identically. The f32
        // screening copy is rebuilt the same way: the store holds the exact
        // row bits, so `x as f32` reproduces the build-time values.
        let phi = phi_from_store(kind, forest.store());
        let f32_rows = config.f32_candidates.then(|| {
            let store = forest.store();
            let dim = store.dim();
            let mut rows = vec![0.0f32; store.point_count() * dim];
            let complete = store.for_each_point(&mut |pid, coords| {
                let base = pid as usize * dim;
                for (slot, &v) in rows[base..base + dim].iter_mut().zip(coords) {
                    *slot = v as f32;
                }
            });
            debug_assert!(complete.is_ok(), "restored store is missing point addresses");
            std::sync::Arc::new(rows)
        });
        BrePartitionIndex {
            kind,
            config,
            partitioning,
            transformed,
            forest,
            cost_model: None,
            dim_means,
            dim_vars,
            phi,
            f32_rows,
            build,
        }
    }

    /// The divergence the index answers queries for.
    pub fn kind(&self) -> DivergenceKind {
        self.kind
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &BrePartitionConfig {
        &self.config
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.transformed.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.transformed.is_empty()
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.partitioning.dim()
    }

    /// The number of partitions in use (`M`).
    pub fn partitions(&self) -> usize {
        self.partitioning.len()
    }

    /// The dimensionality partitioning in use.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The fitted cost model, when one was computed.
    pub fn cost_model(&self) -> Option<&CostModel> {
        self.cost_model.as_ref()
    }

    /// The BB-forest (exposed for experiments that inspect the index).
    pub fn forest(&self) -> &BBForest {
        &self.forest
    }

    /// The per-point transforms (exposed for the approximate extension and
    /// for experiments).
    pub fn transformed(&self) -> &TransformedDataset {
        &self.transformed
    }

    /// Per-dimension means of the indexed data.
    pub fn dimension_means(&self) -> &[f64] {
        &self.dim_means
    }

    /// Per-dimension variances of the indexed data.
    pub fn dimension_variances(&self) -> &[f64] {
        &self.dim_vars
    }

    /// Construction-cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// A fresh buffer pool sized according to the index configuration.
    pub fn new_buffer_pool(&self) -> BufferPool {
        BufferPool::new(self.config.buffer_pool_pages)
    }

    /// The per-point `Φ(x)` column (indexed by point id).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Algorithm 6 (`BrePartitionSearch`): exact kNN with a fresh,
    /// configuration-sized buffer pool (per-query I/O accounting, as in the
    /// paper's figures).
    pub fn knn(&self, query: &[f64], k: usize) -> Result<QueryResult> {
        let mut pool = self.new_buffer_pool();
        self.knn_with_pool(&mut pool, query, k)
    }

    /// Exact kNN reusing a caller-supplied buffer pool (warm-cache setting).
    pub fn knn_with_pool(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        k: usize,
    ) -> Result<QueryResult> {
        let mut kernel = KernelScratch::default();
        self.knn_with_scratch(pool, &mut kernel, query, k)
    }

    /// Exact kNN reusing a caller-supplied buffer pool *and*
    /// [`KernelScratch`] (the batch-serving hot path: the prepared-query
    /// and decode buffers are reused across a whole batch).
    pub fn knn_with_scratch(
        &self,
        pool: &mut BufferPool,
        kernel: &mut KernelScratch,
        query: &[f64],
        k: usize,
    ) -> Result<QueryResult> {
        self.validate_query(query)?;
        let bound_started = Instant::now();
        let transformed_query = TransformedQuery::build(self.kind, query, &self.partitioning);
        let Some(bounds) = QueryBounds::determine(&self.transformed, &transformed_query, k) else {
            return Ok(QueryResult {
                neighbors: Vec::new(),
                stats: QueryStats::default(),
                bounds: QueryBounds { pivot_point: 0, per_subspace: Vec::new(), total: 0.0 },
                coefficient: None,
            });
        };
        let bound_seconds = bound_started.elapsed().as_secs_f64();
        let (neighbors, mut stats) =
            self.filter_and_refine(pool, kernel, query, k, &bounds.per_subspace)?;
        stats.bound_seconds = bound_seconds;
        Ok(QueryResult { neighbors, stats, bounds, coefficient: None })
    }

    /// Shared filter + refine phases, parameterized by the per-subspace
    /// radii (the exact search passes Algorithm 4's bounds, the approximate
    /// extension passes shrunken ones). A physical page read that fails
    /// mid-refine (post-open bit rot, device error) surfaces as
    /// [`CoreError::Persist`] instead of a panic.
    pub(crate) fn filter_and_refine(
        &self,
        pool: &mut BufferPool,
        kernel: &mut KernelScratch,
        query: &[f64],
        k: usize,
        radii: &[f64],
    ) -> Result<(Vec<(PointId, f64)>, QueryStats)> {
        let mut stats = QueryStats::default();
        let io_before = pool.stats();

        // Filter: union of the per-subspace range-query candidates.
        let filter_started = Instant::now();
        let n = self.transformed.len();
        let mut in_union = vec![false; n];
        let mut union: Vec<u32> = Vec::new();
        let mut search_stats = SearchStats::new();
        let mut sub_query = Vec::new();
        for (s, &radius) in radii.iter().enumerate() {
            self.partitioning.project_point_into(s, query, &mut sub_query);
            let candidates =
                self.forest.subspace_candidates(s, &sub_query, radius, &mut search_stats);
            stats.subspace_candidates_total += candidates.len();
            for pid in candidates {
                let idx = pid.index();
                if !in_union[idx] {
                    in_union[idx] = true;
                    union.push(pid.0);
                }
            }
        }
        stats.filter_seconds = filter_started.elapsed().as_secs_f64();
        stats.candidates = union.len();

        // Refine: load candidates page by page and keep the k best exact
        // divergences, evaluated through the prepared kernel — the
        // query-side transcendentals were hoisted once above, the data-side
        // generator sums come from the precomputed Φ column. Each page
        // group is decoded as one lane-major block and refined in a single
        // batched kernel call, so the dot products vectorize across the
        // candidates of a page instead of running one at a time.
        let refine_started = Instant::now();
        let KernelScratch { prepared, coords, lanes, distances, phis, .. } = kernel;
        self.kind.prepare_query_into(prepared, query);
        let mut neighbors: Vec<(PointId, f64)> = Vec::with_capacity(union.len().min(k * 4));
        let screened = self
            .f32_rows
            .as_deref()
            .map(|rows32| {
                screen_candidates_f32(
                    prepared,
                    rows32,
                    &self.phi,
                    &union,
                    k,
                    pool,
                    self.forest.store(),
                    coords,
                    &mut search_stats,
                    &mut neighbors,
                )
            })
            .unwrap_or(false);
        if !screened {
            pool.read_points_block(self.forest.store(), &union, lanes, &mut |members, block| {
                phis.clear();
                phis.extend(members.iter().map(|&pid| self.phi[pid as usize]));
                prepared.distance_block(phis, block, distances);
                search_stats.candidates_examined += members.len() as u64;
                search_stats.distance_computations += members.len() as u64;
                neighbors.extend(
                    members.iter().zip(distances.iter()).map(|(&pid, &d)| (PointId(pid), d)),
                );
            })?;
        }
        // Partial selection: only the k best need ordering, so candidates
        // beyond k cost O(c) instead of the O(c log c) of a full sort. The
        // (distance, id) total order makes the selection deterministic and
        // identical to sort-then-truncate.
        if k == 0 {
            neighbors.clear();
        } else if neighbors.len() > k {
            neighbors.select_nth_unstable_by(k - 1, |a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            neighbors.truncate(k);
        }
        neighbors.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        stats.refine_seconds = refine_started.elapsed().as_secs_f64();
        stats.search = search_stats;
        stats.io = pool.stats().since(&io_before);
        Ok((neighbors, stats))
    }

    pub(crate) fn validate_query(&self, query: &[f64]) -> Result<()> {
        if query.len() != self.dim() {
            return Err(CoreError::QueryDimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        Ok(())
    }
}

/// Max-heap entry for the `f32` screening tier: the heap's greatest element
/// under the `(distance, id)` total order is the current worst of the `k`
/// best, i.e. the pruning threshold `τ`.
struct ScreenEntry {
    dist: f64,
    pid: u32,
}

impl ScreenEntry {
    fn key_cmp(&self, other: &ScreenEntry) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist).then(self.pid.cmp(&other.pid))
    }
}

impl PartialEq for ScreenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ScreenEntry {}
impl PartialOrd for ScreenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScreenEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_cmp(other)
    }
}

/// The `f32` candidate-screening tier: estimate every candidate's
/// divergence from the in-memory `f32` row copy, then fetch pages and
/// re-rank at full resolution only for candidates whose estimate cannot be
/// ruled out. Returns `false` (leaving `neighbors` untouched) when the
/// prepared query is the naive fallback, which has no gradient to screen
/// with — the caller then runs the unscreened block refine.
///
/// **Safety of the skip rule.** With the decomposed kernel the exact refine
/// computes `d = Φ(x) + c_q − Σ_i φ'(q_i)·x_i` in the block kernel's
/// (= `dot8`'s) summation order; survivors here are scored through
/// `distance_block` with a single-row block, so the screened path is
/// bit-identical to the unscreened one. The screening estimate
/// replaces `x_i` by `f64::from(x_i as f32)`. The error of the estimate is
/// bounded by the three terms below: `K_REL·Σ|φ'(q_i)·x̃_i|` covers the
/// `2⁻²⁴` relative rounding of every `f64 → f32` conversion plus both
/// sides' accumulation error (16× margin), `K_SUB·Σ|φ'(q_i)|` covers
/// conversions that land in the `f32` subnormal range (absolute, not
/// relative, error), and `K_FIN·|estimate|` covers the final
/// additions/subtractions. A candidate is skipped only when
/// `estimate − bound` *strictly* exceeds the current `k`-th best exact
/// distance, so a skipped candidate's exact distance is strictly worse
/// than `τ` and can never displace a kept neighbor, ties included.
#[allow(clippy::too_many_arguments)]
fn screen_candidates_f32(
    prepared: &PreparedQuery,
    rows32: &[f32],
    phi: &[f64],
    union: &[u32],
    k: usize,
    pool: &mut BufferPool,
    store: &PageStore,
    coords: &mut Vec<f64>,
    search_stats: &mut SearchStats,
    neighbors: &mut Vec<(PointId, f64)>,
) -> bool {
    let (Some(grad), Some(offset)) = (prepared.gradient(), prepared.offset()) else {
        return false;
    };
    if k == 0 {
        return true;
    }
    const K_REL: f64 = 1.0 / (1u64 << 20) as f64; // ≥ 16 × 2⁻²⁴
    const K_SUB: f64 = 1.0 / (1u64 << 62) as f64 / (1u64 << 38) as f64; // 2⁻¹⁰⁰
    const K_FIN: f64 = 1.0 / (1u64 << 48) as f64; // ≥ 16 × 2⁻⁵²
    let dim = grad.len();
    let gsum: f64 = grad.iter().map(|g| g.abs()).sum();

    // Estimate every candidate from the f32 copy (no page I/O), then visit
    // them most-promising first so the pruning threshold tightens early.
    let mut scored: Vec<(f64, f64, u32)> = Vec::with_capacity(union.len());
    for &pid in union {
        let row = &rows32[pid as usize * dim..(pid as usize + 1) * dim];
        let mut acc = 0.0f64;
        let mut mag = 0.0f64;
        for (&g, &x) in grad.iter().zip(row) {
            let t = g * f64::from(x);
            acc += t;
            mag += t.abs();
        }
        let estimate = phi[pid as usize] + offset - acc;
        let bound = mag * K_REL + gsum * K_SUB + estimate.abs() * K_FIN;
        scored.push((estimate, bound, pid));
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

    let mut heap: std::collections::BinaryHeap<ScreenEntry> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    let mut one_dist = Vec::with_capacity(1);
    for &(estimate, bound, pid) in &scored {
        if heap.len() == k {
            let worst = heap.peek().expect("heap holds k > 0 entries");
            if estimate - bound > worst.dist {
                continue;
            }
        }
        if !pool.read_point_into(store, pid, coords) {
            continue;
        }
        search_stats.candidates_examined += 1;
        search_stats.distance_computations += 1;
        // A single-row block: for m = 1 the lane-major block *is* the row,
        // and the arithmetic matches the batched refine bit for bit.
        prepared.distance_block(std::slice::from_ref(&phi[pid as usize]), coords, &mut one_dist);
        let entry = ScreenEntry { dist: one_dist[0], pid };
        if heap.len() < k {
            heap.push(entry);
        } else if entry.cmp(heap.peek().expect("heap holds k > 0 entries"))
            == std::cmp::Ordering::Less
        {
            heap.pop();
            heap.push(entry);
        }
    }
    neighbors.extend(heap.into_iter().map(|e| (PointId(e.pid), e.dist)));
    true
}

/// The full-space `Φ(x) = Σ_j φ(x_j)` column, evaluated over each row in
/// its original dimension order.
///
/// Deliberately *not* reassembled from the per-subspace transform tuples
/// (`Σ_s α_x(s)`): that sum's floating-point order depends on the partition
/// layout, so two indexes holding the same point under different
/// partitionings would score it with different low-order bits. Summing the
/// row directly makes the refine distance a pure function of `(row, query)`
/// — the invariant [`DeltaSegment`](crate::delta::DeltaSegment) and the
/// sharded serving tier rely on.
fn phi_from_rows(kind: DivergenceKind, dataset: &DenseDataset) -> Vec<f64> {
    (0..dataset.len()).map(|i| kind.phi_sum(dataset.row(i))).collect()
}

/// [`phi_from_rows`] over the full-resolution rows laid out in a
/// [`PageStore`] (the open-from-disk path, where the original dataset is
/// gone but the store holds the identical row bits).
fn phi_from_store(kind: DivergenceKind, store: &pagestore::PageStore) -> Vec<f64> {
    let mut phi = vec![0.0; store.point_count()];
    let complete = store.for_each_point(&mut |pid, coords| {
        phi[pid as usize] = kind.phi_sum(coords);
    });
    debug_assert!(complete.is_ok(), "restored store is missing point addresses");
    phi
}

/// Per-column means and variances of a dataset.
fn column_moments(dataset: &DenseDataset) -> (Vec<f64>, Vec<f64>) {
    let d = dataset.dim();
    let n = dataset.len().max(1) as f64;
    let mut means = vec![0.0; d];
    for i in 0..dataset.len() {
        for (j, &v) in dataset.row(i).iter().enumerate() {
            means[j] += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0; d];
    for i in 0..dataset.len() {
        for (j, &v) in dataset.row(i).iter().enumerate() {
            let dv = v - means[j];
            vars[j] += dv * dv;
        }
    }
    for v in &mut vars {
        *v /= n;
    }
    (means, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::correlated::CorrelatedSpec;
    use datagen::ground_truth::single_query_knn;

    fn dataset(n: usize, dim: usize, seed: u64) -> DenseDataset {
        CorrelatedSpec {
            n,
            dim,
            blocks: (dim / 4).max(1),
            correlation: 0.8,
            mean: 5.0,
            scale: 1.0,
            seed,
        }
        .generate()
    }

    fn config() -> BrePartitionConfig {
        BrePartitionConfig::default().with_partitions(4).with_leaf_capacity(16).with_page_size(4096)
    }

    #[test]
    fn knn_matches_brute_force_itakura_saito() {
        let ds = dataset(500, 24, 1);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config()).unwrap();
        for qi in [0usize, 7, 99, 250] {
            let query = ds.row(qi).to_vec();
            let got = index.knn(&query, 10).unwrap();
            let expected = single_query_knn(DivergenceKind::ItakuraSaito, &ds, &query, 10);
            assert_eq!(got.neighbors.len(), 10);
            for (g, e) in got.neighbors.iter().zip(expected.iter()) {
                assert!(
                    (g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()),
                    "query {qi}: {} vs {}",
                    g.1,
                    e.1
                );
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_exponential_with_auto_partitions() {
        let ds = dataset(400, 16, 2);
        let cfg = BrePartitionConfig::default().with_leaf_capacity(8).with_page_size(2048);
        let index = BrePartitionIndex::build(DivergenceKind::Exponential, &ds, &cfg).unwrap();
        assert!(index.partitions() >= 1 && index.partitions() <= 16);
        let query = ds.row(42).to_vec();
        let got = index.knn(&query, 5).unwrap();
        let expected = single_query_knn(DivergenceKind::Exponential, &ds, &query, 5);
        for (g, e) in got.neighbors.iter().zip(expected.iter()) {
            assert!((g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()));
        }
    }

    #[test]
    fn candidates_contain_the_true_knn() {
        // Theorem 3: the union of per-subspace candidates is a superset of
        // the exact kNN result.
        let ds = dataset(600, 20, 3);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config()).unwrap();
        let query = ds.row(13).to_vec();
        let k = 20;
        let got = index.knn(&query, k).unwrap();
        let expected = single_query_knn(DivergenceKind::ItakuraSaito, &ds, &query, k);
        let got_ids: std::collections::HashSet<_> =
            got.neighbors.iter().map(|(id, _)| *id).collect();
        for (id, _) in expected {
            assert!(got_ids.contains(&id), "true neighbour {id} missing");
        }
        assert!(got.stats.candidates >= k);
        assert!(got.stats.candidates <= ds.len());
    }

    #[test]
    fn filter_prunes_part_of_the_dataset() {
        // Clustered positive data: neighbours of a query are concentrated in
        // its own cluster, so the k-th upper bound is tight enough to prune
        // the other clusters.
        // Hierarchically clustered positive data: within-point coordinate
        // scales are homogeneous relative to the between-cluster separation,
        // the regime where the paper's Cauchy filter is effective.
        let ds = datagen::HierarchicalSpec {
            n: 1500,
            dim: 32,
            clusters: 15,
            blocks: 8,
            ..Default::default()
        }
        .generate();
        let cfg = config().with_partitions(8);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &cfg).unwrap();
        let query = ds.row(3).to_vec();
        let got = index.knn(&query, 10).unwrap();
        assert!(
            got.stats.candidates < ds.len(),
            "expected pruning, got {} candidates out of {}",
            got.stats.candidates,
            ds.len()
        );
        assert!(got.stats.io.pages_read > 0);
        assert!(got.stats.io.pages_read <= index.forest().page_count() as u64);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let ds = dataset(100, 8, 5);
        assert!(matches!(
            BrePartitionIndex::build(DivergenceKind::GeneralizedI, &ds, &config()),
            Err(CoreError::UnsupportedDivergence { .. })
        ));
        let empty = DenseDataset::empty(8).unwrap();
        assert!(matches!(
            BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &empty, &config()),
            Err(CoreError::EmptyDataset)
        ));
        let too_many = BrePartitionConfig::default().with_partitions(99);
        assert!(matches!(
            BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &too_many),
            Err(CoreError::InvalidPartitionCount { .. })
        ));
    }

    #[test]
    fn query_dimension_is_validated() {
        let ds = dataset(100, 8, 6);
        let index = BrePartitionIndex::build(
            DivergenceKind::ItakuraSaito,
            &ds,
            &config().with_partitions(2),
        )
        .unwrap();
        assert!(matches!(
            index.knn(&[1.0, 2.0], 3),
            Err(CoreError::QueryDimensionMismatch { expected: 8, actual: 2 })
        ));
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let ds = dataset(60, 12, 7);
        let index = BrePartitionIndex::build(
            DivergenceKind::ItakuraSaito,
            &ds,
            &config().with_partitions(3),
        )
        .unwrap();
        let query = ds.row(0).to_vec();
        let got = index.knn(&query, 500).unwrap();
        assert_eq!(got.neighbors.len(), 60);
    }

    #[test]
    fn accessors_and_build_report() {
        let ds = dataset(200, 16, 8);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config()).unwrap();
        assert_eq!(index.len(), 200);
        assert!(!index.is_empty());
        assert_eq!(index.dim(), 16);
        assert_eq!(index.partitions(), 4);
        assert_eq!(index.kind(), DivergenceKind::ItakuraSaito);
        assert_eq!(index.partitioning().len(), 4);
        assert_eq!(index.dimension_means().len(), 16);
        assert_eq!(index.dimension_variances().len(), 16);
        assert!(index.cost_model().is_some());
        let report = index.build_report();
        assert_eq!(report.partitions, 4);
        assert!(report.total_seconds >= report.forest_seconds);
        assert!(report.pages_written > 0);
        assert_eq!(index.config().leaf_capacity, 16);
    }

    #[test]
    fn pccp_and_equal_strategies_both_return_exact_results() {
        let ds = dataset(400, 24, 9);
        for strategy in [PartitionStrategy::Pccp, PartitionStrategy::EqualContiguous] {
            let cfg = config().with_strategy(strategy);
            let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &cfg).unwrap();
            let query = ds.row(77).to_vec();
            let got = index.knn(&query, 8).unwrap();
            let expected = single_query_knn(DivergenceKind::ItakuraSaito, &ds, &query, 8);
            for (g, e) in got.neighbors.iter().zip(expected.iter()) {
                assert!((g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()), "{strategy:?}");
            }
        }
    }

    #[test]
    fn warm_pool_reduces_physical_reads() {
        let ds = dataset(800, 16, 10);
        let cfg = config().with_buffer_pool_pages(0);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &cfg).unwrap();
        let query = ds.row(5).to_vec();
        let cold = index.knn(&query, 10).unwrap();
        let mut warm_pool = BufferPool::new(4096);
        index.knn_with_pool(&mut warm_pool, &query, 10).unwrap();
        let second = index.knn_with_pool(&mut warm_pool, &query, 10).unwrap();
        assert!(second.stats.io.pages_read <= cold.stats.io.pages_read);
        assert!(second.stats.io.cache_hits > 0);
    }
}
