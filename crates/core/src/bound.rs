//! Upper bound assembly and search-bound determination (Algorithms 1 and 4,
//! Theorems 1–3).

use crate::transform::{TransformedDataset, TransformedQuery};

/// Algorithm 1 (`UBCompute`): assemble the per-subspace Cauchy–Schwarz upper
/// bound from a data tuple `(α_x, γ_x)` and a query triple
/// `(α_y, β_yy, δ_y)`:
///
/// ```text
/// UB = α_x + α_y + β_yy + sqrt(γ_x · δ_y)
/// ```
#[inline]
pub fn upper_bound_from_components(point: (f64, f64), query: (f64, f64, f64)) -> f64 {
    let (alpha_x, gamma_x) = point;
    let (alpha_y, beta_yy, delta_y) = query;
    alpha_x + alpha_y + beta_yy + (gamma_x * delta_y).max(0.0).sqrt()
}

/// The per-subspace search bounds of one query (Algorithm 4's `QB`), plus
/// the summed bound used by the cost model and the approximate extension.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBounds {
    /// Index of the data point whose summed upper bound was the k-th
    /// smallest (the paper's point `t`).
    pub pivot_point: usize,
    /// Per-subspace search radii `QB_j = UB(x_t,j, y_j)`.
    pub per_subspace: Vec<f64>,
    /// The summed bound `Σ_j QB_j` (the k-th smallest total upper bound).
    pub total: f64,
}

impl QueryBounds {
    /// Algorithm 4 (`QBDetermine`): compute every point's summed upper
    /// bound, select the `k`-th smallest, and return its per-subspace
    /// components as the search radii.
    ///
    /// Returns `None` for an empty dataset or `k == 0`.
    pub fn determine(
        transformed: &TransformedDataset,
        query: &TransformedQuery,
        k: usize,
    ) -> Option<QueryBounds> {
        let n = transformed.len();
        let m = transformed.partitions();
        if n == 0 || k == 0 || m != query.partitions() {
            return None;
        }
        // Pass 1: summed upper bound per point.
        let mut totals: Vec<(usize, f64)> = Vec::with_capacity(n);
        for i in 0..n {
            let mut total = 0.0;
            for s in 0..m {
                total +=
                    upper_bound_from_components(transformed.components(i, s), query.components(s));
            }
            totals.push((i, total));
        }
        // Select the k-th smallest total (or the largest if k > n).
        let kth = k.min(n) - 1;
        totals.select_nth_unstable_by(kth, |a, b| a.1.total_cmp(&b.1));
        let (pivot_point, total) = totals[kth];
        // Pass 2: recompute the pivot's per-subspace components.
        let per_subspace: Vec<f64> = (0..m)
            .map(|s| {
                upper_bound_from_components(
                    transformed.components(pivot_point, s),
                    query.components(s),
                )
            })
            .collect();
        Some(QueryBounds { pivot_point, per_subspace, total })
    }

    /// Number of subspaces covered.
    pub fn partitions(&self) -> usize {
        self.per_subspace.len()
    }

    /// A copy of these bounds with every subspace's Cauchy term shrunk so
    /// the *total* is scaled by `factor` (used by the approximate search;
    /// each per-subspace radius is scaled proportionally).
    pub fn scaled(&self, factor: f64) -> QueryBounds {
        let f = factor.clamp(0.0, 1.0);
        QueryBounds {
            pivot_point: self.pivot_point,
            per_subspace: self.per_subspace.iter().map(|b| b * f).collect(),
            total: self.total * f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioning;
    use bregman::{DenseDataset, DivergenceKind};

    fn setup() -> (DenseDataset, Partitioning, TransformedDataset) {
        let rows: Vec<Vec<f64>> = (1..=30)
            .map(|i| (0..6).map(|j| 0.5 + ((i * 5 + j * 11) % 17) as f64).collect())
            .collect();
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let p = Partitioning::new(vec![vec![0, 2, 4], vec![1, 3, 5]]).unwrap();
        let t = TransformedDataset::build(DivergenceKind::Exponential, &ds, &p);
        (ds, p, t)
    }

    #[test]
    fn upper_bound_dominates_exact_divergence_in_each_subspace() {
        let (ds, p, t) = setup();
        let kind = DivergenceKind::Exponential;
        let query = ds.row(7);
        let q = TransformedQuery::build(kind, query, &p);
        for i in 0..ds.len() {
            for (s, dims) in p.subspaces().iter().enumerate() {
                let sub_x: Vec<f64> = dims.iter().map(|&d| ds.row(i)[d]).collect();
                let sub_y: Vec<f64> = dims.iter().map(|&d| query[d]).collect();
                let exact = kind.divergence(&sub_x, &sub_y);
                let ub = upper_bound_from_components(t.components(i, s), q.components(s));
                assert!(exact <= ub + 1e-7 * (1.0 + ub.abs()), "point {i} subspace {s}");
            }
        }
    }

    #[test]
    fn summed_upper_bound_dominates_full_divergence() {
        // Theorem 2: D_f(x, y) ≤ Σ_j UB_j.
        let (ds, p, t) = setup();
        let kind = DivergenceKind::Exponential;
        let query = ds.row(0);
        let q = TransformedQuery::build(kind, query, &p);
        for i in 0..ds.len() {
            let total: f64 = (0..p.len())
                .map(|s| upper_bound_from_components(t.components(i, s), q.components(s)))
                .sum();
            let exact = kind.divergence(ds.row(i), query);
            assert!(exact <= total + 1e-7 * (1.0 + total.abs()));
        }
    }

    #[test]
    fn determine_returns_kth_smallest_total() {
        let (ds, p, t) = setup();
        let kind = DivergenceKind::Exponential;
        let query = ds.row(3);
        let q = TransformedQuery::build(kind, query, &p);
        let k = 5;
        let bounds = QueryBounds::determine(&t, &q, k).unwrap();
        assert_eq!(bounds.partitions(), 2);
        // Recompute all totals and check the pivot really is the k-th smallest.
        let mut totals: Vec<f64> = (0..ds.len())
            .map(|i| {
                (0..p.len())
                    .map(|s| upper_bound_from_components(t.components(i, s), q.components(s)))
                    .sum()
            })
            .collect();
        totals.sort_by(f64::total_cmp);
        assert!((bounds.total - totals[k - 1]).abs() < 1e-9);
        let per_sum: f64 = bounds.per_subspace.iter().sum();
        assert!((per_sum - bounds.total).abs() < 1e-9);
    }

    #[test]
    fn kth_bound_grows_with_k() {
        let (ds, p, t) = setup();
        let kind = DivergenceKind::Exponential;
        let q = TransformedQuery::build(kind, ds.row(11), &p);
        let b1 = QueryBounds::determine(&t, &q, 1).unwrap();
        let b10 = QueryBounds::determine(&t, &q, 10).unwrap();
        let b30 = QueryBounds::determine(&t, &q, 30).unwrap();
        assert!(b1.total <= b10.total + 1e-12);
        assert!(b10.total <= b30.total + 1e-12);
    }

    #[test]
    fn k_beyond_dataset_size_falls_back_to_largest() {
        let (ds, p, t) = setup();
        let q = TransformedQuery::build(DivergenceKind::Exponential, ds.row(1), &p);
        let clamped = QueryBounds::determine(&t, &q, 1_000).unwrap();
        let exact_max = QueryBounds::determine(&t, &q, ds.len()).unwrap();
        assert!((clamped.total - exact_max.total).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let (ds, p, t) = setup();
        let q = TransformedQuery::build(DivergenceKind::Exponential, ds.row(1), &p);
        assert!(QueryBounds::determine(&t, &q, 0).is_none());
        let empty = DenseDataset::empty(6).unwrap();
        let empty_t = TransformedDataset::build(DivergenceKind::Exponential, &empty, &p);
        assert!(QueryBounds::determine(&empty_t, &q, 3).is_none());
    }

    #[test]
    fn scaled_bounds_shrink_proportionally() {
        let (ds, p, t) = setup();
        let q = TransformedQuery::build(DivergenceKind::Exponential, ds.row(4), &p);
        let bounds = QueryBounds::determine(&t, &q, 3).unwrap();
        let scaled = bounds.scaled(0.5);
        assert!((scaled.total - 0.5 * bounds.total).abs() < 1e-9);
        for (a, b) in scaled.per_subspace.iter().zip(bounds.per_subspace.iter()) {
            assert!((a - 0.5 * b).abs() < 1e-12);
        }
        // Factors outside [0, 1] are clamped.
        assert!((bounds.scaled(3.0).total - bounds.total).abs() < 1e-12);
    }
}
