//! The mutable delta layer: online inserts and deletes over a static
//! partitioned index, organised as an LSM-style generational chain.
//!
//! BrePartition's structure (moments, transforms, subspace trees) is built
//! from a static snapshot of the data, so the classic LSM answer applies to
//! online mutability: absorb writes into a small **exact** side layer and
//! fold it into the partitioned structure on compaction. A [`DeltaSegment`]
//! holds
//!
//! * a **generational chain of append-only rows** — points inserted after
//!   the backend was built live first in a small *active* generation; once
//!   the active generation reaches [`SEAL_THRESHOLD`] rows it is sealed
//!   behind an `Arc` and a fresh active generation starts. Sealed
//!   generations are immutable and shared by reference, so cloning a
//!   `DeltaSegment` (the snapshot operation of the concurrent façade) costs
//!   a handful of refcount bumps plus a copy of the bounded active
//!   generation — never of the whole write history. Each row carries its
//!   precomputed generator sum `Φ(x)` so query-time scans run through the
//!   prepared kernel ([`bregman::kernel`]) exactly like the backends'
//!   refine phases,
//! * a **tombstone set** — external ids deleted since the last compaction
//!   (covering both backend points and delta rows; rows are never removed
//!   in place, matching the append-only discipline). The set sits behind an
//!   `Arc` with copy-on-write semantics, for the same cheap-snapshot
//!   reason, and
//! * the **base id mapping** — after a compaction the rebuilt backend
//!   numbers its points densely from zero, while callers keep the external
//!   ids they were issued; the mapping translates backend-internal ids back
//!   to stable external ids (`None` means the identity, the state of a
//!   freshly built index).
//!
//! Queries see the union: the backend answers over its static points, the
//! chain is scanned exactly (generation order is id order — ids are issued
//! monotonically and never reused), tombstones filter both sides, and the
//! two result lists are merged by `(divergence, id)`. The merge lives in
//! the engine's `DeltaOverlayBackend`; this module owns the state, its
//! invariants and its persistent form (the sealed [`DELTA_FILE`] log,
//! replayed on open — an absent file is an empty delta, which keeps every
//! pre-mutability index directory readable).
//!
//! The log format is chain-agnostic: [`DeltaSegment::to_log_bytes`]
//! flattens every generation into one flat row sequence (the PR-5
//! single-segment format, unchanged), and [`DeltaSegment::from_log_bytes`]
//! replays any log — old or new — into a single sealed generation 0. Every
//! pre-chain index directory stays readable, and directories written by
//! this build open under older readers.

use std::collections::BTreeSet;
use std::iter;
use std::sync::Arc;

use bregman::{BregmanError, DivergenceKind, PointId};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError};

use crate::error::{CoreError, Result};

/// Magic tag of the persisted delta log.
pub const DELTA_MAGIC: [u8; 8] = *b"BREPDLT1";

/// Format version of the delta log this build writes and reads.
pub const DELTA_VERSION: u32 = 1;

/// File name of the delta log within an index directory.
pub const DELTA_FILE: &str = "delta.log";

/// Rows the active generation absorbs before it is sealed into the
/// immutable chain. Bounds the copy a snapshot pays: cloning a
/// `DeltaSegment` copies at most this many rows, everything older is
/// shared by `Arc`.
pub const SEAL_THRESHOLD: usize = 256;

/// One immutable run of appended rows: ids in insertion (= ascending)
/// order, flat coordinates, per-row `Φ(x)`.
#[derive(Debug, Clone, Default)]
struct Generation {
    ids: Vec<u32>,
    rows: Vec<f64>,
    phis: Vec<f64>,
}

impl Generation {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Index of `external` within this generation, if present.
    fn index_of(&self, external: u32) -> Option<usize> {
        self.ids.binary_search(&external).ok()
    }
}

/// The mutable layer over one static backend: a generational chain of
/// appended rows, tombstones and the backend-internal → external id
/// mapping. See the [module docs](crate::delta) for the model.
#[derive(Debug, Clone)]
pub struct DeltaSegment {
    kind: DivergenceKind,
    dim: usize,
    /// Number of points in the static backend underneath.
    base_len: usize,
    /// External id of each backend-internal id (strictly increasing);
    /// `None` is the identity mapping `internal == external`. Shared across
    /// snapshots — the mapping only changes wholesale at compaction.
    base_ids: Option<Arc<Vec<u32>>>,
    /// Next external id to issue (monotone across compactions — ids are
    /// never reused, so a caller-held id stays unambiguous forever).
    next_id: u32,
    /// Sealed immutable generations, oldest first. Ids are globally
    /// strictly increasing across the whole chain.
    sealed: Vec<Arc<Generation>>,
    /// The small mutable tail of the chain.
    active: Generation,
    /// External ids deleted since the last compaction. Copy-on-write:
    /// snapshots share until the next delete.
    tombstones: Arc<BTreeSet<u32>>,
    /// How many tombstones fall on backend points (each can displace one
    /// backend result, so queries over-fetch by exactly this much).
    base_tombstones: usize,
}

impl PartialEq for DeltaSegment {
    /// Logical equality: two segments are equal when a query cannot tell
    /// them apart — same divergence, shape, id mapping, issue counter, row
    /// sequence and tombstones. The generation boundaries are an internal
    /// detail (a replayed log always holds one sealed generation, however
    /// many the original had) and do not participate.
    fn eq(&self, other: &DeltaSegment) -> bool {
        self.kind == other.kind
            && self.dim == other.dim
            && self.base_len == other.base_len
            && self.base_ids.as_deref() == other.base_ids.as_deref()
            && self.next_id == other.next_id
            && self.tombstones == other.tombstones
            && self.base_tombstones == other.base_tombstones
            && self.delta_rows() == other.delta_rows()
            && self.all_delta_rows().eq(other.all_delta_rows())
    }
}

impl DeltaSegment {
    /// An empty delta over a freshly built backend of `base_len` points
    /// (identity id mapping).
    pub fn new(kind: DivergenceKind, dim: usize, base_len: usize) -> Result<DeltaSegment> {
        let next_id = u32::try_from(base_len).map_err(|_| {
            CoreError::Persist(format!("backend of {base_len} points exceeds the u32 id space"))
        })?;
        Ok(DeltaSegment {
            kind,
            dim,
            base_len,
            base_ids: None,
            next_id,
            sealed: Vec::new(),
            active: Generation::default(),
            tombstones: Arc::new(BTreeSet::new()),
            base_tombstones: 0,
        })
    }

    /// An empty delta over a backend rebuilt by compaction: `base_ids[i]` is
    /// the external id of the rebuilt backend's internal point `i`, and
    /// `next_id` carries the issue counter across the rebuild.
    ///
    /// The mapping must be strictly increasing (compaction rebuilds in
    /// ascending external id order) and below `next_id`; a contiguous
    /// `0..len` mapping collapses back to the identity.
    pub fn rebased(
        kind: DivergenceKind,
        dim: usize,
        base_ids: Vec<u32>,
        next_id: u32,
    ) -> Result<DeltaSegment> {
        if !base_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(CoreError::Persist(
                "compacted id mapping is not strictly increasing".to_string(),
            ));
        }
        if base_ids.last().is_some_and(|&last| last >= next_id) {
            return Err(CoreError::Persist(format!(
                "compacted id mapping reaches id {} but only {next_id} ids were ever issued",
                base_ids.last().copied().unwrap_or(0)
            )));
        }
        let base_len = base_ids.len();
        let identity = base_ids.iter().enumerate().all(|(i, &id)| id as usize == i);
        Ok(DeltaSegment {
            kind,
            dim,
            base_len,
            base_ids: if identity { None } else { Some(Arc::new(base_ids)) },
            next_id,
            sealed: Vec::new(),
            active: Generation::default(),
            tombstones: Arc::new(BTreeSet::new()),
            base_tombstones: 0,
        })
    }

    /// A drained delta over the *same* backend, with every backend point
    /// tombstoned and no rows: the state of an index whose live set was
    /// empty at compaction time. The backend is kept (rebuilding over zero
    /// points is impossible), queries see nothing, and the issue counter
    /// carries forward so the index stays writable.
    pub fn parked(&self) -> DeltaSegment {
        let tombstones: BTreeSet<u32> =
            (0..self.base_len).map(|internal| self.external_of(internal).0).collect();
        let base_tombstones = tombstones.len();
        DeltaSegment {
            kind: self.kind,
            dim: self.dim,
            base_len: self.base_len,
            base_ids: self.base_ids.clone(),
            next_id: self.next_id,
            sealed: Vec::new(),
            active: Generation::default(),
            tombstones: Arc::new(tombstones),
            base_tombstones,
        }
    }

    /// The divergence delta distances are evaluated under.
    pub fn kind(&self) -> DivergenceKind {
        self.kind
    }

    /// Dimensionality of the rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points in the static backend underneath.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of delta rows, live and tombstoned alike (the append-only
    /// log length, summed across the chain).
    pub fn delta_rows(&self) -> usize {
        self.sealed.iter().map(|g| g.len()).sum::<usize>() + self.active.len()
    }

    /// Number of sealed immutable generations in the chain (the active
    /// generation is not counted).
    pub fn sealed_generations(&self) -> usize {
        self.sealed.len()
    }

    /// Number of live points across backend and delta.
    pub fn live_len(&self) -> usize {
        self.base_len - self.base_tombstones + self.delta_rows()
            - (self.tombstones.len() - self.base_tombstones)
    }

    /// How many tombstones fall on backend points.
    pub fn base_tombstone_count(&self) -> usize {
        self.base_tombstones
    }

    /// Number of tombstoned ids (backend and delta combined).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// The next external id [`DeltaSegment::insert`] will issue.
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Whether queries through this delta are indistinguishable from
    /// queries against the bare backend: no rows, no tombstones, identity
    /// id mapping.
    pub fn is_trivial(&self) -> bool {
        self.delta_rows() == 0 && self.tombstones.is_empty() && self.base_ids.is_none()
    }

    /// Whether a compaction would change the backend (pending rows or
    /// tombstones exist).
    pub fn has_pending_writes(&self) -> bool {
        self.delta_rows() > 0 || !self.tombstones.is_empty()
    }

    /// Seal the active generation into the immutable chain, if non-empty.
    /// Compaction seals at its frontier so the snapshot it rebuilds from
    /// shares every row with the live segment by reference.
    pub fn seal(&mut self) {
        if !self.active.is_empty() {
            self.sealed.push(Arc::new(std::mem::take(&mut self.active)));
        }
    }

    /// Append one row, issuing its external id.
    ///
    /// The row must match the delta's dimensionality and lie in the
    /// divergence's domain (e.g. strictly positive under Itakura-Saito) —
    /// violations are typed errors, nothing is appended. Reaching
    /// [`SEAL_THRESHOLD`] rows seals the active generation.
    pub fn insert(&mut self, row: &[f64]) -> Result<PointId> {
        let id = self.next_id;
        let next = self.next_id.checked_add(1).ok_or_else(|| {
            CoreError::Persist("the u32 external id space is exhausted".to_string())
        })?;
        self.append_row(id, row)?;
        self.next_id = next;
        Ok(PointId(id))
    }

    /// Re-append a row under an id issued by another snapshot of the same
    /// lineage: the epoch-handoff step of background compaction carries
    /// rows inserted *after* the compaction frontier into the rebased
    /// segment with their ids intact. The id must be at or beyond the
    /// current issue counter (ids are never reused), and the counter
    /// advances past it.
    pub fn carry_row(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        if id.0 < self.next_id {
            return Err(CoreError::Persist(format!(
                "carried row id {} is below the issue counter {}",
                id.0, self.next_id
            )));
        }
        let next = id.0.checked_add(1).ok_or_else(|| {
            CoreError::Persist("the u32 external id space is exhausted".to_string())
        })?;
        self.append_row(id.0, row)?;
        self.next_id = next;
        Ok(())
    }

    fn append_row(&mut self, id: u32, row: &[f64]) -> Result<()> {
        if row.len() != self.dim {
            return Err(CoreError::QueryDimensionMismatch {
                expected: self.dim,
                actual: row.len(),
            });
        }
        if let Some(&value) = row.iter().find(|&&v| !self.kind.in_domain_vec(&[v])) {
            return Err(CoreError::Bregman(BregmanError::OutOfDomain {
                divergence: self.kind.short_name(),
                value,
            }));
        }
        self.active.ids.push(id);
        self.active.rows.extend_from_slice(row);
        self.active.phis.push(self.kind.phi_sum(row));
        if self.active.len() >= SEAL_THRESHOLD {
            self.seal();
        }
        Ok(())
    }

    /// Tombstone a live point (backend or delta). Returns `true` if the id
    /// was live, `false` if it was already deleted or never issued —
    /// deletes are idempotent, not errors, and an idempotent delete leaves
    /// the segment untouched (no dirtying, no shared-set copy).
    pub fn delete(&mut self, id: PointId) -> bool {
        let external = id.0;
        let on_base = self.base_index_of(external).is_some();
        if !on_base && self.delta_index_of(external).is_none() {
            return false;
        }
        if self.tombstones.contains(&external) {
            return false;
        }
        Arc::make_mut(&mut self.tombstones).insert(external);
        if on_base {
            self.base_tombstones += 1;
        }
        true
    }

    /// Whether the external id refers to a live point.
    pub fn is_live(&self, id: PointId) -> bool {
        !self.tombstones.contains(&id.0)
            && (self.base_index_of(id.0).is_some() || self.delta_index_of(id.0).is_some())
    }

    /// Whether the external id is tombstoned (regardless of which side it
    /// names). Compaction's handoff diffs tombstone sets with this.
    pub fn is_tombstoned(&self, id: PointId) -> bool {
        self.tombstones.contains(&id.0)
    }

    /// All tombstoned external ids, ascending.
    pub fn tombstone_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.tombstones.iter().copied()
    }

    /// External id of the backend-internal point `internal`.
    pub fn external_of(&self, internal: usize) -> PointId {
        match &self.base_ids {
            None => PointId(internal as u32),
            Some(ids) => PointId(ids[internal]),
        }
    }

    /// Backend-internal index of an external id, if it names a backend
    /// point.
    fn base_index_of(&self, external: u32) -> Option<usize> {
        match &self.base_ids {
            None => ((external as usize) < self.base_len).then_some(external as usize),
            Some(ids) => ids.binary_search(&external).ok(),
        }
    }

    /// Whether an external id names a delta row anywhere in the chain.
    /// Ids are globally ascending across generations, so at most one
    /// generation's id range can contain it.
    fn delta_index_of(&self, external: u32) -> Option<(usize, usize)> {
        for (g, generation) in self.generations().enumerate() {
            match (generation.ids.first(), generation.ids.last()) {
                (Some(&first), Some(&last)) if first <= external && external <= last => {
                    return generation.index_of(external).map(|i| (g, i));
                }
                _ => {}
            }
        }
        None
    }

    /// Every generation in chain order: sealed oldest-first, then active.
    fn generations(&self) -> impl Iterator<Item = &Generation> {
        self.sealed.iter().map(|g| &**g).chain(iter::once(&self.active))
    }

    /// Live backend points as `(internal, external)` pairs, in internal
    /// (= ascending external) order.
    pub fn live_base_entries(&self) -> impl Iterator<Item = (usize, PointId)> + '_ {
        (0..self.base_len).filter_map(move |internal| {
            let external = self.external_of(internal);
            (!self.tombstones.contains(&external.0)).then_some((internal, external))
        })
    }

    /// Every delta row across the chain, tombstoned or not, as
    /// `(external id, coordinates)` in ascending id order.
    fn all_delta_rows(&self) -> impl Iterator<Item = (u32, &[f64])> + '_ {
        self.generations().flat_map(move |g| {
            g.ids
                .iter()
                .enumerate()
                .map(move |(i, &id)| (id, &g.rows[i * self.dim..(i + 1) * self.dim]))
        })
    }

    /// Live delta rows as `(external id, Φ(x), coordinates)`, in ascending
    /// id order — the exact-scan input of the query-time merge.
    pub fn live_delta_rows(&self) -> impl Iterator<Item = (PointId, f64, &[f64])> + '_ {
        self.generations().flat_map(move |g| {
            g.ids.iter().enumerate().filter(move |(_, id)| !self.tombstones.contains(id)).map(
                move |(i, &id)| (PointId(id), g.phis[i], &g.rows[i * self.dim..(i + 1) * self.dim]),
            )
        })
    }

    /// Delta rows with ids at or beyond `from_id`, tombstoned or not, as
    /// `(external id, coordinates)` in ascending id order. The
    /// epoch-handoff step replays these (rows appended after the compaction
    /// frontier) into the rebased segment via
    /// [`DeltaSegment::carry_row`].
    pub fn delta_rows_from(&self, from_id: u32) -> impl Iterator<Item = (PointId, &[f64])> + '_ {
        self.all_delta_rows()
            .filter(move |&(id, _)| id >= from_id)
            .map(|(id, row)| (PointId(id), row))
    }

    /// Serialize into the sealed [`DELTA_FILE`] payload (magic
    /// [`DELTA_MAGIC`], version [`DELTA_VERSION`], FNV-1a checksummed — see
    /// [`pagestore::format`]). The chain is flattened into one flat row
    /// sequence: the on-disk format is the PR-5 single-segment layout,
    /// unchanged, so directories written by this build open under older
    /// readers and vice versa.
    pub fn to_log_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(self.kind.short_name());
        w.put_usize(self.dim);
        w.put_usize(self.base_len);
        match &self.base_ids {
            None => w.put_u8(0),
            Some(ids) => {
                w.put_u8(1);
                w.put_u32_seq(ids);
            }
        }
        w.put_u32(self.next_id);
        let mut flat_ids = Vec::with_capacity(self.delta_rows());
        let mut flat_rows = Vec::with_capacity(self.delta_rows() * self.dim);
        for (id, row) in self.all_delta_rows() {
            flat_ids.push(id);
            flat_rows.extend_from_slice(row);
        }
        w.put_u32_seq(&flat_ids);
        w.put_f64_seq(&flat_rows);
        let tombstones: Vec<u32> = self.tombstones.iter().copied().collect();
        w.put_u32_seq(&tombstones);
        seal(&DELTA_MAGIC, DELTA_VERSION, &w.into_vec())
    }

    /// Replay a sealed delta log against the backend it was saved with.
    ///
    /// Every structural invariant is re-validated — divergence, row
    /// dimensionality and backend size must match the opened backend, the
    /// id mapping and row ids must be strictly increasing and below the
    /// issue counter, and every tombstone must name a known id — so a
    /// corrupted, truncated or foreign log is a descriptive error, never a
    /// wrong answer. Row `Φ` sums are recomputed, not trusted. The replayed
    /// rows land in a single sealed generation 0, whatever chain shape the
    /// writer had.
    pub fn from_log_bytes(
        bytes: &[u8],
        kind: DivergenceKind,
        dim: usize,
        base_len: usize,
    ) -> Result<DeltaSegment> {
        let payload = unseal(&DELTA_MAGIC, DELTA_VERSION, bytes)?;
        let mut r = ByteReader::new(payload);

        let kind_name = r.take_str()?;
        let found_kind = DivergenceKind::parse(&kind_name)
            .map_err(|_| corrupt(format!("unknown divergence kind {kind_name:?}")))?;
        if found_kind != kind {
            return Err(corrupt(format!(
                "delta log was written under divergence {}, index uses {}",
                found_kind.short_name(),
                kind.short_name()
            )));
        }
        let found_dim = r.take_usize()?;
        if found_dim != dim {
            return Err(corrupt(format!(
                "delta rows are {found_dim}-dimensional, index is {dim}-dimensional"
            )));
        }
        let found_base = r.take_usize()?;
        if found_base != base_len {
            return Err(corrupt(format!(
                "delta log describes a backend of {found_base} points, directory holds {base_len}"
            )));
        }
        let base_ids = match r.take_u8()? {
            0 => None,
            1 => {
                let ids = r.take_u32_seq()?;
                if ids.len() != base_len {
                    return Err(corrupt(format!(
                        "id mapping covers {} points, backend holds {base_len}",
                        ids.len()
                    )));
                }
                Some(ids)
            }
            tag => return Err(corrupt(format!("unknown id-mapping tag {tag}"))),
        };
        let next_id = r.take_u32()?;
        let ids = r.take_u32_seq()?;
        let rows = r.take_f64_seq()?;
        let tombstone_list = r.take_u32_seq()?;
        r.expect_end()?;

        if let Some(mapping) = &base_ids {
            if !mapping.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("id mapping is not strictly increasing".to_string()));
            }
        }
        if rows.len() != ids.len() * dim {
            return Err(corrupt(format!(
                "{} delta ids but {} coordinates for dimension {dim}",
                ids.len(),
                rows.len()
            )));
        }
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("delta row ids are not strictly increasing".to_string()));
        }

        let mut phis = Vec::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let row = &rows[i * dim..(i + 1) * dim];
            if !kind.in_domain_vec(row) {
                return Err(corrupt(format!(
                    "delta row {id} lies outside the domain of {}",
                    kind.short_name()
                )));
            }
            phis.push(kind.phi_sum(row));
        }

        let generation = Generation { ids, rows, phis };
        let mut delta = DeltaSegment {
            kind,
            dim,
            base_len,
            base_ids: base_ids.map(Arc::new),
            next_id,
            sealed: if generation.is_empty() { Vec::new() } else { vec![Arc::new(generation)] },
            active: Generation::default(),
            tombstones: Arc::new(BTreeSet::new()),
            base_tombstones: 0,
        };
        for (id, _) in delta.all_delta_rows() {
            if id >= next_id {
                return Err(corrupt(format!(
                    "delta row id {id} is at or beyond the issue counter {next_id}"
                )));
            }
            if delta.base_index_of(id).is_some() {
                return Err(corrupt(format!("delta row id {id} collides with a backend point")));
            }
        }
        if delta.base_ids.as_ref().is_some_and(|m| m.last().is_some_and(|&last| last >= next_id))
            || (delta.base_ids.is_none() && base_len > next_id as usize)
        {
            return Err(corrupt(format!("backend ids exceed the issue counter {next_id}")));
        }
        let mut tombstones = BTreeSet::new();
        let mut base_tombstones = 0;
        for id in tombstone_list {
            let on_base = delta.base_index_of(id).is_some();
            if !on_base && delta.delta_index_of(id).is_none() {
                return Err(corrupt(format!("tombstone {id} names no backend or delta point")));
            }
            if !tombstones.insert(id) {
                return Err(corrupt(format!("tombstone {id} appears twice")));
            }
            if on_base {
                base_tombstones += 1;
            }
        }
        delta.tombstones = Arc::new(tombstones);
        delta.base_tombstones = base_tombstones;
        Ok(delta)
    }
}

fn corrupt(message: String) -> CoreError {
    CoreError::from(PersistError::Corrupt(format!("delta log: {message}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment() -> DeltaSegment {
        DeltaSegment::new(DivergenceKind::ItakuraSaito, 2, 3).unwrap()
    }

    #[test]
    fn insert_issues_monotone_ids_and_tracks_liveness() {
        let mut delta = segment();
        assert!(delta.is_trivial());
        assert_eq!(delta.live_len(), 3);
        let a = delta.insert(&[1.0, 2.0]).unwrap();
        let b = delta.insert(&[3.0, 4.0]).unwrap();
        assert_eq!((a.0, b.0), (3, 4));
        assert_eq!(delta.live_len(), 5);
        assert!(delta.is_live(a));
        assert!(delta.is_live(PointId(0)));
        assert!(!delta.is_live(PointId(9)));
        assert!(!delta.is_trivial());
        let rows: Vec<_> = delta.live_delta_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, a);
        assert_eq!(rows[0].2, &[1.0, 2.0]);
        assert!((rows[0].1 - DivergenceKind::ItakuraSaito.phi_sum(&[1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn insert_validates_dimensionality_and_domain() {
        let mut delta = segment();
        assert!(matches!(
            delta.insert(&[1.0]),
            Err(CoreError::QueryDimensionMismatch { expected: 2, actual: 1 })
        ));
        // Itakura-Saito requires strictly positive coordinates.
        assert!(matches!(
            delta.insert(&[1.0, -2.0]),
            Err(CoreError::Bregman(BregmanError::OutOfDomain { .. }))
        ));
        assert_eq!(delta.delta_rows(), 0, "failed inserts append nothing");
        assert_eq!(delta.next_id(), 3, "failed inserts issue no id");
    }

    #[test]
    fn deletes_are_idempotent_and_split_by_side() {
        let mut delta = segment();
        let inserted = delta.insert(&[1.0, 2.0]).unwrap();
        assert!(delta.delete(PointId(1)), "backend point");
        assert!(!delta.delete(PointId(1)), "already tombstoned");
        assert!(delta.delete(inserted), "delta row");
        assert!(!delta.delete(PointId(77)), "never issued");
        assert_eq!(delta.base_tombstone_count(), 1);
        assert_eq!(delta.tombstone_count(), 2);
        assert_eq!(delta.live_len(), 2);
        assert_eq!(delta.live_base_entries().count(), 2);
        assert_eq!(delta.live_delta_rows().count(), 0);
    }

    #[test]
    fn idempotent_delete_leaves_snapshots_shared() {
        let mut delta = segment();
        let snapshot = delta.clone();
        assert!(!delta.delete(PointId(77)), "never issued");
        assert_eq!(delta, snapshot, "no-op delete must not dirty the segment");
        assert!(!delta.has_pending_writes());
        assert!(delta.delete(PointId(0)));
        assert!(!delta.delete(PointId(0)), "second delete is a no-op");
        let dirty = delta.clone();
        assert!(!delta.delete(PointId(0)));
        assert_eq!(delta, dirty);
    }

    #[test]
    fn active_generation_seals_at_threshold() {
        let mut delta = DeltaSegment::new(DivergenceKind::SquaredEuclidean, 1, 0).unwrap();
        for i in 0..SEAL_THRESHOLD {
            delta.insert(&[i as f64]).unwrap();
        }
        assert_eq!(delta.sealed_generations(), 1, "threshold seals the active generation");
        delta.insert(&[-1.0]).unwrap();
        assert_eq!(delta.sealed_generations(), 1);
        assert_eq!(delta.delta_rows(), SEAL_THRESHOLD + 1);
        // The chain scans in ascending id order across the seam.
        let ids: Vec<u32> = delta.live_delta_rows().map(|(id, _, _)| id.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), SEAL_THRESHOLD + 1);
        assert!(delta.is_live(PointId(0)));
        assert!(delta.is_live(PointId(SEAL_THRESHOLD as u32)));
        assert!(delta.delete(PointId(3)), "sealed-generation rows stay deletable");
        // An explicit seal freezes the tail; an empty active seals to nothing.
        delta.seal();
        assert_eq!(delta.sealed_generations(), 2);
        delta.seal();
        assert_eq!(delta.sealed_generations(), 2);
    }

    #[test]
    fn snapshots_diverge_from_the_segment_they_were_taken_from() {
        let mut delta = segment();
        delta.insert(&[1.0, 2.0]).unwrap();
        delta.seal();
        let snapshot = delta.clone();
        delta.insert(&[5.0, 6.0]).unwrap();
        delta.delete(PointId(0));
        assert_eq!(snapshot.delta_rows(), 1, "snapshot is frozen");
        assert_eq!(snapshot.tombstone_count(), 0);
        assert_eq!(delta.delta_rows(), 2);
        assert_eq!(delta.tombstone_count(), 1);
    }

    #[test]
    fn carry_row_reappends_under_a_foreign_id() {
        let mut delta = segment();
        delta.carry_row(PointId(7), &[1.0, 2.0]).unwrap();
        assert_eq!(delta.next_id(), 8);
        assert!(delta.is_live(PointId(7)));
        assert!(!delta.is_live(PointId(3)), "skipped ids were never issued here");
        // Below the issue counter is a reuse, rejected.
        assert!(delta.carry_row(PointId(5), &[1.0, 2.0]).is_err());
        // Domain violations append nothing.
        assert!(delta.carry_row(PointId(9), &[1.0, -2.0]).is_err());
        assert_eq!(delta.delta_rows(), 1);
        let carried: Vec<_> = delta.delta_rows_from(7).map(|(id, _)| id.0).collect();
        assert_eq!(carried, vec![7]);
        assert_eq!(delta.delta_rows_from(8).count(), 0);
    }

    #[test]
    fn parked_segment_serves_nothing_but_stays_writable() {
        let mut delta =
            DeltaSegment::rebased(DivergenceKind::ItakuraSaito, 2, vec![0, 2, 5], 6).unwrap();
        delta.insert(&[1.0, 2.0]).unwrap();
        let parked = delta.parked();
        assert_eq!(parked.live_len(), 0);
        assert_eq!(parked.base_tombstone_count(), 3);
        assert_eq!(parked.delta_rows(), 0, "parking drains the chain");
        assert_eq!(parked.next_id(), delta.next_id(), "issue counter carries forward");
        assert!(!parked.is_live(PointId(2)));
        let mut revived = parked.clone();
        let id = revived.insert(&[3.0, 4.0]).unwrap();
        assert_eq!(id.0, 7);
        assert_eq!(revived.live_len(), 1);
        // The parked form roundtrips through the log.
        let bytes = parked.to_log_bytes();
        let restored =
            DeltaSegment::from_log_bytes(&bytes, DivergenceKind::ItakuraSaito, 2, 3).unwrap();
        assert_eq!(restored, parked);
    }

    #[test]
    fn rebased_mapping_translates_internal_ids() {
        let delta =
            DeltaSegment::rebased(DivergenceKind::ItakuraSaito, 2, vec![0, 2, 5], 6).unwrap();
        assert_eq!(delta.base_len(), 3);
        assert_eq!(delta.external_of(1), PointId(2));
        assert!(delta.is_live(PointId(5)));
        assert!(!delta.is_live(PointId(1)), "id 1 was compacted away");
        assert!(!delta.is_trivial(), "a non-identity mapping must route through the overlay");
        // A contiguous mapping collapses to the identity.
        let identity =
            DeltaSegment::rebased(DivergenceKind::ItakuraSaito, 2, vec![0, 1, 2], 3).unwrap();
        assert!(identity.is_trivial());
        // Invalid mappings are rejected.
        assert!(DeltaSegment::rebased(DivergenceKind::ItakuraSaito, 2, vec![2, 1], 6).is_err());
        assert!(DeltaSegment::rebased(DivergenceKind::ItakuraSaito, 2, vec![0, 9], 6).is_err());
    }

    #[test]
    fn log_roundtrip_preserves_everything() {
        let mut delta =
            DeltaSegment::rebased(DivergenceKind::Exponential, 2, vec![0, 2, 5], 7).unwrap();
        let a = delta.insert(&[1.0, -2.0]).unwrap();
        delta.insert(&[0.5, 0.25]).unwrap();
        delta.delete(PointId(2));
        delta.delete(a);
        let bytes = delta.to_log_bytes();
        let restored =
            DeltaSegment::from_log_bytes(&bytes, DivergenceKind::Exponential, 2, 3).unwrap();
        assert_eq!(restored, delta);
    }

    #[test]
    fn log_roundtrip_flattens_a_multi_generation_chain() {
        let mut delta = DeltaSegment::new(DivergenceKind::SquaredEuclidean, 1, 2).unwrap();
        delta.insert(&[10.0]).unwrap();
        delta.seal();
        delta.insert(&[11.0]).unwrap();
        delta.insert(&[12.0]).unwrap();
        delta.seal();
        delta.insert(&[13.0]).unwrap();
        delta.delete(PointId(3));
        assert_eq!(delta.sealed_generations(), 2);
        let bytes = delta.to_log_bytes();
        let restored =
            DeltaSegment::from_log_bytes(&bytes, DivergenceKind::SquaredEuclidean, 1, 2).unwrap();
        assert_eq!(restored.sealed_generations(), 1, "replay lands in generation 0");
        assert_eq!(restored, delta, "chain shape is not part of logical equality");
        let rows: Vec<f64> = restored.live_delta_rows().map(|(_, _, row)| row[0]).collect();
        assert_eq!(rows, vec![10.0, 12.0, 13.0]);
    }

    #[test]
    fn log_rejects_mismatches_and_corruption() {
        let mut delta = segment();
        delta.insert(&[1.0, 2.0]).unwrap();
        delta.delete(PointId(0));
        let bytes = delta.to_log_bytes();

        let err = |e: CoreError| e.to_string();
        // Wrong divergence, dimensionality, backend size.
        let e =
            DeltaSegment::from_log_bytes(&bytes, DivergenceKind::Exponential, 2, 3).unwrap_err();
        assert!(err(e).contains("divergence"), "kind mismatch must be descriptive");
        let e =
            DeltaSegment::from_log_bytes(&bytes, DivergenceKind::ItakuraSaito, 3, 3).unwrap_err();
        assert!(err(e).contains("dimensional"));
        let e =
            DeltaSegment::from_log_bytes(&bytes, DivergenceKind::ItakuraSaito, 2, 9).unwrap_err();
        assert!(err(e).contains("backend"));

        // Flipped payload byte fails the checksum; truncation is corrupt.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(DeltaSegment::from_log_bytes(&flipped, DivergenceKind::ItakuraSaito, 2, 3).is_err());
        let truncated = &bytes[..bytes.len() - 5];
        assert!(
            DeltaSegment::from_log_bytes(truncated, DivergenceKind::ItakuraSaito, 2, 3).is_err()
        );
    }

    #[test]
    fn log_rejects_semantic_corruption() {
        // A delta row id colliding with a backend point.
        let mut delta = segment();
        delta.insert(&[1.0, 2.0]).unwrap();
        let mut hostile = delta.clone();
        hostile.active.ids[0] = 1; // collides with backend id 1
        let bytes = hostile.to_log_bytes();
        let e = DeltaSegment::from_log_bytes(&bytes, DivergenceKind::ItakuraSaito, 2, 3)
            .unwrap_err()
            .to_string();
        assert!(e.contains("collides"), "{e}");

        // A tombstone naming no known point.
        let mut hostile = delta.clone();
        Arc::make_mut(&mut hostile.tombstones).insert(99);
        let bytes = hostile.to_log_bytes();
        let e = DeltaSegment::from_log_bytes(&bytes, DivergenceKind::ItakuraSaito, 2, 3)
            .unwrap_err()
            .to_string();
        assert!(e.contains("tombstone"), "{e}");

        // A row outside the divergence domain.
        let mut hostile = delta.clone();
        hostile.active.rows[1] = -4.0;
        let bytes = hostile.to_log_bytes();
        let e = DeltaSegment::from_log_bytes(&bytes, DivergenceKind::ItakuraSaito, 2, 3)
            .unwrap_err()
            .to_string();
        assert!(e.contains("domain"), "{e}");
    }
}
