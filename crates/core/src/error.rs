//! Error type for the BrePartition core.

use std::fmt;

use bregman::BregmanError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building or querying a BrePartition index.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The selected divergence cannot be used with dimensionality
    /// partitioning (e.g. KL-style divergences, per the paper).
    UnsupportedDivergence {
        /// Short name of the offending divergence.
        divergence: String,
    },
    /// The dataset is empty or otherwise unusable.
    EmptyDataset,
    /// The query's dimensionality does not match the indexed data.
    QueryDimensionMismatch {
        /// Dimensionality the index was built for.
        expected: usize,
        /// Dimensionality of the supplied query.
        actual: usize,
    },
    /// The requested partition count is invalid for the dimensionality.
    InvalidPartitionCount {
        /// Requested number of partitions.
        requested: usize,
        /// Dimensionality of the data.
        dim: usize,
    },
    /// An invalid probability guarantee was supplied to the approximate
    /// search (must be in `(0, 1]`).
    InvalidProbability(f64),
    /// Saving or opening a persistent index failed (I/O error, bad magic or
    /// version, checksum mismatch, or a corrupt artifact). The message
    /// carries the underlying [`pagestore::PersistError`] rendering.
    Persist(String),
    /// A lower-level Bregman primitive failed.
    Bregman(BregmanError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedDivergence { divergence } => write!(
                f,
                "divergence {divergence} is not cumulative across partitions and cannot be used with BrePartition"
            ),
            CoreError::EmptyDataset => write!(f, "cannot build an index over an empty dataset"),
            CoreError::QueryDimensionMismatch { expected, actual } => {
                write!(f, "query has {actual} dimensions but the index was built for {expected}")
            }
            CoreError::InvalidPartitionCount { requested, dim } => {
                write!(f, "cannot split {dim} dimensions into {requested} partitions")
            }
            CoreError::InvalidProbability(p) => {
                write!(f, "probability guarantee must be in (0, 1], got {p}")
            }
            CoreError::Persist(message) => write!(f, "persistence error: {message}"),
            CoreError::Bregman(e) => write!(f, "bregman error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Bregman(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BregmanError> for CoreError {
    fn from(e: BregmanError) -> Self {
        CoreError::Bregman(e)
    }
}

impl From<pagestore::PersistError> for CoreError {
    fn from(e: pagestore::PersistError) -> Self {
        CoreError::Persist(e.to_string())
    }
}

impl From<pagestore::PageStoreError> for CoreError {
    fn from(e: pagestore::PageStoreError) -> Self {
        CoreError::Persist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::UnsupportedDivergence { divergence: "GI".into() };
        assert!(e.to_string().contains("GI"));
        let e = CoreError::QueryDimensionMismatch { expected: 10, actual: 3 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
        let e = CoreError::InvalidPartitionCount { requested: 50, dim: 10 };
        assert!(e.to_string().contains("50"));
        let e = CoreError::InvalidProbability(1.5);
        assert!(e.to_string().contains("1.5"));
        assert!(CoreError::EmptyDataset.to_string().contains("empty"));
    }

    #[test]
    fn bregman_errors_convert_and_expose_source() {
        use std::error::Error;
        let inner = BregmanError::Empty("rows");
        let e: CoreError = inner.clone().into();
        assert_eq!(e, CoreError::Bregman(inner));
        assert!(e.source().is_some());
        assert!(CoreError::EmptyDataset.source().is_none());
    }
}
