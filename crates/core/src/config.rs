//! Index configuration.

/// How many partitions to use.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum PartitionCount {
    /// Derive the optimized `M` from the cost model of Theorem 4.
    #[default]
    Auto,
    /// Use a fixed number of partitions (clamped to `[1, d]` at build time).
    Fixed(usize),
}

/// Which dimensionality-partitioning strategy to use.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Pearson-Correlation-Coefficient-based Partition (the paper's PCCP):
    /// correlated dimensions are spread across different partitions.
    #[default]
    Pccp,
    /// Naive equal, contiguous split (the paper's baseline used in the PCCP
    /// ablation of Fig. 10).
    EqualContiguous,
}

/// Configuration of a [`crate::BrePartitionIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrePartitionConfig {
    /// Number of partitions (`Auto` applies Theorem 4).
    pub partitions: PartitionCount,
    /// Partitioning strategy (PCCP by default).
    pub strategy: PartitionStrategy,
    /// Leaf capacity of every subspace BB-tree.
    pub leaf_capacity: usize,
    /// Page size of the simulated disk holding the full-resolution points.
    pub page_size_bytes: usize,
    /// Buffer-pool capacity in pages used for queries issued through
    /// [`crate::BrePartitionIndex::knn`]. Zero disables caching so every
    /// page access is counted as physical I/O (the paper's per-query metric).
    pub buffer_pool_pages: usize,
    /// Number of data points sampled when fitting the cost model and the
    /// PCCP correlation matrix.
    pub sample_size: usize,
    /// Seed for every randomized choice (sampling, k-means initialization,
    /// PCCP's random first dimension).
    pub seed: u64,
    /// Keep an in-memory `f32` copy of the rows and screen refine
    /// candidates against it before touching data pages. Screening is
    /// *conservative* — a candidate is skipped only when its `f32`
    /// divergence minus a rigorous rounding bound already exceeds the
    /// current `k`-th best — and every surviving candidate is re-ranked at
    /// full `f64` resolution, so the final neighbors (ids *and* distances)
    /// are bit-identical to the unscreened path. Costs `4·d` bytes per
    /// point of resident memory; off by default.
    pub f32_candidates: bool,
}

impl Default for BrePartitionConfig {
    fn default() -> Self {
        Self {
            partitions: PartitionCount::Auto,
            strategy: PartitionStrategy::Pccp,
            leaf_capacity: 32,
            page_size_bytes: 32 * 1024,
            buffer_pool_pages: 0,
            sample_size: 256,
            seed: 0xB5EED,
            f32_candidates: false,
        }
    }
}

impl BrePartitionConfig {
    /// Use a fixed number of partitions.
    pub fn with_partitions(mut self, m: usize) -> Self {
        self.partitions = PartitionCount::Fixed(m);
        self
    }

    /// Select the partitioning strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the simulated disk page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size_bytes = bytes;
        self
    }

    /// Set the leaf capacity of the subspace BB-trees.
    pub fn with_leaf_capacity(mut self, capacity: usize) -> Self {
        self.leaf_capacity = capacity;
        self
    }

    /// Set the query-time buffer-pool size in pages.
    pub fn with_buffer_pool_pages(mut self, pages: usize) -> Self {
        self.buffer_pool_pages = pages;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable the `f32` candidate-screening tier.
    pub fn with_f32_candidates(mut self, enabled: bool) -> Self {
        self.f32_candidates = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_style_settings() {
        let c = BrePartitionConfig::default();
        assert_eq!(c.partitions, PartitionCount::Auto);
        assert_eq!(c.strategy, PartitionStrategy::Pccp);
        assert_eq!(c.page_size_bytes, 32 * 1024);
        assert_eq!(c.buffer_pool_pages, 0);
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = BrePartitionConfig::default()
            .with_partitions(12)
            .with_strategy(PartitionStrategy::EqualContiguous)
            .with_page_size(4096)
            .with_leaf_capacity(8)
            .with_buffer_pool_pages(64)
            .with_seed(7);
        assert_eq!(c.partitions, PartitionCount::Fixed(12));
        assert_eq!(c.strategy, PartitionStrategy::EqualContiguous);
        assert_eq!(c.page_size_bytes, 4096);
        assert_eq!(c.leaf_capacity, 8);
        assert_eq!(c.buffer_pool_pages, 64);
        assert_eq!(c.seed, 7);
    }
}
