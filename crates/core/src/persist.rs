//! Index persistence: build once, open many (the offline-construction
//! lifecycle the paper assumes and a serving deployment requires).
//!
//! [`BrePartitionIndex::save`] writes an index *directory* with two files:
//!
//! * `index.meta` — a sealed envelope (`BREPIDX1`, see
//!   [`pagestore::format`]) holding everything the search needs besides the
//!   data pages: the divergence kind, the build configuration, the
//!   dimensionality partitioning, the per-point transform tuples
//!   `P(x) = (α_x, γ_x)`, the per-dimension moments used by the approximate
//!   extension, the construction report, and every subspace BB-tree
//!   (serialized with [`bbtree::serial`]).
//! * `pages.bin` — the shared page file holding the full-resolution points
//!   in BB-forest leaf order (format in [`pagestore::file`]).
//!
//! [`BrePartitionIndex::open`] restores the metadata into memory and serves
//! the data pages from the page file through the same
//! [`pagestore::BufferPool`] path, so a reopened index answers every query
//! with the same neighbors *and the same per-query I/O counters* as the
//! freshly built one. The only part not persisted is the fitted cost model
//! (a build-time artifact used to choose `M`);
//! [`BrePartitionIndex::cost_model`] returns `None` after open.
//!
//! The per-point `Φ(x) = Σ_j φ(x_j)` column consumed by the prepared-query
//! refine kernel needs no dedicated field in this envelope: the persisted
//! per-subspace `α_x` column *is* `Φ` split across disjoint, exhaustive
//! partitions, so `open` reassembles `Φ(x) = Σ_s α_x(s)` — every
//! pre-existing `BREPIDX1` envelope migrates transparently. (The flat
//! baselines, which have no transform table, persist an explicit column:
//! see `bbtree::disk::PHI_FILE` and the version-2 VA-file metadata.)

use std::path::Path;
use std::sync::Arc;

use bbtree::BBTree;
use bregman::DivergenceKind;
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError};
use pagestore::PageStore;

use crate::bbforest::BBForest;
use crate::config::{BrePartitionConfig, PartitionCount, PartitionStrategy};
use crate::error::{CoreError, Result};
use crate::partition::Partitioning;
use crate::search::{BrePartitionIndex, BuildReport};
use crate::transform::TransformedDataset;

/// Magic tag of the index metadata artifact.
pub const INDEX_MAGIC: [u8; 8] = *b"BREPIDX1";

/// Format version this build writes (and reads, alongside
/// [`LEGACY_INDEX_VERSION`]). Version 2 appends the `f32_candidates`
/// screening knob to the serialized configuration.
pub const INDEX_VERSION: u32 = 2;

/// The pre-screening-knob format, still accepted on open (the knob
/// defaults to off).
pub const LEGACY_INDEX_VERSION: u32 = 1;

/// File name of the index metadata within an index directory.
pub const META_FILE: &str = "index.meta";

/// File name of the page file within an index directory.
pub const PAGES_FILE: &str = "pages.bin";

impl BrePartitionIndex {
    /// Persist the index to a directory ([`META_FILE`] + [`PAGES_FILE`]),
    /// creating it if needed. See the [module docs](crate::persist) for the
    /// format.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(PersistError::from)?;

        let mut w = ByteWriter::new();
        w.put_str(self.kind().short_name());
        write_config(&mut w, self.config());
        write_partitioning(&mut w, self.partitioning());

        // Transform tuples.
        let transformed = self.transformed();
        w.put_usize(transformed.len());
        w.put_usize(transformed.partitions());
        let tuples = transformed.raw_tuples();
        w.put_usize(tuples.len());
        for t in tuples {
            w.put_f64(t[0]);
            w.put_f64(t[1]);
        }

        w.put_f64_seq(self.dimension_means());
        w.put_f64_seq(self.dimension_variances());

        let report = self.build_report();
        w.put_usize(report.partitions);
        w.put_f64(report.total_seconds);
        w.put_f64(report.forest_seconds);
        w.put_u64(report.pages_written);

        // Subspace trees as length-prefixed sealed blobs.
        let trees = self.forest().trees();
        w.put_usize(trees.len());
        for tree in trees {
            w.put_bytes(&tree.to_bytes());
        }

        std::fs::write(dir.join(META_FILE), seal(&INDEX_MAGIC, INDEX_VERSION, &w.into_vec()))
            .map_err(PersistError::from)?;
        self.forest().store().save(&dir.join(PAGES_FILE))?;
        Ok(())
    }

    /// Read just the divergence kind from an index directory written by
    /// [`BrePartitionIndex::save`], without restoring trees or transforms.
    ///
    /// The divergence is the first field of the metadata envelope, so a
    /// self-describing caller (the `brepartition` façade) can cross-check a
    /// directory against its expectation — and produce a descriptive
    /// mismatch error — before paying for the full open.
    pub fn peek_kind(dir: &Path) -> Result<DivergenceKind> {
        let meta = std::fs::read(dir.join(META_FILE)).map_err(PersistError::from)?;
        let (payload, _) = unseal_index(&meta)?;
        let mut r = ByteReader::new(payload);
        let kind_name = r.take_str()?;
        DivergenceKind::parse(&kind_name)
            .map_err(|_| corrupt(format!("unknown divergence kind {kind_name:?}")))
    }

    /// Open an index directory written by [`BrePartitionIndex::save`].
    ///
    /// The metadata (partitioning, transforms, tree structures) is loaded
    /// into memory; data pages are served from the page file on demand. The
    /// restored index answers queries identically to the index that was
    /// saved — same neighbors, same candidate sets, same cold-pool I/O
    /// counters.
    pub fn open(dir: &Path) -> Result<BrePartitionIndex> {
        let meta = std::fs::read(dir.join(META_FILE)).map_err(PersistError::from)?;
        let (payload, version) = unseal_index(&meta)?;
        let mut r = ByteReader::new(payload);

        let kind_name = r.take_str()?;
        let kind = DivergenceKind::parse(&kind_name)
            .map_err(|_| corrupt(format!("unknown divergence kind {kind_name:?}")))?;
        let config = read_config(&mut r, version)?;
        let partitioning = read_partitioning(&mut r)?;

        let n = r.take_usize()?;
        let m = r.take_usize()?;
        let tuple_count = r.take_usize()?;
        if tuple_count.checked_mul(16).is_none_or(|bytes| bytes > r.remaining()) {
            return Err(corrupt(format!("transform table of {tuple_count} tuples is truncated")));
        }
        let mut tuples = Vec::with_capacity(tuple_count);
        for _ in 0..tuple_count {
            let alpha = r.take_f64()?;
            let gamma = r.take_f64()?;
            tuples.push([alpha, gamma]);
        }
        let transformed = TransformedDataset::from_raw(n, m, tuples)
            .ok_or_else(|| corrupt(format!("transform table is not {n} × {m}")))?;
        if m != partitioning.len() {
            return Err(corrupt(format!(
                "transforms cover {m} subspaces, partitioning has {}",
                partitioning.len()
            )));
        }

        let dim_means = r.take_f64_seq()?;
        let dim_vars = r.take_f64_seq()?;
        if dim_means.len() != partitioning.dim() || dim_vars.len() != partitioning.dim() {
            return Err(corrupt(format!(
                "per-dimension moments cover {} / {} dimensions, data is {}-dimensional",
                dim_means.len(),
                dim_vars.len(),
                partitioning.dim()
            )));
        }

        let build = BuildReport {
            partitions: r.take_usize()?,
            total_seconds: r.take_f64()?,
            forest_seconds: r.take_f64()?,
            pages_written: r.take_u64()?,
        };

        let tree_count = r.take_usize()?;
        if tree_count != partitioning.len() {
            return Err(corrupt(format!(
                "{tree_count} subspace trees for {} partitions",
                partitioning.len()
            )));
        }
        let mut trees = Vec::with_capacity(tree_count);
        for s in 0..tree_count {
            let blob = r.take_bytes()?;
            let tree = BBTree::from_bytes(blob)?;
            if tree.dim() != partitioning.subspace(s).len() {
                return Err(corrupt(format!(
                    "subspace {s} tree is {}-dimensional, subspace has {} dimensions",
                    tree.dim(),
                    partitioning.subspace(s).len()
                )));
            }
            if tree.len() != n {
                return Err(corrupt(format!(
                    "subspace {s} tree indexes {} points, dataset has {n}",
                    tree.len()
                )));
            }
            trees.push(tree);
        }
        r.expect_end()?;

        let store = PageStore::open(&dir.join(PAGES_FILE))?;
        if store.point_count() != n {
            return Err(corrupt(format!(
                "page file holds {} points, index metadata describes {n}",
                store.point_count()
            )));
        }
        if store.dim() != partitioning.dim() {
            return Err(corrupt(format!(
                "page file records are {}-dimensional, index is {}-dimensional",
                store.dim(),
                partitioning.dim()
            )));
        }
        // Every tree must index exactly the points the page file holds;
        // an id outside the store would be silently dropped during refine.
        for (s, tree) in trees.iter().enumerate() {
            if let Some(orphan) =
                tree.points_in_leaf_order().iter().find(|p| store.address_of(p.0).is_none())
            {
                return Err(corrupt(format!(
                    "subspace {s} tree indexes point {orphan} which has no address in the page file"
                )));
            }
        }

        let forest = BBForest::from_parts(kind, trees, Arc::new(store), build.forest_seconds);
        Ok(BrePartitionIndex::from_restored(
            kind,
            config,
            partitioning,
            transformed,
            forest,
            dim_means,
            dim_vars,
            build,
        ))
    }
}

fn corrupt(message: String) -> CoreError {
    CoreError::from(PersistError::Corrupt(message))
}

/// Unseal the metadata envelope, accepting both the current and the legacy
/// format version; returns the payload and which version it was sealed as.
fn unseal_index(meta: &[u8]) -> Result<(&[u8], u32)> {
    match unseal(&INDEX_MAGIC, INDEX_VERSION, meta) {
        Ok(payload) => Ok((payload, INDEX_VERSION)),
        Err(PersistError::UnsupportedVersion { found: LEGACY_INDEX_VERSION, .. }) => {
            Ok((unseal(&INDEX_MAGIC, LEGACY_INDEX_VERSION, meta)?, LEGACY_INDEX_VERSION))
        }
        Err(e) => Err(e.into()),
    }
}

fn write_config(w: &mut ByteWriter, config: &BrePartitionConfig) {
    match config.partitions {
        PartitionCount::Auto => {
            w.put_u8(0);
            w.put_u64(0);
        }
        PartitionCount::Fixed(m) => {
            w.put_u8(1);
            w.put_usize(m);
        }
    }
    w.put_u8(match config.strategy {
        PartitionStrategy::Pccp => 0,
        PartitionStrategy::EqualContiguous => 1,
    });
    w.put_usize(config.leaf_capacity);
    w.put_usize(config.page_size_bytes);
    w.put_usize(config.buffer_pool_pages);
    w.put_usize(config.sample_size);
    w.put_u64(config.seed);
    w.put_u8(config.f32_candidates as u8);
}

fn read_config(r: &mut ByteReader<'_>, version: u32) -> Result<BrePartitionConfig> {
    let partitions = match r.take_u8()? {
        0 => {
            r.take_u64()?;
            PartitionCount::Auto
        }
        1 => PartitionCount::Fixed(r.take_usize()?),
        tag => return Err(corrupt(format!("unknown partition-count tag {tag}"))),
    };
    let strategy = match r.take_u8()? {
        0 => PartitionStrategy::Pccp,
        1 => PartitionStrategy::EqualContiguous,
        tag => return Err(corrupt(format!("unknown partition-strategy tag {tag}"))),
    };
    Ok(BrePartitionConfig {
        partitions,
        strategy,
        leaf_capacity: r.take_usize()?,
        page_size_bytes: r.take_usize()?,
        buffer_pool_pages: r.take_usize()?,
        sample_size: r.take_usize()?,
        seed: r.take_u64()?,
        // Version 1 predates the screening knob: default off.
        f32_candidates: if version >= INDEX_VERSION {
            match r.take_u8()? {
                0 => false,
                1 => true,
                tag => return Err(corrupt(format!("unknown f32-candidates flag {tag}"))),
            }
        } else {
            false
        },
    })
}

fn write_partitioning(w: &mut ByteWriter, partitioning: &Partitioning) {
    w.put_usize(partitioning.len());
    for dims in partitioning.subspaces() {
        let dims: Vec<u64> = dims.iter().map(|&d| d as u64).collect();
        w.put_u64_seq(&dims);
    }
}

fn read_partitioning(r: &mut ByteReader<'_>) -> Result<Partitioning> {
    let m = r.take_usize()?;
    let mut subspaces = Vec::with_capacity(m.min(1 << 16));
    for _ in 0..m {
        let dims = r.take_u64_seq()?;
        subspaces.push(dims.into_iter().map(|d| d as usize).collect());
    }
    // `Partitioning::new` re-validates disjointness and coverage, so a
    // corrupted partition table cannot produce an index that reads out of
    // bounds.
    Partitioning::new(subspaces)
        .map_err(|e| corrupt(format!("invalid partitioning in metadata: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bregman::DenseDataset;
    use datagen::correlated::CorrelatedSpec;
    use pagestore::BufferPool;

    fn dataset(n: usize, dim: usize, seed: u64) -> DenseDataset {
        CorrelatedSpec {
            n,
            dim,
            blocks: (dim / 4).max(1),
            correlation: 0.8,
            mean: 5.0,
            scale: 1.0,
            seed,
        }
        .generate()
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("brepartition-core-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_open_roundtrip_preserves_queries_and_io() {
        let ds = dataset(400, 16, 11);
        let config = BrePartitionConfig::default()
            .with_partitions(4)
            .with_leaf_capacity(16)
            .with_page_size(2048);
        let built = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config).unwrap();
        let dir = temp_dir("roundtrip");
        built.save(&dir).unwrap();

        assert_eq!(
            BrePartitionIndex::peek_kind(&dir).unwrap(),
            DivergenceKind::ItakuraSaito,
            "peek must read the kind without a full open"
        );
        let reopened = BrePartitionIndex::open(&dir).unwrap();
        assert_eq!(reopened.kind(), built.kind());
        assert_eq!(reopened.len(), built.len());
        assert_eq!(reopened.dim(), built.dim());
        assert_eq!(reopened.partitions(), built.partitions());
        assert_eq!(reopened.partitioning(), built.partitioning());
        assert_eq!(reopened.config(), built.config());
        assert_eq!(reopened.build_report(), built.build_report());
        assert_eq!(reopened.forest().store().backend_kind(), "file");
        assert!(reopened.cost_model().is_none(), "cost model is a build-time artifact");

        for qi in [0usize, 33, 199, 350] {
            let query = ds.row(qi).to_vec();
            let a = built.knn(&query, 9).unwrap();
            let b = reopened.knn(&query, 9).unwrap();
            assert_eq!(a.neighbors, b.neighbors, "query {qi}");
            assert_eq!(a.stats.candidates, b.stats.candidates, "query {qi}");
            assert_eq!(a.stats.io, b.stats.io, "query {qi}: cold-pool I/O must match");
            assert_eq!(a.bounds, b.bounds, "query {qi}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn approximate_search_works_on_a_reopened_index() {
        let ds = dataset(300, 12, 12);
        let config = BrePartitionConfig::default()
            .with_partitions(3)
            .with_leaf_capacity(8)
            .with_page_size(1024);
        let built = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config).unwrap();
        let dir = temp_dir("approx");
        built.save(&dir).unwrap();
        let reopened = BrePartitionIndex::open(&dir).unwrap();
        let approx = crate::ApproximateConfig::with_probability(0.9);
        let query = ds.row(17).to_vec();
        let a = built.knn_approximate(&query, 8, &approx).unwrap();
        let b = reopened.knn_approximate(&query, 8, &approx).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(
            a.coefficient, b.coefficient,
            "shrink coefficient depends only on persisted moments"
        );
        assert_eq!(a.stats.io, b.stats.io);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_pool_behaves_identically_after_reopen() {
        let ds = dataset(500, 16, 13);
        let config = BrePartitionConfig::default()
            .with_partitions(4)
            .with_leaf_capacity(16)
            .with_page_size(2048);
        let built = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config).unwrap();
        let dir = temp_dir("warm");
        built.save(&dir).unwrap();
        let reopened = BrePartitionIndex::open(&dir).unwrap();
        let query = ds.row(42).to_vec();
        let mut pool_a = BufferPool::new(64);
        let mut pool_b = BufferPool::new(64);
        for _ in 0..3 {
            let a = built.knn_with_pool(&mut pool_a, &query, 10).unwrap();
            let b = reopened.knn_with_pool(&mut pool_b, &query, 10).unwrap();
            assert_eq!(a.neighbors, b.neighbors);
        }
        assert_eq!(pool_a.stats(), pool_b.stats(), "hit/miss pattern must match");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_and_corrupt_directories() {
        let missing = temp_dir("missing");
        assert!(matches!(BrePartitionIndex::open(&missing), Err(CoreError::Persist(_))));

        let ds = dataset(120, 8, 14);
        let config = BrePartitionConfig::default().with_partitions(2).with_leaf_capacity(8);
        let built = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &ds, &config).unwrap();
        let dir = temp_dir("corrupt");
        built.save(&dir).unwrap();
        // Flip a byte in the metadata payload: the checksum must catch it.
        let meta_path = dir.join(META_FILE);
        let mut bytes = std::fs::read(&meta_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&meta_path, &bytes).unwrap();
        match BrePartitionIndex::open(&dir) {
            Err(CoreError::Persist(message)) => {
                assert!(
                    message.contains("checksum") || message.contains("corrupt"),
                    "unexpected persist error: {message}"
                );
            }
            other => panic!("expected persist error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
