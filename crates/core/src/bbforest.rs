//! The BB-forest: one BB-tree per subspace over a shared disk layout
//! (Section 6).
//!
//! After dimensionality partitioning, every subspace gets its own BB-tree
//! built over the projected (low-dimensional) points. The full-resolution
//! points are laid out on the simulated disk **once**, in the leaf order of
//! the first subspace's tree; every other tree stores only point ids that
//! resolve through the shared [`pagestore::DiskLayout`]. Thanks to PCCP the
//! clusters of different subspaces are similar, so the candidates produced
//! by different subspaces tend to live on the same pages and the union of
//! candidates costs few extra page reads — the effect Fig. 10 measures.

use std::sync::Arc;

use bbtree::{BBTree, BBTreeBuilder, BBTreeConfig, SearchStats};
use bregman::{
    DenseDataset, DivergenceKind, Exponential, GeneralizedI, ItakuraSaito, PointId,
    SquaredEuclidean,
};
use pagestore::{PageStore, PageStoreConfig};

use crate::error::Result;
use crate::partition::Partitioning;

/// Dispatch a block of code over the concrete divergence selected by a
/// [`DivergenceKind`], binding it to `$div`.
macro_rules! with_divergence {
    ($kind:expr, $div:ident, $body:expr) => {
        match $kind {
            DivergenceKind::SquaredEuclidean => {
                let $div = SquaredEuclidean;
                $body
            }
            DivergenceKind::ItakuraSaito => {
                let $div = ItakuraSaito;
                $body
            }
            DivergenceKind::Exponential => {
                let $div = Exponential;
                $body
            }
            DivergenceKind::GeneralizedI => {
                let $div = GeneralizedI;
                $body
            }
        }
    };
}

/// One BB-tree per subspace plus the shared page store for the
/// full-resolution points.
///
/// The page store sits behind an `Arc`, so cloning the forest (or the index
/// that owns it) shares one disk image instead of duplicating the dataset.
#[derive(Debug, Clone)]
pub struct BBForest {
    kind: DivergenceKind,
    trees: Vec<BBTree>,
    store: Arc<PageStore>,
    /// Seconds spent building the trees and laying out the pages (reported by
    /// the index-construction experiment, Fig. 7).
    build_seconds: f64,
}

impl BBForest {
    /// Build the forest: one tree per subspace over the projected data, and
    /// the shared page store laid out in the first tree's leaf order.
    pub fn build(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        partitioning: &Partitioning,
        tree_config: BBTreeConfig,
        store_config: PageStoreConfig,
    ) -> Result<BBForest> {
        let started = std::time::Instant::now();
        let subspace_data = partitioning.project_dataset(dataset)?;
        let trees: Vec<BBTree> = subspace_data
            .iter()
            .enumerate()
            .map(|(i, sub)| {
                let config =
                    BBTreeConfig { seed: tree_config.seed.wrapping_add(i as u64), ..tree_config };
                with_divergence!(kind, div, BBTreeBuilder::new(div, config).build(sub))
            })
            .collect();
        // Lay the original high-dimensional points out in the first tree's
        // leaf order; all trees share the resulting addresses.
        let order: Vec<u32> = trees
            .first()
            .map(|t| t.points_in_leaf_order().iter().map(|p| p.0).collect())
            .unwrap_or_else(|| (0..dataset.len() as u32).collect());
        let store = PageStore::build_with_order(store_config, dataset.dim(), &order, |pid| {
            dataset.point(PointId(pid))
        });
        let build_seconds = started.elapsed().as_secs_f64();
        Ok(BBForest { kind, trees, store: Arc::new(store), build_seconds })
    }

    /// Reassemble a forest from restored parts (the open-from-disk path).
    pub(crate) fn from_parts(
        kind: DivergenceKind,
        trees: Vec<BBTree>,
        store: Arc<PageStore>,
        build_seconds: f64,
    ) -> BBForest {
        BBForest { kind, trees, store, build_seconds }
    }

    /// The divergence the forest was built for.
    pub fn kind(&self) -> DivergenceKind {
        self.kind
    }

    /// Number of subspace trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The subspace trees.
    pub fn trees(&self) -> &[BBTree] {
        &self.trees
    }

    /// One subspace tree.
    pub fn tree(&self, subspace: usize) -> &BBTree {
        &self.trees[subspace]
    }

    /// The shared page store holding the full-resolution points.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The shared page store as a shareable handle.
    pub fn store_arc(&self) -> Arc<PageStore> {
        Arc::clone(&self.store)
    }

    /// Wall-clock seconds spent building the forest.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Range-query candidates of one subspace: the ids of every point stored
    /// in a leaf whose ball intersects `{x : D_f(x, query_sub) ≤ radius}`.
    pub fn subspace_candidates(
        &self,
        subspace: usize,
        query_sub: &[f64],
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<PointId> {
        let tree = &self.trees[subspace];
        with_divergence!(self.kind, div, tree.range_candidates(&div, query_sub, radius, stats))
    }

    /// Total number of pages in the shared store.
    pub fn page_count(&self) -> usize {
        self.store.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::equal::equal_contiguous;
    use datagen::correlated::CorrelatedSpec;

    fn dataset() -> DenseDataset {
        CorrelatedSpec {
            n: 400,
            dim: 24,
            blocks: 6,
            correlation: 0.8,
            mean: 5.0,
            scale: 1.0,
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn forest_has_one_tree_per_subspace() {
        let ds = dataset();
        let p = equal_contiguous(24, 6).unwrap();
        let forest = BBForest::build(
            DivergenceKind::ItakuraSaito,
            &ds,
            &p,
            BBTreeConfig::with_leaf_capacity(16),
            PageStoreConfig::with_page_size(4096),
        )
        .unwrap();
        assert_eq!(forest.len(), 6);
        assert!(!forest.is_empty());
        assert_eq!(forest.kind(), DivergenceKind::ItakuraSaito);
        assert!(forest.build_seconds() >= 0.0);
        for tree in forest.trees() {
            assert_eq!(tree.len(), ds.len());
            assert_eq!(tree.dim(), 4);
        }
    }

    #[test]
    fn shared_store_addresses_every_point_once() {
        let ds = dataset();
        let p = equal_contiguous(24, 4).unwrap();
        let forest = BBForest::build(
            DivergenceKind::Exponential,
            &ds,
            &p,
            BBTreeConfig::with_leaf_capacity(20),
            PageStoreConfig::with_page_size(8192),
        )
        .unwrap();
        assert_eq!(forest.store().point_count(), ds.len());
        assert_eq!(forest.page_count(), forest.store().page_count());
        for pid in 0..ds.len() as u32 {
            assert!(forest.store().address_of(pid).is_some());
        }
    }

    #[test]
    fn subspace_candidates_cover_all_true_range_members() {
        let ds = dataset();
        let p = equal_contiguous(24, 3).unwrap();
        let forest = BBForest::build(
            DivergenceKind::ItakuraSaito,
            &ds,
            &p,
            BBTreeConfig::with_leaf_capacity(10),
            PageStoreConfig::with_page_size(4096),
        )
        .unwrap();
        let query = ds.row(11);
        let mut sub_query = Vec::new();
        for s in 0..3 {
            p.project_point_into(s, query, &mut sub_query);
            let radius = 0.6;
            let mut stats = SearchStats::new();
            let candidates: std::collections::HashSet<u32> = forest
                .subspace_candidates(s, &sub_query, radius, &mut stats)
                .iter()
                .map(|p| p.0)
                .collect();
            // Every point whose projected divergence is within the radius
            // must be among the candidates.
            let sub_data = ds.project(p.subspace(s)).unwrap();
            for (pid, sub_point) in sub_data.iter() {
                let d = DivergenceKind::ItakuraSaito.divergence(sub_point, &sub_query);
                if d <= radius {
                    assert!(candidates.contains(&pid.0), "missing candidate {pid}");
                }
            }
        }
    }

    #[test]
    fn first_tree_leaf_points_are_contiguous_on_disk() {
        let ds = dataset();
        let p = equal_contiguous(24, 5).unwrap();
        let forest = BBForest::build(
            DivergenceKind::ItakuraSaito,
            &ds,
            &p,
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(24 * 8 * 8), // 8 records per page
        )
        .unwrap();
        let first_tree = forest.tree(0);
        for leaf in first_tree.leaves_in_order() {
            if let bbtree::NodeKind::Leaf { points } = &first_tree.node(leaf).kind {
                let pages: std::collections::HashSet<_> = points
                    .iter()
                    .map(|pid| forest.store().address_of(pid.0).unwrap().page)
                    .collect();
                assert!(pages.len() <= 2, "leaf spans {} pages", pages.len());
            }
        }
    }
}
