//! Per-query cost breakdown reported by the BrePartition index.

use bbtree::SearchStats;
use pagestore::IoStats;

/// Cost breakdown of one BrePartition query, covering the three phases of
/// the framework (bound computation, per-subspace filtering, refinement).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// Seconds spent transforming the query and determining the searching
    /// bounds (Algorithm 4).
    pub bound_seconds: f64,
    /// Seconds spent running the per-subspace range queries.
    pub filter_seconds: f64,
    /// Seconds spent loading candidates and computing exact divergences.
    pub refine_seconds: f64,
    /// Size of the final (union) candidate set.
    pub candidates: usize,
    /// Sum of the per-subspace candidate-set sizes (before the union), a
    /// measure of how much the subspaces overlap.
    pub subspace_candidates_total: usize,
    /// Tree traversal counters accumulated over every subspace.
    pub search: SearchStats,
    /// Physical I/O performed while loading candidates.
    pub io: IoStats,
}

impl QueryStats {
    /// Total wall-clock seconds across the three phases.
    pub fn total_seconds(&self) -> f64 {
        self.bound_seconds + self.filter_seconds + self.refine_seconds
    }

    /// Overlap factor of the subspace candidate sets: the ratio of the summed
    /// subspace candidate counts to the union size (≥ 1; higher means more
    /// overlap, which is what PCCP aims for). Returns 1 when there were no
    /// candidates.
    pub fn overlap_factor(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.subspace_candidates_total as f64 / self.candidates as f64
        }
    }

    /// Accumulate another query's stats into this one (used to average over
    /// a workload).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.bound_seconds += other.bound_seconds;
        self.filter_seconds += other.filter_seconds;
        self.refine_seconds += other.refine_seconds;
        self.candidates += other.candidates;
        self.subspace_candidates_total += other.subspace_candidates_total;
        self.search.accumulate(&other.search);
        self.io.accumulate(&other.io);
    }

    /// Divide every additive counter by `count`, producing per-query means.
    pub fn mean_over(&self, count: usize) -> QueryStats {
        if count == 0 {
            return *self;
        }
        let c = count as f64;
        QueryStats {
            bound_seconds: self.bound_seconds / c,
            filter_seconds: self.filter_seconds / c,
            refine_seconds: self.refine_seconds / c,
            candidates: self.candidates / count,
            subspace_candidates_total: self.subspace_candidates_total / count,
            search: SearchStats {
                nodes_visited: self.search.nodes_visited / count as u64,
                leaves_visited: self.search.leaves_visited / count as u64,
                distance_computations: self.search.distance_computations / count as u64,
                candidates_examined: self.search.candidates_examined / count as u64,
            },
            io: IoStats {
                pages_read: self.io.pages_read / count as u64,
                cache_hits: self.io.cache_hits / count as u64,
                pages_written: self.io.pages_written / count as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_overlap() {
        let stats = QueryStats {
            bound_seconds: 0.1,
            filter_seconds: 0.2,
            refine_seconds: 0.3,
            candidates: 10,
            subspace_candidates_total: 30,
            ..QueryStats::default()
        };
        assert!((stats.total_seconds() - 0.6).abs() < 1e-12);
        assert!((stats.overlap_factor() - 3.0).abs() < 1e-12);
        assert_eq!(QueryStats::default().overlap_factor(), 1.0);
    }

    #[test]
    fn accumulate_and_mean() {
        let mut total = QueryStats::default();
        for _ in 0..4 {
            total.accumulate(&QueryStats {
                bound_seconds: 1.0,
                filter_seconds: 2.0,
                refine_seconds: 3.0,
                candidates: 8,
                subspace_candidates_total: 16,
                search: SearchStats {
                    nodes_visited: 4,
                    leaves_visited: 2,
                    distance_computations: 10,
                    candidates_examined: 8,
                },
                io: IoStats { pages_read: 12, cache_hits: 4, pages_written: 0 },
            });
        }
        let mean = total.mean_over(4);
        assert!((mean.bound_seconds - 1.0).abs() < 1e-12);
        assert_eq!(mean.candidates, 8);
        assert_eq!(mean.search.nodes_visited, 4);
        assert_eq!(mean.io.pages_read, 12);
        // mean_over(0) is the identity.
        assert_eq!(total.mean_over(0).candidates, total.candidates);
    }
}
