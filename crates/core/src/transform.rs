//! Precomputed transforms (Algorithms 1–3 of the paper).
//!
//! In the precomputation, every partitioned data point is transformed, per
//! subspace, into a two-dimensional tuple `P(x) = (α_x, γ_x)` with
//! `α_x = Σ_j φ(x_j)` and `γ_x = Σ_j x_j²` (Algorithm 2). At query time the
//! partitioned query is transformed into triples
//! `Q(y) = (α_y, β_yy, δ_y)` with `α_y = −Σ_j φ(y_j)`,
//! `β_yy = Σ_j y_j φ'(y_j)` and `δ_y = Σ_j φ'(y_j)²` (Algorithm 3). The
//! Cauchy–Schwarz upper bound of Theorem 1 is then
//! `UB(x_i·, y_i·) = α_x + α_y + β_yy + sqrt(γ_x · δ_y)` (Algorithm 1),
//! evaluable from the transforms alone — no access to the original
//! coordinates is needed during the filtering phase.

use bregman::{DenseDataset, DivergenceKind};

use crate::partition::Partitioning;

/// Per-point, per-subspace tuples `P(x) = (α_x, γ_x)` for an entire dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformedDataset {
    n: usize,
    m: usize,
    /// `tuples[point * m + subspace] = [α_x, γ_x]`.
    tuples: Vec<[f64; 2]>,
}

impl TransformedDataset {
    /// Transform every point of `dataset` under `partitioning`
    /// (Algorithm 2 applied to the whole dataset).
    pub fn build(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        partitioning: &Partitioning,
    ) -> TransformedDataset {
        let n = dataset.len();
        let m = partitioning.len();
        let mut tuples = vec![[0.0; 2]; n * m];
        let mut scratch = Vec::new();
        for i in 0..n {
            let row = dataset.row(i);
            for (s, dims) in partitioning.subspaces().iter().enumerate() {
                DenseDataset::gather_into(row, dims, &mut scratch);
                let (alpha, gamma) = kind.point_components(&scratch);
                tuples[i * m + s] = [alpha, gamma];
            }
        }
        TransformedDataset { n, m, tuples }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no point was transformed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.m
    }

    /// The `(α_x, γ_x)` tuple of one point in one subspace.
    #[inline]
    pub fn components(&self, point: usize, subspace: usize) -> (f64, f64) {
        let t = self.tuples[point * self.m + subspace];
        (t[0], t[1])
    }

    /// Sum of `α_x` over every subspace of one point (equals the full-space
    /// `Σ_j φ(x_j)` because the partitions are disjoint and exhaustive).
    pub fn total_alpha(&self, point: usize) -> f64 {
        (0..self.m).map(|s| self.components(point, s).0).sum()
    }

    /// Sum of `γ_x` over every subspace of one point (the full-space
    /// `Σ_j x_j²`).
    pub fn total_gamma(&self, point: usize) -> f64 {
        (0..self.m).map(|s| self.components(point, s).1).sum()
    }

    /// Approximate in-memory footprint in bytes (used by construction-cost
    /// reporting).
    pub fn size_bytes(&self) -> usize {
        self.tuples.len() * std::mem::size_of::<[f64; 2]>()
    }

    /// The raw tuple storage, `tuples[point * m + subspace] = [α_x, γ_x]`
    /// (used by the persistence layer).
    pub(crate) fn raw_tuples(&self) -> &[[f64; 2]] {
        &self.tuples
    }

    /// Reassemble a transformed dataset from restored raw storage. Returns
    /// `None` when the tuple count does not equal `n × m`.
    pub(crate) fn from_raw(
        n: usize,
        m: usize,
        tuples: Vec<[f64; 2]>,
    ) -> Option<TransformedDataset> {
        if n.checked_mul(m)? != tuples.len() {
            return None;
        }
        Some(TransformedDataset { n, m, tuples })
    }
}

/// Per-subspace triples `Q(y) = (α_y, β_yy, δ_y)` of one query point.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformedQuery {
    triples: Vec<[f64; 3]>,
}

impl TransformedQuery {
    /// Transform `query` under `partitioning` (Algorithm 3).
    pub fn build(
        kind: DivergenceKind,
        query: &[f64],
        partitioning: &Partitioning,
    ) -> TransformedQuery {
        let mut triples = Vec::with_capacity(partitioning.len());
        let mut scratch = Vec::new();
        for dims in partitioning.subspaces() {
            DenseDataset::gather_into(query, dims, &mut scratch);
            let (alpha, beta_yy, delta) = kind.query_components(&scratch);
            triples.push([alpha, beta_yy, delta]);
        }
        TransformedQuery { triples }
    }

    /// Number of subspaces.
    pub fn partitions(&self) -> usize {
        self.triples.len()
    }

    /// The `(α_y, β_yy, δ_y)` triple of one subspace.
    #[inline]
    pub fn components(&self, subspace: usize) -> (f64, f64, f64) {
        let t = self.triples[subspace];
        (t[0], t[1], t[2])
    }

    /// Full-space totals `(Σ α_y, Σ β_yy, Σ δ_y)` across all subspaces.
    pub fn totals(&self) -> (f64, f64, f64) {
        let mut a = 0.0;
        let mut b = 0.0;
        let mut d = 0.0;
        for t in &self.triples {
            a += t[0];
            b += t[1];
            d += t[2];
        }
        (a, b, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioning;
    use bregman::{DecomposableBregman, Divergence, ItakuraSaito};

    fn dataset() -> DenseDataset {
        let rows: Vec<Vec<f64>> = (1..=20)
            .map(|i| (0..8).map(|j| 0.5 + ((i * 3 + j * 7) % 13) as f64).collect())
            .collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    fn partitioning() -> Partitioning {
        Partitioning::new(vec![vec![0, 3, 6], vec![1, 4, 7], vec![2, 5]]).unwrap()
    }

    #[test]
    fn tuples_match_direct_component_computation() {
        let ds = dataset();
        let p = partitioning();
        let t = TransformedDataset::build(DivergenceKind::ItakuraSaito, &ds, &p);
        assert_eq!(t.len(), 20);
        assert_eq!(t.partitions(), 3);
        assert!(!t.is_empty());
        for i in 0..ds.len() {
            for (s, dims) in p.subspaces().iter().enumerate() {
                let sub: Vec<f64> = dims.iter().map(|&d| ds.row(i)[d]).collect();
                let expected = ItakuraSaito.point_components(&sub);
                let got = t.components(i, s);
                assert!((got.0 - expected.0).abs() < 1e-12);
                assert!((got.1 - expected.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn totals_are_full_space_components() {
        let ds = dataset();
        let p = partitioning();
        let t = TransformedDataset::build(DivergenceKind::ItakuraSaito, &ds, &p);
        for i in 0..ds.len() {
            let (alpha_full, gamma_full) = ItakuraSaito.point_components(ds.row(i));
            assert!((t.total_alpha(i) - alpha_full).abs() < 1e-9);
            assert!((t.total_gamma(i) - gamma_full).abs() < 1e-9);
        }
        assert!(t.size_bytes() >= 20 * 3 * 16);
    }

    #[test]
    fn query_triples_match_direct_computation() {
        let ds = dataset();
        let p = partitioning();
        let query = ds.row(5);
        let q = TransformedQuery::build(DivergenceKind::ItakuraSaito, query, &p);
        assert_eq!(q.partitions(), 3);
        for (s, dims) in p.subspaces().iter().enumerate() {
            let sub: Vec<f64> = dims.iter().map(|&d| query[d]).collect();
            let expected = ItakuraSaito.query_components(&sub);
            let got = q.components(s);
            assert!((got.0 - expected.0).abs() < 1e-12);
            assert!((got.1 - expected.1).abs() < 1e-12);
            assert!((got.2 - expected.2).abs() < 1e-12);
        }
        let (alpha, beta_yy, delta) = q.totals();
        let full = ItakuraSaito.query_components(query);
        assert!((alpha - full.0).abs() < 1e-9);
        assert!((beta_yy - full.1).abs() < 1e-9);
        assert!((delta - full.2).abs() < 1e-9);
    }

    #[test]
    fn components_reconstruct_the_exact_divergence_without_the_cauchy_step() {
        // α_x + α_y + β_yy − Σ_j x_j φ'(y_j) summed over subspaces equals the
        // exact full-space divergence — the identity underlying Theorem 2.
        let ds = dataset();
        let p = partitioning();
        let t = TransformedDataset::build(DivergenceKind::ItakuraSaito, &ds, &p);
        let query = ds.row(2);
        let q = TransformedQuery::build(DivergenceKind::ItakuraSaito, query, &p);
        for i in 0..ds.len() {
            let mut reconstructed = 0.0;
            for (s, dims) in p.subspaces().iter().enumerate() {
                let (alpha_x, _) = t.components(i, s);
                let (alpha_y, beta_yy, _) = q.components(s);
                let beta_xy: f64 =
                    dims.iter().map(|&d| -ds.row(i)[d] * ItakuraSaito.phi_prime(query[d])).sum();
                reconstructed += alpha_x + alpha_y + beta_yy + beta_xy;
            }
            let exact = ItakuraSaito.divergence(ds.row(i), query);
            assert!(
                (reconstructed - exact).abs() < 1e-9 * (1.0 + exact.abs()),
                "point {i}: {reconstructed} vs {exact}"
            );
        }
    }
}
