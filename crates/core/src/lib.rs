//! BrePartition: optimized high-dimensional kNN search with Bregman
//! distances.
//!
//! This crate implements the paper's partition–filter–refinement framework:
//!
//! 1. **Partition** — the `d` dimensions are split into `M` low-dimensional
//!    subspaces. `M` is chosen by the cost model of Theorem 4
//!    ([`partition::optimal_m`]) and the assignment of dimensions to
//!    subspaces uses PCCP, the Pearson-Correlation-Coefficient-based
//!    Partition ([`partition::pccp`]), which spreads correlated dimensions
//!    across subspaces so their candidate sets overlap.
//! 2. **Filter** — every data point is pre-transformed, per subspace, into a
//!    tuple `P(x) = (α_x, γ_x)`; a query is transformed into triples
//!    `Q(y) = (α_y, β_yy, δ_y)` ([`transform`]). The Cauchy–Schwarz upper
//!    bound assembled from these components ([`bound`]) yields, per
//!    subspace, a search radius (the components of the k-th smallest summed
//!    upper bound, Algorithm 4). A range query in each subspace's BB-tree —
//!    all trees integrated into one disk-resident **BB-forest**
//!    ([`bbforest`]) — produces candidates.
//! 3. **Refine** — the union of the per-subspace candidates is fetched from
//!    disk (I/O counted per page) and the exact divergences decide the kNN
//!    ([`search`]).
//!
//! The approximate extension ([`approximate`]) shrinks the Cauchy term by a
//! coefficient derived from the data distribution to meet a user-specified
//! probability guarantee, trading a little accuracy for fewer candidates.
//!
//! # Quick start
//!
//! ```
//! use bregman::{DivergenceKind, DenseDataset};
//! use brepartition_core::{BrePartitionConfig, BrePartitionIndex};
//!
//! // A small strictly positive dataset for the Itakura-Saito divergence.
//! let rows: Vec<Vec<f64>> = (0..200)
//!     .map(|i| (0..16).map(|j| 1.0 + ((i * 7 + j * 3) % 23) as f64).collect())
//!     .collect();
//! let data = DenseDataset::from_rows(&rows).unwrap();
//!
//! let config = BrePartitionConfig::default();
//! let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
//! let query = data.row(0).to_vec();
//! let result = index.knn(&query, 5).unwrap();
//! assert_eq!(result.neighbors.len(), 5);
//! assert_eq!(result.neighbors[0].1, 0.0); // the query is a data point
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate;
pub mod bbforest;
pub mod bound;
pub mod config;
pub mod delta;
pub mod error;
pub mod partition;
pub mod persist;
pub mod search;
pub mod stats;
pub mod transform;

pub use approximate::{ApproximateConfig, NormalDistribution};
pub use bbforest::BBForest;
pub use bound::{upper_bound_from_components, QueryBounds};
pub use config::{BrePartitionConfig, PartitionCount, PartitionStrategy};
pub use delta::DeltaSegment;
pub use error::{CoreError, Result};
pub use partition::{optimal_m::CostModel, Partitioning};
pub use search::{BrePartitionIndex, QueryResult};
pub use stats::QueryStats;
pub use transform::{TransformedDataset, TransformedQuery};
