//! Equal, contiguous partitioning — the naive baseline PCCP is compared
//! against in the paper's Fig. 10 ablation.

use crate::error::{CoreError, Result};
use crate::partition::Partitioning;

/// Split dimensions `0..dim` into `m` contiguous chunks of (almost) equal
/// size: the first chunks hold `⌈d/M⌉` dimensions, later ones may hold one
/// fewer when `d` is not divisible by `M`.
pub fn equal_contiguous(dim: usize, m: usize) -> Result<Partitioning> {
    if m == 0 || m > dim {
        return Err(CoreError::InvalidPartitionCount { requested: m, dim });
    }
    let per = dim.div_ceil(m);
    let mut subspaces: Vec<Vec<usize>> = Vec::with_capacity(m);
    let mut next = 0usize;
    for remaining_partitions in (1..=m).rev() {
        let remaining_dims = dim - next;
        // Keep later partitions non-empty by never taking more than what
        // leaves at least one dimension per remaining partition.
        let take = per.min(remaining_dims - (remaining_partitions - 1));
        subspaces.push((next..next + take).collect());
        next += take;
    }
    debug_assert_eq!(next, dim);
    Partitioning::new(subspaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides_evenly_when_possible() {
        let p = equal_contiguous(12, 3).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.subspace(0), &[0, 1, 2, 3]);
        assert_eq!(p.subspace(2), &[8, 9, 10, 11]);
    }

    #[test]
    fn handles_remainders_without_empty_partitions() {
        let p = equal_contiguous(10, 4).unwrap();
        assert_eq!(p.len(), 4);
        let sizes: Vec<usize> = p.subspaces().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s >= 1));
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 2);
    }

    #[test]
    fn single_partition_and_one_dim_per_partition() {
        let p = equal_contiguous(7, 1).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.subspace(0).len(), 7);
        let p = equal_contiguous(7, 7).unwrap();
        assert_eq!(p.len(), 7);
        assert!(p.subspaces().iter().all(|s| s.len() == 1));
    }

    #[test]
    fn rejects_invalid_counts() {
        assert!(equal_contiguous(5, 0).is_err());
        assert!(equal_contiguous(5, 6).is_err());
    }

    #[test]
    fn every_dimension_appears_exactly_once() {
        for (d, m) in [(17, 5), (31, 4), (8, 3), (100, 7)] {
            let p = equal_contiguous(d, m).unwrap();
            let mut all: Vec<usize> = p.subspaces().iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..d).collect::<Vec<_>>());
        }
    }
}
