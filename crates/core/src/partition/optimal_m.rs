//! The cost model and the optimized number of partitions (Theorem 4).
//!
//! The online cost of a BrePartition query is modelled as
//!
//! ```text
//! T(M) = d + M·n + n·log k + β·A·α^M·n·d + β·A·α^M·n·log k
//! ```
//!
//! where `UB ≈ A·α^M` captures the (empirically exponential) decay of the
//! summed upper bound with the number of partitions, and `λ = β·UB` is the
//! fraction of points surviving the filter. Minimizing `T` gives
//!
//! ```text
//! M* = log_α( 2n / (−μ·ln α·(d + log k)) ),   μ = β·A·n .
//! ```
//!
//! `A`, `α` and `β` are fitted from a handful of sampled point pairs, exactly
//! as the paper prescribes (fit `UB = A·α^M` through two sampled `M` values;
//! estimate `β` as the fraction of points inside a sample's bound divided by
//! the bound). Because the fitted `M*` is rarely an integer, the model
//! evaluates `T` at the neighbouring integers and picks the cheaper one.

use bregman::{DenseDataset, DivergenceKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bound::upper_bound_from_components;
use crate::error::{CoreError, Result};
use crate::partition::equal::equal_contiguous;
use crate::transform::TransformedQuery;

/// Fitted parameters of the query cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Scale of the fitted bound decay `UB ≈ A·α^M`.
    pub a: f64,
    /// Base of the fitted bound decay, in `(0, 1)`.
    pub alpha: f64,
    /// Pruning-effect coefficient `λ = β·UB`.
    pub beta: f64,
    /// Dataset size the model was fitted on.
    pub n: usize,
    /// Dimensionality the model was fitted on.
    pub dim: usize,
}

impl CostModel {
    /// Fit the model on a sample of the dataset.
    ///
    /// * `UB(M)` is measured for `M = 1` and `M = min(8, d)` over
    ///   `sample_size` random point/query pairs under an equal partitioning,
    ///   and `A`, `α` are solved from the two averages.
    /// * `β` is the average over sampled queries of
    ///   `(fraction of points within the query's bound) / bound`.
    pub fn fit(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        sample_size: usize,
        seed: u64,
    ) -> Result<CostModel> {
        let n = dataset.len();
        let d = dataset.dim();
        if n < 2 {
            return Err(CoreError::EmptyDataset);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let samples = sample_size.clamp(2, n).min(64);
        let pairs: Vec<(usize, usize)> = (0..samples)
            .map(|i| (indices[i % indices.len()], indices[(i * 7 + 3) % indices.len()]))
            .filter(|(a, b)| a != b)
            .collect();
        if pairs.is_empty() {
            return Err(CoreError::EmptyDataset);
        }

        let m1 = 1usize;
        let m2 = 8usize.min(d).max(2.min(d));
        let u1 = Self::mean_bound(kind, dataset, &pairs, m1)?;
        let u2 = Self::mean_bound(kind, dataset, &pairs, m2)?;

        // Solve A·α^{m1} = u1, A·α^{m2} = u2.
        let (a, alpha) = if u1 > 0.0 && u2 > 0.0 && m2 > m1 && u2 < u1 {
            let alpha = (u2 / u1).powf(1.0 / (m2 - m1) as f64).clamp(0.05, 0.995);
            (u1 / alpha.powi(m1 as i32), alpha)
        } else {
            // Degenerate fit (tiny dimensionality or constant data): fall
            // back to a mild decay so the formula stays well defined.
            (u1.max(1e-9), 0.9)
        };

        // β from the pruning effect of a few sampled query bounds.
        let mut beta_samples = Vec::new();
        for &(x_idx, y_idx) in pairs.iter().take(8) {
            let query = dataset.row(y_idx);
            let partitioning = equal_contiguous(d, m2)?;
            let q = TransformedQuery::build(kind, query, &partitioning);
            let x_row = dataset.row(x_idx);
            let mut bound = 0.0;
            let mut scratch = Vec::new();
            for (s, dims) in partitioning.subspaces().iter().enumerate() {
                DenseDataset::gather_into(x_row, dims, &mut scratch);
                bound +=
                    upper_bound_from_components(kind.point_components(&scratch), q.components(s));
            }
            if bound <= 0.0 {
                continue;
            }
            let within = dataset.iter().filter(|(_, p)| kind.divergence(p, query) <= bound).count();
            beta_samples.push(within as f64 / n as f64 / bound);
        }
        let beta = if beta_samples.is_empty() {
            1.0 / (u1.max(1e-9))
        } else {
            beta_samples.iter().sum::<f64>() / beta_samples.len() as f64
        };

        Ok(CostModel { a, alpha, beta: beta.max(1e-12), n, dim: d })
    }

    /// Mean summed upper bound over sampled pairs at a given `M`.
    fn mean_bound(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        pairs: &[(usize, usize)],
        m: usize,
    ) -> Result<f64> {
        let partitioning = equal_contiguous(dataset.dim(), m)?;
        let mut total = 0.0;
        let mut scratch = Vec::new();
        for &(x_idx, y_idx) in pairs {
            let q = TransformedQuery::build(kind, dataset.row(y_idx), &partitioning);
            let x_row = dataset.row(x_idx);
            let mut ub = 0.0;
            for (s, dims) in partitioning.subspaces().iter().enumerate() {
                DenseDataset::gather_into(x_row, dims, &mut scratch);
                ub += upper_bound_from_components(kind.point_components(&scratch), q.components(s));
            }
            total += ub;
        }
        Ok(total / pairs.len() as f64)
    }

    /// A convenience constructor used by tests and by callers that want to
    /// explore the model analytically.
    pub fn from_parameters(a: f64, alpha: f64, beta: f64, n: usize, dim: usize) -> CostModel {
        CostModel { a, alpha: alpha.clamp(1e-6, 0.999_999), beta, n, dim }
    }

    /// The modelled online cost `T(M)` for result size `k`.
    pub fn online_cost(&self, m: usize, k: usize) -> f64 {
        let n = self.n as f64;
        let d = self.dim as f64;
        let log_k = (k.max(1) as f64).ln().max(0.0);
        let survivors = self.beta * self.a * self.alpha.powi(m as i32) * n;
        d + m as f64 * n + n * log_k + survivors * d + survivors * log_k
    }

    /// Theorem 4: the real-valued minimizer of the cost model.
    pub fn theoretical_optimum(&self, k: usize) -> f64 {
        let n = self.n as f64;
        let d = self.dim as f64;
        let log_k = (k.max(1) as f64).ln().max(0.0);
        let mu = self.beta * self.a * n;
        let ln_alpha = self.alpha.ln(); // negative
        let denominator = -mu * ln_alpha * (d + log_k);
        if denominator <= 0.0 {
            return 1.0;
        }
        let x = 2.0 * n / denominator;
        if x <= 0.0 {
            return 1.0;
        }
        x.ln() / ln_alpha
    }

    /// The optimized integer number of partitions.
    ///
    /// The paper rounds the closed-form optimum of Theorem 4 up and down and
    /// keeps the cheaper value. Because evaluating the fitted cost model at
    /// an integer `M` is O(1), this implementation simply evaluates every
    /// `M ∈ [1, d]` and returns the global integer minimizer, which always
    /// matches or improves on the rounding rule. The paper fixes `k = 1`
    /// when deriving `M` offline because `k ≪ n` barely moves the optimum.
    pub fn optimal_partitions(&self, k: usize) -> usize {
        let mut best_m = 1usize;
        let mut best_cost = f64::INFINITY;
        for m in 1..=self.dim.max(1) {
            let cost = self.online_cost(m, k);
            if cost < best_cost {
                best_cost = cost;
                best_m = m;
            }
        }
        best_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::correlated::CorrelatedSpec;

    fn dataset(n: usize, dim: usize) -> DenseDataset {
        CorrelatedSpec { n, dim, blocks: dim / 4, correlation: 0.7, mean: 5.0, scale: 1.0, seed: 5 }
            .generate()
    }

    #[test]
    fn fitted_parameters_are_sane() {
        let ds = dataset(800, 32);
        let model = CostModel::fit(DivergenceKind::ItakuraSaito, &ds, 64, 1).unwrap();
        assert!(model.a > 0.0);
        assert!(model.alpha > 0.0 && model.alpha < 1.0, "alpha = {}", model.alpha);
        assert!(model.beta > 0.0);
        assert_eq!(model.n, 800);
        assert_eq!(model.dim, 32);
    }

    #[test]
    fn optimal_m_is_within_bounds_and_deterministic() {
        let ds = dataset(600, 48);
        let m1 =
            CostModel::fit(DivergenceKind::ItakuraSaito, &ds, 64, 9).unwrap().optimal_partitions(1);
        let m2 =
            CostModel::fit(DivergenceKind::ItakuraSaito, &ds, 64, 9).unwrap().optimal_partitions(1);
        assert_eq!(m1, m2);
        assert!((1..=48).contains(&m1));
    }

    #[test]
    fn cost_is_minimized_at_reported_optimum() {
        let model = CostModel::from_parameters(50.0, 0.8, 0.002, 50_000, 200);
        let best = model.optimal_partitions(1);
        let best_cost = model.online_cost(best, 1);
        for m in 1..=200 {
            assert!(
                best_cost <= model.online_cost(m, 1) + 1e-6,
                "m={m} is cheaper than reported optimum {best}"
            );
        }
    }

    #[test]
    fn more_dimensions_never_decrease_the_optimum() {
        // With everything else fixed, the optimum M for a higher-dimensional
        // dataset is at least as large (matches the paper's Fig. 13 setup
        // where M grows from 3 to 50 as d grows from 10 to 400).
        let low = CostModel::from_parameters(40.0, 0.85, 0.001, 100_000, 10);
        let high = CostModel::from_parameters(40.0, 0.85, 0.001, 100_000, 400);
        assert!(high.optimal_partitions(1) >= low.optimal_partitions(1));
    }

    #[test]
    fn data_size_barely_moves_the_optimum() {
        // Matches the paper's observation (Section 9.7) that n has little
        // impact on M.
        let small = CostModel::from_parameters(40.0, 0.85, 0.001, 2_000_000, 128);
        let large = CostModel::from_parameters(40.0, 0.85, 0.001, 10_000_000, 128);
        let a = small.optimal_partitions(1);
        let b = large.optimal_partitions(1);
        assert!(a.abs_diff(b) <= 1, "optimum moved from {a} to {b}");
    }

    #[test]
    fn degenerate_model_falls_back_to_one_partition() {
        let model = CostModel::from_parameters(0.0, 0.9, 0.0, 100, 16);
        assert_eq!(model.optimal_partitions(1), 1);
    }

    #[test]
    fn fit_rejects_tiny_datasets() {
        let ds = DenseDataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(CostModel::fit(DivergenceKind::SquaredEuclidean, &ds, 8, 1).is_err());
    }

    #[test]
    fn theoretical_optimum_matches_closed_form() {
        let model = CostModel::from_parameters(100.0, 0.7, 0.01, 10_000, 64);
        let m = model.theoretical_optimum(1);
        // Verify the stationarity condition of the cost model at the
        // closed-form optimum: the derivative of T wrt M is ~0 there when
        // the formula's factor-2 numerator is accounted for.
        assert!(m.is_finite());
        assert!(m > 0.0);
    }
}
