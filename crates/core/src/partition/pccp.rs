//! PCCP — Pearson-Correlation-Coefficient-based Partition (Section 5.2).
//!
//! The size of BrePartition's final candidate set is the size of the *union*
//! of the per-subspace candidate sets, so it shrinks when those sets overlap.
//! PCCP drives the overlap up by making the subspaces statistically similar:
//!
//! 1. **Assignment** — the `d` dimensions are grouped into `⌈d/M⌉` groups of
//!    (up to) `M` dimensions each, greedily chaining the dimension with the
//!    largest absolute Pearson correlation to any dimension already in the
//!    current group.
//! 2. **Partitioning** — each of the `M` partitions takes one dimension from
//!    every group, so strongly correlated dimensions end up in *different*
//!    partitions and every partition sees a representative of each
//!    correlated group.

use bregman::DenseDataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::{CoreError, Result};
use crate::partition::Partitioning;

/// Absolute Pearson correlation matrix of the dataset's dimensions, computed
/// over at most `sample_size` points (the paper samples as well — the matrix
/// is only used to rank similarities).
pub fn correlation_matrix(dataset: &DenseDataset, sample_size: usize) -> Vec<Vec<f64>> {
    let d = dataset.dim();
    let n = dataset.len().min(sample_size.max(2));
    let mut matrix = vec![vec![0.0; d]; d];
    if dataset.len() < 2 {
        return matrix;
    }
    // Column means and standard deviations over the sample prefix.
    let mut means = vec![0.0; d];
    for i in 0..n {
        for (j, &v) in dataset.row(i).iter().enumerate() {
            means[j] += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let mut vars = vec![0.0; d];
    for i in 0..n {
        for (j, &v) in dataset.row(i).iter().enumerate() {
            let dv = v - means[j];
            vars[j] += dv * dv;
        }
    }
    for (j, row) in matrix.iter_mut().enumerate() {
        row[j] = 1.0;
    }
    for a in 0..d {
        if vars[a] == 0.0 {
            continue;
        }
        for b in (a + 1)..d {
            if vars[b] == 0.0 {
                continue;
            }
            let mut cov = 0.0;
            for i in 0..n {
                let row = dataset.row(i);
                cov += (row[a] - means[a]) * (row[b] - means[b]);
            }
            let r = (cov / (vars[a].sqrt() * vars[b].sqrt())).abs();
            matrix[a][b] = r;
            matrix[b][a] = r;
        }
    }
    matrix
}

/// Run PCCP over `dataset`, producing `m` partitions.
pub fn pccp(
    dataset: &DenseDataset,
    m: usize,
    sample_size: usize,
    seed: u64,
) -> Result<Partitioning> {
    let d = dataset.dim();
    if m == 0 || m > d {
        return Err(CoreError::InvalidPartitionCount { requested: m, dim: d });
    }
    if m == 1 {
        return Partitioning::new(vec![(0..d).collect()]);
    }
    let corr = correlation_matrix(dataset, sample_size);
    let groups = assign_groups(&corr, d, m, seed);
    partition_from_groups(&groups, d, m, seed)
}

/// Assignment step: greedily build groups of up to `m` mutually correlated
/// dimensions.
fn assign_groups(corr: &[Vec<f64>], d: usize, m: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut unassigned: Vec<usize> = (0..d).collect();
    unassigned.shuffle(&mut rng);
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(d.div_ceil(m));
    while !unassigned.is_empty() {
        // Seed the group with a random unassigned dimension (the paper
        // selects the first dimension randomly).
        let mut group = vec![unassigned.pop().expect("non-empty checked above")];
        while group.len() < m && !unassigned.is_empty() {
            // The unassigned dimension with the largest absolute correlation
            // to any dimension already in the group.
            let (best_pos, _) = unassigned
                .iter()
                .enumerate()
                .map(|(pos, &cand)| {
                    let best_corr =
                        group.iter().map(|&g| corr[g][cand]).fold(f64::NEG_INFINITY, f64::max);
                    (pos, best_corr)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("unassigned is non-empty");
            group.push(unassigned.swap_remove(best_pos));
        }
        groups.push(group);
    }
    groups
}

/// Partitioning step: each partition takes one dimension from every group.
fn partition_from_groups(
    groups: &[Vec<usize>],
    d: usize,
    m: usize,
    seed: u64,
) -> Result<Partitioning> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
    let mut pools: Vec<Vec<usize>> = groups.to_vec();
    for pool in &mut pools {
        pool.shuffle(&mut rng);
    }
    let mut subspaces: Vec<Vec<usize>> = vec![Vec::with_capacity(d.div_ceil(m)); m];
    let mut next_partition = 0usize;
    for pool in &mut pools {
        while let Some(dim) = pool.pop() {
            subspaces[next_partition % m].push(dim);
            next_partition += 1;
        }
    }
    // Guard against empty partitions when d < m (rejected earlier) or when
    // rounding left a partition empty: rebalance from the largest partition.
    while let Some(empty_idx) = subspaces.iter().position(Vec::is_empty) {
        let (donor_idx, _) = subspaces
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .expect("at least one subspace");
        if subspaces[donor_idx].len() <= 1 {
            return Err(CoreError::InvalidPartitionCount { requested: m, dim: d });
        }
        let moved = subspaces[donor_idx].pop().expect("donor is non-empty");
        subspaces[empty_idx].push(moved);
    }
    Partitioning::new(subspaces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::correlated::CorrelatedSpec;

    fn correlated_dataset(dim: usize, blocks: usize) -> DenseDataset {
        CorrelatedSpec { n: 1500, dim, blocks, correlation: 0.92, mean: 5.0, scale: 1.0, seed: 17 }
            .generate()
    }

    #[test]
    fn correlation_matrix_detects_block_structure() {
        let ds = correlated_dataset(12, 3); // blocks of 4 dims
        let corr = correlation_matrix(&ds, 1500);
        assert!(corr[0][1] > 0.6, "within-block correlation {}", corr[0][1]);
        assert!(corr[0][5] < 0.3, "across-block correlation {}", corr[0][5]);
        assert_eq!(corr[3][3], 1.0);
        // Symmetric.
        assert_eq!(corr[2][7], corr[7][2]);
    }

    #[test]
    fn pccp_produces_a_valid_partitioning() {
        let ds = correlated_dataset(20, 4);
        let p = pccp(&ds, 5, 1000, 3).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.dim(), 20);
        let mut all: Vec<usize> = p.subspaces().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        // Every partition holds ⌈20/5⌉ = 4 dimensions.
        assert!(p.subspaces().iter().all(|s| s.len() == 4));
    }

    #[test]
    fn pccp_spreads_correlated_dimensions_across_partitions() {
        // 16 dims in 4 perfectly correlated blocks of 4; with M = 4 each
        // partition should receive at most ~2 dimensions of any one block
        // (an exact 1-per-block spread is the ideal; the greedy chain plus
        // random seeding can occasionally double up).
        let ds = correlated_dataset(16, 4);
        let p = pccp(&ds, 4, 1500, 9).unwrap();
        let block_of = |dim: usize| dim / 4;
        let mut worst = 0usize;
        for subspace in p.subspaces() {
            let mut counts = [0usize; 4];
            for &d in subspace {
                counts[block_of(d)] += 1;
            }
            worst = worst.max(*counts.iter().max().unwrap());
        }
        assert!(
            worst <= 2,
            "some partition contains {worst} dimensions from a single correlated block"
        );
    }

    #[test]
    fn single_partition_contains_every_dimension() {
        let ds = correlated_dataset(8, 2);
        let p = pccp(&ds, 1, 500, 5).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.subspace(0).len(), 8);
    }

    #[test]
    fn rejects_invalid_partition_counts() {
        let ds = correlated_dataset(6, 2);
        assert!(pccp(&ds, 0, 100, 1).is_err());
        assert!(pccp(&ds, 7, 100, 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = correlated_dataset(18, 3);
        assert_eq!(pccp(&ds, 6, 800, 2).unwrap(), pccp(&ds, 6, 800, 2).unwrap());
    }

    #[test]
    fn m_equal_d_gives_singleton_partitions() {
        let ds = correlated_dataset(10, 2);
        let p = pccp(&ds, 10, 500, 4).unwrap();
        assert_eq!(p.len(), 10);
        assert!(p.subspaces().iter().all(|s| s.len() == 1));
    }
}
