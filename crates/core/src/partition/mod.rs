//! Dimensionality partitioning: the partition description plus the two
//! strategies (equal/contiguous and PCCP) and the optimal-`M` cost model.

pub mod equal;
pub mod optimal_m;
pub mod pccp;

use bregman::DenseDataset;

use crate::error::{CoreError, Result};

/// A partitioning of `d` dimensions into `M` disjoint, exhaustive subspaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    subspaces: Vec<Vec<usize>>,
    dim: usize,
}

impl Partitioning {
    /// Build a partitioning from explicit per-subspace dimension lists.
    ///
    /// Validates that every subspace is non-empty and that the lists form a
    /// partition (each dimension `0..d` appears exactly once, where `d` is
    /// the total number of listed dimensions).
    pub fn new(subspaces: Vec<Vec<usize>>) -> Result<Partitioning> {
        if subspaces.is_empty() || subspaces.iter().any(Vec::is_empty) {
            return Err(CoreError::InvalidPartitionCount {
                requested: subspaces.len(),
                dim: subspaces.iter().map(Vec::len).sum(),
            });
        }
        let dim: usize = subspaces.iter().map(Vec::len).sum();
        let mut seen = vec![false; dim];
        for &d in subspaces.iter().flatten() {
            if d >= dim || seen[d] {
                return Err(CoreError::InvalidPartitionCount { requested: subspaces.len(), dim });
            }
            seen[d] = true;
        }
        Ok(Partitioning { subspaces, dim })
    }

    /// Number of subspaces (`M`).
    pub fn len(&self) -> usize {
        self.subspaces.len()
    }

    /// Whether there are no subspaces (never true for a validated value).
    pub fn is_empty(&self) -> bool {
        self.subspaces.is_empty()
    }

    /// Total dimensionality (`d`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dimension indices of every subspace.
    pub fn subspaces(&self) -> &[Vec<usize>] {
        &self.subspaces
    }

    /// The dimension indices of one subspace.
    pub fn subspace(&self, index: usize) -> &[usize] {
        &self.subspaces[index]
    }

    /// Size of the largest subspace (`⌈d/M⌉` for the built-in strategies).
    pub fn max_subspace_dim(&self) -> usize {
        self.subspaces.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Project the full dataset into per-subspace datasets (the inputs to
    /// the per-subspace BB-trees).
    pub fn project_dataset(&self, dataset: &DenseDataset) -> Result<Vec<DenseDataset>> {
        self.subspaces.iter().map(|dims| dataset.project(dims).map_err(CoreError::from)).collect()
    }

    /// Project one point into the given subspace, reusing `out`.
    pub fn project_point_into(&self, subspace: usize, point: &[f64], out: &mut Vec<f64>) {
        DenseDataset::gather_into(point, &self.subspaces[subspace], out);
    }
}

impl std::fmt::Display for Partitioning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} partitions over {} dimensions", self.len(), self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_partitioning_roundtrips() {
        let p = Partitioning::new(vec![vec![0, 2], vec![1, 3], vec![4]]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.dim(), 5);
        assert_eq!(p.subspace(1), &[1, 3]);
        assert_eq!(p.max_subspace_dim(), 2);
        assert!(!p.is_empty());
        assert!(p.to_string().contains("3 partitions"));
    }

    #[test]
    fn rejects_duplicates_gaps_and_empty_subspaces() {
        assert!(Partitioning::new(vec![vec![0, 1], vec![1]]).is_err()); // duplicate
        assert!(Partitioning::new(vec![vec![0, 5], vec![1]]).is_err()); // out of range
        assert!(Partitioning::new(vec![vec![0], vec![]]).is_err()); // empty subspace
        assert!(Partitioning::new(vec![]).is_err());
    }

    #[test]
    fn project_dataset_produces_one_dataset_per_subspace() {
        let ds =
            DenseDataset::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]).unwrap();
        let p = Partitioning::new(vec![vec![3, 0], vec![1, 2]]).unwrap();
        let projected = p.project_dataset(&ds).unwrap();
        assert_eq!(projected.len(), 2);
        assert_eq!(projected[0].row(0), &[4.0, 1.0]);
        assert_eq!(projected[1].row(1), &[6.0, 7.0]);
    }

    #[test]
    fn project_point_into_matches_dataset_projection() {
        let p = Partitioning::new(vec![vec![2, 0], vec![1]]).unwrap();
        let mut out = Vec::new();
        p.project_point_into(0, &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, vec![30.0, 10.0]);
        p.project_point_into(1, &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, vec![20.0]);
    }
}
