//! Dataset generators, query workloads, ground truth and accuracy metrics
//! for the BrePartition evaluation.
//!
//! The paper evaluates on four real datasets (Audio, Fonts, Deep, SIFT) and
//! two synthetic ones (Normal, Uniform). The real datasets are not
//! redistributable here, so this crate generates *proxies* that preserve the
//! properties the algorithms are sensitive to — dimensionality, value
//! domain (strictly positive for Itakura-Saito data), block correlation
//! structure between dimensions (what PCCP exploits) and relative dataset
//! sizes — at a configurable, laptop-friendly scale. The substitution is
//! documented in `DESIGN.md`.
//!
//! * [`synthetic`] — uniform / normal / clustered generators,
//! * [`correlated`] — block-correlated Gaussian generator,
//! * [`proxies`] — the six named datasets of Table 4 with their divergence
//!   and page-size settings,
//! * [`queries`] — query workload sampling,
//! * [`ground_truth`] — multi-threaded brute-force kNN,
//! * [`metrics`] — overall ratio (the paper's accuracy metric) and recall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlated;
pub mod ground_truth;
pub mod hierarchical;
pub mod metrics;
pub mod proxies;
pub mod queries;
pub mod synthetic;

pub use correlated::CorrelatedSpec;
pub use ground_truth::{ground_truth_knn, GroundTruth};
pub use hierarchical::{HierarchicalSpec, HierarchicalStream};
pub use metrics::{overall_ratio, recall};
pub use proxies::{DatasetSpec, PaperDataset};
pub use queries::QueryWorkload;
