//! Proxies for the six datasets of the paper's Table 4.
//!
//! | Name    | n (paper)  | d   | Measure | Page size |
//! |---------|------------|-----|---------|-----------|
//! | Audio   | 54,387     | 192 | ED      | 32 KB     |
//! | Fonts   | 745,000    | 400 | ISD     | 128 KB    |
//! | Deep    | 1,000,000  | 256 | ED      | 64 KB     |
//! | Sift    | 11,164,866 | 128 | ED      | 64 KB     |
//! | Normal  | 50,000     | 200 | ED      | 32 KB     |
//! | Uniform | 50,000     | 200 | ISD     | 32 KB     |
//!
//! The proxies generate synthetic data with the same dimensionality, value
//! domain and a block-correlation structure, scaled down by a configurable
//! factor so the whole evaluation runs on a laptop. Coordinates for the
//! "ED" (exponential distance) datasets are kept within a few units so the
//! exponential generator stays well inside double-precision range.

use bregman::{DenseDataset, DivergenceKind};

use crate::hierarchical::HierarchicalSpec;
use crate::synthetic::uniform;

/// The six datasets used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Audio descriptors, 192 dimensions, exponential distance.
    Audio,
    /// Character-font images, 400 dimensions, Itakura-Saito distance.
    Fonts,
    /// Deep CNN embeddings, 256 dimensions, exponential distance.
    Deep,
    /// SIFT descriptors, 128 dimensions, exponential distance.
    Sift,
    /// Synthetic standard-normal data, 200 dimensions, exponential distance.
    Normal,
    /// Synthetic uniform data, 200 dimensions, Itakura-Saito distance.
    Uniform,
}

impl PaperDataset {
    /// All six datasets in Table 4 order.
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Audio,
        PaperDataset::Fonts,
        PaperDataset::Deep,
        PaperDataset::Sift,
        PaperDataset::Normal,
        PaperDataset::Uniform,
    ];

    /// The dataset name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Audio => "Audio",
            PaperDataset::Fonts => "Fonts",
            PaperDataset::Deep => "Deep",
            PaperDataset::Sift => "Sift",
            PaperDataset::Normal => "Normal",
            PaperDataset::Uniform => "Uniform",
        }
    }

    /// The full-scale specification from Table 4.
    pub fn paper_spec(&self) -> DatasetSpec {
        match self {
            PaperDataset::Audio => DatasetSpec {
                dataset: *self,
                n: 54_387,
                dim: 192,
                divergence: DivergenceKind::Exponential,
                page_size_bytes: 32 * 1024,
            },
            PaperDataset::Fonts => DatasetSpec {
                dataset: *self,
                n: 745_000,
                dim: 400,
                divergence: DivergenceKind::ItakuraSaito,
                page_size_bytes: 128 * 1024,
            },
            PaperDataset::Deep => DatasetSpec {
                dataset: *self,
                n: 1_000_000,
                dim: 256,
                divergence: DivergenceKind::Exponential,
                page_size_bytes: 64 * 1024,
            },
            PaperDataset::Sift => DatasetSpec {
                dataset: *self,
                n: 11_164_866,
                dim: 128,
                divergence: DivergenceKind::Exponential,
                page_size_bytes: 64 * 1024,
            },
            PaperDataset::Normal => DatasetSpec {
                dataset: *self,
                n: 50_000,
                dim: 200,
                divergence: DivergenceKind::Exponential,
                page_size_bytes: 32 * 1024,
            },
            PaperDataset::Uniform => DatasetSpec {
                dataset: *self,
                n: 50_000,
                dim: 200,
                divergence: DivergenceKind::ItakuraSaito,
                page_size_bytes: 32 * 1024,
            },
        }
    }

    /// A proxy spec scaled down so that the largest dataset has
    /// `max_points` points and relative sizes are preserved (with a floor so
    /// every dataset keeps a meaningful size).
    pub fn scaled_spec(&self, max_points: usize) -> DatasetSpec {
        let paper = self.paper_spec();
        let largest = PaperDataset::Sift.paper_spec().n as f64;
        let scaled = ((paper.n as f64 / largest) * max_points as f64).round() as usize;
        DatasetSpec { n: scaled.clamp(200, max_points), ..paper }
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete dataset specification: size, dimensionality, divergence and
/// page size (Table 4 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which named dataset this spec describes.
    pub dataset: PaperDataset,
    /// Number of points to generate.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Divergence used with this dataset in the paper.
    pub divergence: DivergenceKind,
    /// Disk page size used with this dataset in the paper.
    pub page_size_bytes: usize,
}

impl DatasetSpec {
    /// Override the number of points (used by the data-size sweep of
    /// Fig. 14).
    pub fn with_points(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Override the dimensionality (used by the dimensionality sweep of
    /// Fig. 13); the generator simply produces that many dimensions.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Generate the proxy dataset for this spec.
    ///
    /// The four "real" datasets (Audio, Fonts, Deep, Sift) use the
    /// hierarchical multiplicative generator: clustered, block-correlated,
    /// strictly positive descriptors whose within-point coordinate scales
    /// are homogeneous — the regime in which the paper's Cauchy filter is
    /// effective on its real data. Exponential-distance datasets use a small
    /// base scale so `e^x` stays well within double precision. Normal and
    /// Uniform reproduce the paper's synthetic datasets verbatim.
    pub fn generate(&self, seed: u64) -> DenseDataset {
        let hier = |clusters: usize, blocks: usize, base_scale: f64, cluster_sigma: f64| {
            HierarchicalSpec {
                n: self.n,
                dim: self.dim,
                clusters,
                blocks: blocks.min(self.dim).max(1),
                base_scale,
                cluster_log_sigma: cluster_sigma,
                block_log_sigma: 0.04,
                noise_log_sigma: 0.015,
                seed,
            }
            .generate()
        };
        match self.dataset {
            // Audio: filter-bank style features, exponential distance.
            PaperDataset::Audio => hier(24, (self.dim / 12).max(1), 2.0, 0.5),
            // Fonts: dense image features, Itakura-Saito distance.
            PaperDataset::Fonts => hier(40, (self.dim / 16).max(1), 6.0, 0.5),
            // Deep: CNN embeddings, exponential distance.
            PaperDataset::Deep => hier(48, (self.dim / 8).max(1), 1.5, 0.5),
            // Sift: gradient histograms, exponential distance.
            PaperDataset::Sift => hier(64, (self.dim / 8).max(1), 2.2, 0.5),
            PaperDataset::Normal => crate::synthetic::normal(self.n, self.dim, 0.0, 1.0, seed),
            PaperDataset::Uniform => uniform(self.n, self.dim, 0.01, 100.0, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_table4() {
        assert_eq!(PaperDataset::Audio.paper_spec().dim, 192);
        assert_eq!(PaperDataset::Fonts.paper_spec().divergence, DivergenceKind::ItakuraSaito);
        assert_eq!(PaperDataset::Deep.paper_spec().n, 1_000_000);
        assert_eq!(PaperDataset::Sift.paper_spec().page_size_bytes, 64 * 1024);
        assert_eq!(PaperDataset::Normal.paper_spec().dim, 200);
        assert_eq!(PaperDataset::Uniform.paper_spec().divergence, DivergenceKind::ItakuraSaito);
    }

    #[test]
    fn scaled_specs_preserve_relative_order_of_sizes() {
        let max = 20_000;
        let sizes: Vec<usize> = PaperDataset::ALL.iter().map(|d| d.scaled_spec(max).n).collect();
        // Sift is the largest, Audio/Normal/Uniform the smallest.
        let sift = PaperDataset::Sift.scaled_spec(max).n;
        assert_eq!(sift, max);
        assert!(sizes.iter().all(|&s| s >= 200 && s <= max));
        assert!(PaperDataset::Fonts.scaled_spec(max).n > PaperDataset::Audio.scaled_spec(max).n);
    }

    #[test]
    fn generated_data_has_requested_shape() {
        for dataset in PaperDataset::ALL {
            let spec = dataset.scaled_spec(1200).with_points(300).with_dim(24);
            let ds = spec.generate(1);
            assert_eq!(ds.len(), 300, "{dataset}");
            assert_eq!(ds.dim(), 24, "{dataset}");
        }
    }

    #[test]
    fn isd_datasets_are_strictly_positive() {
        for dataset in [PaperDataset::Fonts, PaperDataset::Uniform] {
            let spec = dataset.scaled_spec(1000).with_points(400).with_dim(32);
            let ds = spec.generate(3);
            assert!(
                ds.as_flat().iter().all(|&v| v > 0.0),
                "{dataset} proxy must be strictly positive for Itakura-Saito"
            );
        }
    }

    #[test]
    fn ed_datasets_stay_in_exponential_safe_range() {
        for dataset in
            [PaperDataset::Audio, PaperDataset::Deep, PaperDataset::Sift, PaperDataset::Normal]
        {
            let spec = dataset.scaled_spec(1000).with_points(400).with_dim(32);
            let ds = spec.generate(4);
            assert!(
                ds.as_flat().iter().all(|&v| v.abs() < 50.0),
                "{dataset} proxy coordinates too large for the exponential generator"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = PaperDataset::Deep.scaled_spec(500).with_points(100).with_dim(16);
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(PaperDataset::Sift.to_string(), "Sift");
        assert_eq!(PaperDataset::Audio.to_string(), "Audio");
    }
}
