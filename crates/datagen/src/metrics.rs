//! Accuracy metrics for approximate search.

use bregman::PointId;

/// The paper's *overall ratio*:
/// `OR = (1/k) Σ_i D_f(p_i, q) / D_f(p*_i, q)`
/// where `p_i` is the i-th returned point and `p*_i` the exact i-th nearest
/// neighbour. An exact result has `OR = 1`; larger is worse.
///
/// Pairs whose exact divergence is zero are counted as ratio 1 when the
/// returned divergence is also (numerically) zero and are otherwise assigned
/// the returned divergence plus one, which keeps the metric finite.
pub fn overall_ratio(returned: &[(PointId, f64)], exact: &[(PointId, f64)]) -> f64 {
    let k = returned.len().min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    for i in 0..k {
        let approx_d = returned[i].1;
        let exact_d = exact[i].1;
        let ratio = if exact_d > 0.0 {
            approx_d / exact_d
        } else if approx_d.abs() < 1e-12 {
            1.0
        } else {
            1.0 + approx_d
        };
        total += ratio;
    }
    total / k as f64
}

/// Recall: the fraction of exact neighbours that appear anywhere in the
/// returned list.
pub fn recall(returned: &[(PointId, f64)], exact: &[(PointId, f64)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let returned_ids: std::collections::HashSet<PointId> =
        returned.iter().map(|(id, _)| *id).collect();
    let hit = exact.iter().filter(|(id, _)| returned_ids.contains(id)).count();
    hit as f64 / exact.len() as f64
}

/// Average of a slice of `f64` values; zero for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(values: &[(u32, f64)]) -> Vec<(PointId, f64)> {
        values.iter().map(|&(id, d)| (PointId(id), d)).collect()
    }

    #[test]
    fn exact_results_have_ratio_one_and_full_recall() {
        let exact = pairs(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(overall_ratio(&exact, &exact), 1.0);
        assert_eq!(recall(&exact, &exact), 1.0);
    }

    #[test]
    fn worse_results_increase_ratio() {
        let exact = pairs(&[(1, 1.0), (2, 2.0)]);
        let approx = pairs(&[(5, 2.0), (6, 2.0)]);
        let or = overall_ratio(&approx, &exact);
        assert!((or - 1.5).abs() < 1e-12); // (2/1 + 2/2) / 2
        assert_eq!(recall(&approx, &exact), 0.0);
    }

    #[test]
    fn partial_recall() {
        let exact = pairs(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
        let approx = pairs(&[(1, 1.0), (9, 2.5), (3, 3.0), (8, 9.0)]);
        assert_eq!(recall(&approx, &exact), 0.5);
    }

    #[test]
    fn zero_exact_distance_handled() {
        let exact = pairs(&[(1, 0.0), (2, 1.0)]);
        let same = pairs(&[(1, 0.0), (2, 1.0)]);
        assert_eq!(overall_ratio(&same, &exact), 1.0);
        let off = pairs(&[(3, 0.5), (2, 1.0)]);
        let or = overall_ratio(&off, &exact);
        assert!(or > 1.0 && or.is_finite());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(overall_ratio(&[], &[]), 1.0);
        assert_eq!(recall(&[], &[]), 1.0);
        let exact = pairs(&[(1, 1.0)]);
        assert_eq!(recall(&[], &exact), 0.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
