//! Elementary synthetic generators.

use bregman::DenseDataset;
use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Uniform data in `[lo, hi)` per coordinate.
pub fn uniform(n: usize, dim: usize, lo: f64, hi: f64, seed: u64) -> DenseDataset {
    assert!(hi > lo, "uniform range must be non-empty");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(rng.gen_range(lo..hi));
    }
    DenseDataset::from_flat(dim, data).expect("uniform generator produced ragged data")
}

/// Gaussian data with the given per-coordinate mean and standard deviation.
///
/// Sampling uses the Box-Muller transform so the only external dependency is
/// the uniform RNG.
pub fn normal(n: usize, dim: usize, mean: f64, std_dev: f64, seed: u64) -> DenseDataset {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    let gauss = BoxMuller;
    for _ in 0..n * dim {
        data.push(mean + std_dev * gauss.sample(&mut rng));
    }
    DenseDataset::from_flat(dim, data).expect("normal generator produced ragged data")
}

/// Gaussian data clipped (reflected) into the strictly positive orthant, for
/// divergences whose domain is `t > 0` (Itakura-Saito, generalized KL).
pub fn positive_normal(
    n: usize,
    dim: usize,
    mean: f64,
    std_dev: f64,
    floor: f64,
    seed: u64,
) -> DenseDataset {
    assert!(floor > 0.0, "floor must be strictly positive");
    let base = normal(n, dim, mean, std_dev, seed);
    let data: Vec<f64> = base.as_flat().iter().map(|&v| v.abs().max(floor)).collect();
    DenseDataset::from_flat(dim, data).expect("positive normal generator produced ragged data")
}

/// A mixture of `clusters` Gaussian clusters with centres drawn uniformly
/// from `[center_lo, center_hi)` and the given within-cluster spread; this is
/// the shape multimedia descriptor datasets (Audio/Deep/SIFT) tend to have
/// and is what makes ball-tree style indexes meaningful.
pub fn clustered(
    n: usize,
    dim: usize,
    clusters: usize,
    center_lo: f64,
    center_hi: f64,
    spread: f64,
    seed: u64,
) -> DenseDataset {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(center_lo..center_hi)).collect())
        .collect();
    let gauss = BoxMuller;
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let center = &centers[i % clusters];
        for &c in center.iter() {
            data.push(c + spread * gauss.sample(&mut rng));
        }
    }
    DenseDataset::from_flat(dim, data).expect("clustered generator produced ragged data")
}

/// Shift and clamp every coordinate so the dataset is strictly positive
/// (minimum value becomes `floor`); used to adapt generators to the
/// Itakura-Saito domain.
pub fn shift_positive(dataset: &DenseDataset, floor: f64) -> DenseDataset {
    assert!(floor > 0.0, "floor must be strictly positive");
    let min = dataset.as_flat().iter().cloned().fold(f64::INFINITY, f64::min);
    let shift = if min.is_finite() && min < floor { floor - min } else { 0.0 };
    let data: Vec<f64> = dataset.as_flat().iter().map(|&v| v + shift).collect();
    DenseDataset::from_flat(dataset.dim(), data).expect("shift preserved shape")
}

/// Box-Muller standard-normal sampler over any `Rng`.
#[derive(Debug, Default, Clone, Copy)]
pub struct BoxMuller;

impl BoxMuller {
    /// Draw one standard-normal sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Avoid u1 = 0 exactly (log(0) = -inf).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution<f64> for BoxMuller {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        BoxMuller::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_shape() {
        let ds = uniform(100, 7, 2.0, 5.0, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dim(), 7);
        assert!(ds.as_flat().iter().all(|&v| (2.0..5.0).contains(&v)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(50, 3, 0.0, 1.0, 9);
        let b = uniform(50, 3, 0.0, 1.0, 9);
        let c = uniform(50, 3, 0.0, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let ds = normal(4000, 4, 10.0, 2.0, 3);
        let flat = ds.as_flat();
        let mean: f64 = flat.iter().sum::<f64>() / flat.len() as f64;
        let var: f64 =
            flat.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / flat.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn positive_normal_is_strictly_positive() {
        let ds = positive_normal(500, 6, 0.0, 3.0, 0.01, 4);
        assert!(ds.as_flat().iter().all(|&v| v >= 0.01));
    }

    #[test]
    fn clustered_data_forms_tight_groups() {
        let ds = clustered(200, 5, 4, 0.0, 100.0, 0.5, 5);
        assert_eq!(ds.len(), 200);
        // Points assigned to the same cluster (i and i+4) should be much
        // closer to each other than to other clusters on average.
        let same = bregman::SquaredEuclidean;
        use bregman::Divergence;
        let within = same.divergence(ds.row(0), ds.row(4));
        let across = same.divergence(ds.row(0), ds.row(1));
        assert!(within < across, "within {within} should be < across {across}");
    }

    #[test]
    fn shift_positive_moves_minimum_to_floor() {
        let ds = normal(300, 3, 0.0, 1.0, 6);
        let shifted = shift_positive(&ds, 0.5);
        let min = shifted.as_flat().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((min - 0.5).abs() < 1e-9);
        // Already-positive data is untouched.
        let positive = uniform(10, 2, 5.0, 6.0, 7);
        let untouched = shift_positive(&positive, 0.5);
        assert_eq!(positive, untouched);
    }

    #[test]
    fn box_muller_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sampler = BoxMuller;
        let samples: Vec<f64> = (0..20000).map(|_| sampler.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
