//! Brute-force ground truth, parallelized across queries.

use bregman::{DenseDataset, DivergenceKind, PointId};

/// Exact kNN results for a batch of queries.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// `results[q]` holds the `k` nearest `(id, divergence)` pairs of query
    /// `q`, ordered by increasing divergence.
    pub results: Vec<Vec<(PointId, f64)>>,
    /// The `k` the truth was computed for.
    pub k: usize,
}

impl GroundTruth {
    /// The exact neighbours of one query.
    pub fn neighbors_of(&self, query_index: usize) -> &[(PointId, f64)] {
        &self.results[query_index]
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the truth covers no queries.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

/// Compute exact kNN for every query by linear scan, fanning queries out over
/// `threads` scoped worker threads.
pub fn ground_truth_knn(
    divergence: DivergenceKind,
    dataset: &DenseDataset,
    queries: &DenseDataset,
    k: usize,
    threads: usize,
) -> GroundTruth {
    let q = queries.len();
    let mut results: Vec<Vec<(PointId, f64)>> = vec![Vec::new(); q];
    if q == 0 || dataset.is_empty() || k == 0 {
        return GroundTruth { results, k };
    }
    let threads = threads.max(1).min(q);
    let chunk = q.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, slot) in results.chunks_mut(chunk).enumerate() {
            let start = worker * chunk;
            scope.spawn(move || {
                for (offset, out) in slot.iter_mut().enumerate() {
                    let query = queries.row(start + offset);
                    *out = single_query_knn(divergence, dataset, query, k);
                }
            });
        }
    });
    GroundTruth { results, k }
}

/// Exact kNN of one query by linear scan.
pub fn single_query_knn(
    divergence: DivergenceKind,
    dataset: &DenseDataset,
    query: &[f64],
    k: usize,
) -> Vec<(PointId, f64)> {
    let mut all: Vec<(PointId, f64)> =
        dataset.iter().map(|(id, point)| (id, divergence.divergence(point, query))).collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;

    #[test]
    fn parallel_truth_matches_sequential_truth() {
        let ds = uniform(500, 8, 0.5, 5.0, 1);
        let queries = uniform(12, 8, 0.5, 5.0, 2);
        let parallel = ground_truth_knn(DivergenceKind::ItakuraSaito, &ds, &queries, 7, 4);
        assert_eq!(parallel.len(), 12);
        for qi in 0..queries.len() {
            let sequential =
                single_query_knn(DivergenceKind::ItakuraSaito, &ds, queries.row(qi), 7);
            assert_eq!(parallel.neighbors_of(qi), sequential.as_slice());
        }
    }

    #[test]
    fn results_are_sorted_and_of_length_k() {
        let ds = uniform(100, 4, 0.5, 3.0, 3);
        let queries = uniform(5, 4, 0.5, 3.0, 4);
        let truth = ground_truth_knn(DivergenceKind::Exponential, &ds, &queries, 10, 2);
        for qi in 0..5 {
            let nn = truth.neighbors_of(qi);
            assert_eq!(nn.len(), 10);
            for pair in nn.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
        }
    }

    #[test]
    fn degenerate_inputs_produce_empty_truth() {
        let ds = uniform(10, 3, 0.5, 1.0, 5);
        let queries = uniform(3, 3, 0.5, 1.0, 6);
        assert!(ground_truth_knn(DivergenceKind::SquaredEuclidean, &ds, &queries, 0, 2)
            .results
            .iter()
            .all(|r| r.is_empty()));
        let empty_queries = DenseDataset::empty(3).unwrap();
        assert!(ground_truth_knn(DivergenceKind::SquaredEuclidean, &ds, &empty_queries, 3, 2)
            .is_empty());
    }

    #[test]
    fn more_threads_than_queries_is_fine() {
        let ds = uniform(50, 3, 0.5, 1.0, 7);
        let queries = uniform(2, 3, 0.5, 1.0, 8);
        let truth = ground_truth_knn(DivergenceKind::SquaredEuclidean, &ds, &queries, 3, 64);
        assert_eq!(truth.len(), 2);
        assert_eq!(truth.k, 3);
    }
}
