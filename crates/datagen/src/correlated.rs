//! Block-correlated Gaussian generator.
//!
//! PCCP (the paper's Pearson-Correlation-Coefficient-based Partition) only
//! improves over a naive equal split when dimensions are correlated in
//! groups — exactly what real multimedia descriptors exhibit (neighbouring
//! filter-bank channels, adjacent SIFT histogram bins, …). This generator
//! produces data with a known block-correlation structure: dimensions are
//! divided into blocks; every dimension of a block is a noisy copy of the
//! same latent factor, so within-block Pearson correlation is high and
//! across-block correlation is near zero.

use bregman::DenseDataset;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::synthetic::BoxMuller;

/// Parameters of the block-correlated generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedSpec {
    /// Number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of correlated blocks the dimensions are divided into.
    pub blocks: usize,
    /// Weight of the shared latent factor in each coordinate (0 = independent,
    /// 1 = perfectly correlated within a block).
    pub correlation: f64,
    /// Mean added to every coordinate (used to move data into the positive
    /// orthant for Itakura-Saito workloads).
    pub mean: f64,
    /// Scale of both the latent factor and the independent noise.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorrelatedSpec {
    fn default() -> Self {
        Self { n: 1000, dim: 64, blocks: 8, correlation: 0.8, mean: 5.0, scale: 1.0, seed: 42 }
    }
}

impl CorrelatedSpec {
    /// Generate the dataset described by this spec.
    pub fn generate(&self) -> DenseDataset {
        assert!(self.blocks > 0 && self.blocks <= self.dim, "blocks must be in 1..=dim");
        assert!((0.0..=1.0).contains(&self.correlation), "correlation must be in [0, 1]");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let gauss = BoxMuller;
        let rho = self.correlation;
        let independent_weight = (1.0 - rho * rho).sqrt();
        let mut data = Vec::with_capacity(self.n * self.dim);
        for _ in 0..self.n {
            // One latent factor per block for this point.
            let factors: Vec<f64> = (0..self.blocks).map(|_| gauss.sample(&mut rng)).collect();
            for j in 0..self.dim {
                let block = self.block_of(j);
                let noise = gauss.sample(&mut rng);
                let value = rho * factors[block] + independent_weight * noise;
                data.push(self.mean + self.scale * value);
            }
        }
        DenseDataset::from_flat(self.dim, data).expect("correlated generator produced ragged data")
    }

    /// Which correlated block a dimension belongs to (dimensions are assigned
    /// to blocks contiguously).
    pub fn block_of(&self, dim_index: usize) -> usize {
        let per_block = self.dim.div_ceil(self.blocks);
        (dim_index / per_block).min(self.blocks - 1)
    }
}

/// Sample Pearson correlation coefficient between two columns of a dataset
/// (exposed for tests and for PCCP's own unit tests).
pub fn column_correlation(dataset: &DenseDataset, a: usize, b: usize) -> f64 {
    let n = dataset.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let col_a: Vec<f64> = dataset.column(a).collect();
    let col_b: Vec<f64> = dataset.column(b).collect();
    let mean_a = col_a.iter().sum::<f64>() / n;
    let mean_b = col_b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..dataset.len() {
        let da = col_a[i] - mean_a;
        let db = col_b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        0.0
    } else {
        cov / (var_a.sqrt() * var_b.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_block_correlation_is_high_across_block_low() {
        let spec = CorrelatedSpec {
            n: 3000,
            dim: 12,
            blocks: 3,
            correlation: 0.9,
            mean: 10.0,
            scale: 1.0,
            seed: 7,
        };
        let ds = spec.generate();
        // Dimensions 0 and 1 share block 0; dimensions 0 and 5 do not.
        let within = column_correlation(&ds, 0, 1).abs();
        let across = column_correlation(&ds, 0, 5).abs();
        assert!(within > 0.6, "within-block correlation too low: {within}");
        assert!(across < 0.2, "across-block correlation too high: {across}");
    }

    #[test]
    fn zero_correlation_gives_independent_columns() {
        let spec =
            CorrelatedSpec { correlation: 0.0, n: 3000, dim: 6, blocks: 2, ..Default::default() };
        let ds = spec.generate();
        assert!(column_correlation(&ds, 0, 1).abs() < 0.1);
    }

    #[test]
    fn block_assignment_is_contiguous_and_total() {
        let spec = CorrelatedSpec { dim: 10, blocks: 3, ..Default::default() };
        let blocks: Vec<usize> = (0..10).map(|j| spec.block_of(j)).collect();
        assert_eq!(blocks, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn shape_and_mean_are_respected() {
        let spec = CorrelatedSpec { n: 500, dim: 8, mean: 20.0, ..Default::default() };
        let ds = spec.generate();
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 8);
        let mean = ds.as_flat().iter().sum::<f64>() / ds.as_flat().len() as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn correlation_helper_handles_degenerate_inputs() {
        let constant = DenseDataset::from_rows(&[vec![1.0, 5.0], vec![1.0, 6.0]]).unwrap();
        assert_eq!(column_correlation(&constant, 0, 1), 0.0);
        let single = DenseDataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(column_correlation(&single, 0, 1), 0.0);
    }
}
