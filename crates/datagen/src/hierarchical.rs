//! Hierarchical multiplicative cluster generator.
//!
//! Multimedia descriptors (filter-bank energies, gradient histograms, CNN
//! activations) typically combine three multiplicative effects:
//!
//! * a per-dimension base scale (some channels are simply larger than
//!   others),
//! * a per-item *global* factor (overall loudness / contrast / norm), which
//!   is shared by groups of semantically similar items — this is what gives
//!   the data its cluster structure,
//! * smaller per-block factors (a band of adjacent channels moves together),
//!   which is what gives dimensions their block correlation,
//! * small per-coordinate noise.
//!
//! The generator draws, for each of `clusters` clusters, a global log-factor
//! and one log-factor per correlated block, then emits points as
//! `x_j = s_j · exp(G_k + H_{k,b(j)} + ε)` — strictly positive, block
//! correlated, clustered, and with within-point coordinate scales far more
//! homogeneous than the between-cluster separation. The last property is
//! what makes the Cauchy–Schwarz filter of BrePartition effective, mirroring
//! the behaviour the paper reports on its real datasets.

use bregman::DenseDataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::synthetic::BoxMuller;

/// Parameters of the hierarchical multiplicative generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalSpec {
    /// Number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of clusters (per-cluster global factor).
    pub clusters: usize,
    /// Number of correlated dimension blocks.
    pub blocks: usize,
    /// Base coordinate scale (per-dimension scales are drawn within ±2% of
    /// this value).
    pub base_scale: f64,
    /// Standard deviation of the per-cluster global log-factor (drives
    /// cluster separation).
    pub cluster_log_sigma: f64,
    /// Standard deviation of the per-(cluster, block) log-factor (drives
    /// block correlation and keeps subspaces from being perfectly uniform).
    pub block_log_sigma: f64,
    /// Standard deviation of the per-coordinate log-noise.
    pub noise_log_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HierarchicalSpec {
    fn default() -> Self {
        Self {
            n: 1000,
            dim: 64,
            clusters: 16,
            blocks: 8,
            base_scale: 5.0,
            cluster_log_sigma: 0.4,
            block_log_sigma: 0.08,
            noise_log_sigma: 0.03,
            seed: 2024,
        }
    }
}

impl HierarchicalSpec {
    /// Which correlated block a dimension belongs to (contiguous blocks).
    pub fn block_of(&self, dim_index: usize) -> usize {
        let per_block = self.dim.div_ceil(self.blocks.max(1));
        (dim_index / per_block).min(self.blocks.saturating_sub(1))
    }

    /// Which cluster a point belongs to (round-robin, matching
    /// [`crate::synthetic::clustered`]).
    pub fn cluster_of(&self, point_index: usize) -> usize {
        point_index % self.clusters.max(1)
    }

    /// Generate the dataset.
    ///
    /// Delegates to [`HierarchicalSpec::stream`], so a full `generate()`
    /// and a block-by-block stream of the same spec are bit-identical by
    /// construction, not by parallel-implementation luck.
    pub fn generate(&self) -> DenseDataset {
        let mut stream = self.stream();
        let mut data = Vec::with_capacity(self.n * self.dim);
        while stream.fill_block(usize::MAX, &mut data) > 0 {}
        DenseDataset::from_flat(self.dim, data)
            .expect("hierarchical generator produced ragged data")
    }

    /// A streaming generator over this spec: the factor tables are drawn
    /// up front (in exactly the order [`HierarchicalSpec::generate`]
    /// draws them), then points are emitted on demand in blocks of any
    /// size. Million-point builds can fill the single flat buffer the
    /// index builder will consume — or feed rows straight into an insert
    /// pool — without the generator staging its own full `n × dim`
    /// matrix first.
    pub fn stream(&self) -> HierarchicalStream {
        assert!(self.n > 0 && self.dim > 0, "need at least one point and one dimension");
        assert!(self.clusters > 0 && self.blocks > 0, "need at least one cluster and block");
        assert!(self.base_scale > 0.0, "base scale must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let gauss = BoxMuller;

        // Per-dimension base scales within ±2% of the base scale.
        let scales: Vec<f64> =
            (0..self.dim).map(|_| self.base_scale * rng.gen_range(0.98..1.02)).collect();
        // Per-cluster global log-factors and per-(cluster, block) log-factors.
        let cluster_factors: Vec<f64> =
            (0..self.clusters).map(|_| self.cluster_log_sigma * gauss.sample(&mut rng)).collect();
        let block_factors: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| {
                (0..self.blocks).map(|_| self.block_log_sigma * gauss.sample(&mut rng)).collect()
            })
            .collect();
        let block_of_dim: Vec<usize> = (0..self.dim).map(|j| self.block_of(j)).collect();

        HierarchicalStream {
            spec: *self,
            rng,
            gauss,
            scales,
            cluster_factors,
            block_factors,
            block_of_dim,
            next_point: 0,
        }
    }
}

/// An in-progress streaming generation (see [`HierarchicalSpec::stream`]).
///
/// Points come out in the same order, with the same values, as one big
/// [`HierarchicalSpec::generate`] call: the per-coordinate noise draws are
/// strictly sequential, so cutting the emission into blocks cannot change
/// the stream.
#[derive(Debug, Clone)]
pub struct HierarchicalStream {
    spec: HierarchicalSpec,
    rng: ChaCha8Rng,
    gauss: BoxMuller,
    scales: Vec<f64>,
    cluster_factors: Vec<f64>,
    block_factors: Vec<Vec<f64>>,
    block_of_dim: Vec<usize>,
    next_point: usize,
}

impl HierarchicalStream {
    /// The spec this stream generates.
    pub fn spec(&self) -> &HierarchicalSpec {
        &self.spec
    }

    /// Points emitted so far.
    pub fn emitted(&self) -> usize {
        self.next_point
    }

    /// Points still to come.
    pub fn remaining(&self) -> usize {
        self.spec.n - self.next_point
    }

    /// Append up to `max_rows` points (each `dim` coordinates, row-major)
    /// to `out`, returning how many points were emitted — `0` once the
    /// stream is exhausted.
    pub fn fill_block(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize {
        let rows = max_rows.min(self.remaining());
        out.reserve(rows * self.spec.dim);
        for i in self.next_point..self.next_point + rows {
            let k = self.spec.cluster_of(i);
            for (j, &scale) in self.scales.iter().enumerate() {
                let b = self.block_of_dim[j];
                let log_value = self.cluster_factors[k]
                    + self.block_factors[k][b]
                    + self.spec.noise_log_sigma * self.gauss.sample(&mut self.rng);
                out.push(scale * log_value.exp());
            }
        }
        self.next_point += rows;
        rows
    }

    /// The next block of up to `max_rows` points as a standalone dataset,
    /// or `None` once exhausted. Convenience over
    /// [`HierarchicalStream::fill_block`] for callers that want owned
    /// blocks (e.g. an insert pool filled lazily).
    pub fn next_block(&mut self, max_rows: usize) -> Option<DenseDataset> {
        let mut data = Vec::new();
        if self.fill_block(max_rows, &mut data) == 0 {
            return None;
        }
        Some(
            DenseDataset::from_flat(self.spec.dim, data)
                .expect("hierarchical stream produced ragged data"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlated::column_correlation;
    use bregman::{Divergence, ItakuraSaito};

    fn spec() -> HierarchicalSpec {
        HierarchicalSpec { n: 1200, dim: 24, clusters: 12, blocks: 6, ..Default::default() }
    }

    #[test]
    fn shape_positivity_and_determinism() {
        let s = spec();
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1200);
        assert_eq!(a.dim(), 24);
        assert!(a.as_flat().iter().all(|&v| v > 0.0));
        let other = HierarchicalSpec { seed: 7, ..s }.generate();
        assert_ne!(a, other);
    }

    #[test]
    fn within_block_correlation_exceeds_across_block() {
        let ds = spec().generate();
        // Dims 0 and 1 share block 0; dims 0 and 10 are in different blocks.
        let within = column_correlation(&ds, 0, 1).abs();
        let across = column_correlation(&ds, 0, 10).abs();
        assert!(
            within > across,
            "within-block correlation {within} should exceed across-block {across}"
        );
    }

    #[test]
    fn within_cluster_divergence_is_much_smaller_than_across() {
        let s = spec();
        let ds = s.generate();
        // Points 0 and 12 share cluster 0 (round-robin over 12 clusters);
        // points 0 and 1 belong to different clusters.
        let within = ItakuraSaito.divergence(ds.row(0), ds.row(12));
        let across = ItakuraSaito.divergence(ds.row(0), ds.row(1));
        assert!(
            within * 3.0 < across,
            "within-cluster divergence {within} not clearly below across-cluster {across}"
        );
    }

    #[test]
    fn coordinates_within_a_point_are_homogeneous() {
        // The ratio between the largest and smallest coordinate of any point
        // stays modest — the property that keeps the Cauchy slack small.
        let ds = spec().generate();
        for i in (0..ds.len()).step_by(117) {
            let row = ds.row(i);
            let max = row.iter().cloned().fold(f64::MIN, f64::max);
            let min = row.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min < 2.5, "point {i} spans ratio {}", max / min);
        }
    }

    #[test]
    fn streamed_blocks_concatenate_to_generate_bit_identically() {
        let s = spec();
        let whole = s.generate();
        // Ragged block sizes, including one bigger than the remainder.
        for block_rows in [1usize, 7, 128, 999, 5000] {
            let mut stream = s.stream();
            let mut data = Vec::new();
            let mut emitted = 0;
            while stream.remaining() > 0 {
                emitted += stream.fill_block(block_rows, &mut data);
                assert_eq!(stream.emitted(), emitted);
            }
            assert_eq!(stream.fill_block(block_rows, &mut data), 0);
            assert_eq!(data, whole.as_flat(), "block size {block_rows} diverged");
        }
    }

    #[test]
    fn owned_blocks_match_the_flat_stream() {
        let s = HierarchicalSpec { n: 100, dim: 8, clusters: 5, blocks: 4, ..Default::default() };
        let whole = s.generate();
        let mut stream = s.stream();
        let mut rows = 0usize;
        while let Some(block) = stream.next_block(33) {
            for i in 0..block.len() {
                assert_eq!(block.row(i), whole.row(rows + i));
            }
            rows += block.len();
        }
        assert_eq!(rows, 100);
    }

    #[test]
    fn block_and_cluster_assignment_are_total() {
        let s = HierarchicalSpec { dim: 10, blocks: 3, clusters: 4, n: 8, ..Default::default() };
        let blocks: Vec<usize> = (0..10).map(|j| s.block_of(j)).collect();
        assert_eq!(blocks, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        let clusters: Vec<usize> = (0..8).map(|i| s.cluster_of(i)).collect();
        assert_eq!(clusters, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
