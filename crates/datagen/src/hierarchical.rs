//! Hierarchical multiplicative cluster generator.
//!
//! Multimedia descriptors (filter-bank energies, gradient histograms, CNN
//! activations) typically combine three multiplicative effects:
//!
//! * a per-dimension base scale (some channels are simply larger than
//!   others),
//! * a per-item *global* factor (overall loudness / contrast / norm), which
//!   is shared by groups of semantically similar items — this is what gives
//!   the data its cluster structure,
//! * smaller per-block factors (a band of adjacent channels moves together),
//!   which is what gives dimensions their block correlation,
//! * small per-coordinate noise.
//!
//! The generator draws, for each of `clusters` clusters, a global log-factor
//! and one log-factor per correlated block, then emits points as
//! `x_j = s_j · exp(G_k + H_{k,b(j)} + ε)` — strictly positive, block
//! correlated, clustered, and with within-point coordinate scales far more
//! homogeneous than the between-cluster separation. The last property is
//! what makes the Cauchy–Schwarz filter of BrePartition effective, mirroring
//! the behaviour the paper reports on its real datasets.

use bregman::DenseDataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::synthetic::BoxMuller;

/// Parameters of the hierarchical multiplicative generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalSpec {
    /// Number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of clusters (per-cluster global factor).
    pub clusters: usize,
    /// Number of correlated dimension blocks.
    pub blocks: usize,
    /// Base coordinate scale (per-dimension scales are drawn within ±2% of
    /// this value).
    pub base_scale: f64,
    /// Standard deviation of the per-cluster global log-factor (drives
    /// cluster separation).
    pub cluster_log_sigma: f64,
    /// Standard deviation of the per-(cluster, block) log-factor (drives
    /// block correlation and keeps subspaces from being perfectly uniform).
    pub block_log_sigma: f64,
    /// Standard deviation of the per-coordinate log-noise.
    pub noise_log_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HierarchicalSpec {
    fn default() -> Self {
        Self {
            n: 1000,
            dim: 64,
            clusters: 16,
            blocks: 8,
            base_scale: 5.0,
            cluster_log_sigma: 0.4,
            block_log_sigma: 0.08,
            noise_log_sigma: 0.03,
            seed: 2024,
        }
    }
}

impl HierarchicalSpec {
    /// Which correlated block a dimension belongs to (contiguous blocks).
    pub fn block_of(&self, dim_index: usize) -> usize {
        let per_block = self.dim.div_ceil(self.blocks.max(1));
        (dim_index / per_block).min(self.blocks.saturating_sub(1))
    }

    /// Which cluster a point belongs to (round-robin, matching
    /// [`crate::synthetic::clustered`]).
    pub fn cluster_of(&self, point_index: usize) -> usize {
        point_index % self.clusters.max(1)
    }

    /// Generate the dataset.
    pub fn generate(&self) -> DenseDataset {
        assert!(self.n > 0 && self.dim > 0, "need at least one point and one dimension");
        assert!(self.clusters > 0 && self.blocks > 0, "need at least one cluster and block");
        assert!(self.base_scale > 0.0, "base scale must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let gauss = BoxMuller;

        // Per-dimension base scales within ±2% of the base scale.
        let scales: Vec<f64> =
            (0..self.dim).map(|_| self.base_scale * rng.gen_range(0.98..1.02)).collect();
        // Per-cluster global log-factors and per-(cluster, block) log-factors.
        let cluster_factors: Vec<f64> =
            (0..self.clusters).map(|_| self.cluster_log_sigma * gauss.sample(&mut rng)).collect();
        let block_factors: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| {
                (0..self.blocks).map(|_| self.block_log_sigma * gauss.sample(&mut rng)).collect()
            })
            .collect();

        let mut data = Vec::with_capacity(self.n * self.dim);
        for i in 0..self.n {
            let k = self.cluster_of(i);
            for (j, &scale) in scales.iter().enumerate() {
                let b = self.block_of(j);
                let log_value = cluster_factors[k]
                    + block_factors[k][b]
                    + self.noise_log_sigma * gauss.sample(&mut rng);
                data.push(scale * log_value.exp());
            }
        }
        DenseDataset::from_flat(self.dim, data)
            .expect("hierarchical generator produced ragged data")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlated::column_correlation;
    use bregman::{Divergence, ItakuraSaito};

    fn spec() -> HierarchicalSpec {
        HierarchicalSpec { n: 1200, dim: 24, clusters: 12, blocks: 6, ..Default::default() }
    }

    #[test]
    fn shape_positivity_and_determinism() {
        let s = spec();
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1200);
        assert_eq!(a.dim(), 24);
        assert!(a.as_flat().iter().all(|&v| v > 0.0));
        let other = HierarchicalSpec { seed: 7, ..s }.generate();
        assert_ne!(a, other);
    }

    #[test]
    fn within_block_correlation_exceeds_across_block() {
        let ds = spec().generate();
        // Dims 0 and 1 share block 0; dims 0 and 10 are in different blocks.
        let within = column_correlation(&ds, 0, 1).abs();
        let across = column_correlation(&ds, 0, 10).abs();
        assert!(
            within > across,
            "within-block correlation {within} should exceed across-block {across}"
        );
    }

    #[test]
    fn within_cluster_divergence_is_much_smaller_than_across() {
        let s = spec();
        let ds = s.generate();
        // Points 0 and 12 share cluster 0 (round-robin over 12 clusters);
        // points 0 and 1 belong to different clusters.
        let within = ItakuraSaito.divergence(ds.row(0), ds.row(12));
        let across = ItakuraSaito.divergence(ds.row(0), ds.row(1));
        assert!(
            within * 3.0 < across,
            "within-cluster divergence {within} not clearly below across-cluster {across}"
        );
    }

    #[test]
    fn coordinates_within_a_point_are_homogeneous() {
        // The ratio between the largest and smallest coordinate of any point
        // stays modest — the property that keeps the Cauchy slack small.
        let ds = spec().generate();
        for i in (0..ds.len()).step_by(117) {
            let row = ds.row(i);
            let max = row.iter().cloned().fold(f64::MIN, f64::max);
            let min = row.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min < 2.5, "point {i} spans ratio {}", max / min);
        }
    }

    #[test]
    fn block_and_cluster_assignment_are_total() {
        let s = HierarchicalSpec { dim: 10, blocks: 3, clusters: 4, n: 8, ..Default::default() };
        let blocks: Vec<usize> = (0..10).map(|j| s.block_of(j)).collect();
        assert_eq!(blocks, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        let clusters: Vec<usize> = (0..8).map(|i| s.cluster_of(i)).collect();
        assert_eq!(clusters, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
