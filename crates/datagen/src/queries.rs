//! Query workload generation.
//!
//! The paper samples 50 query points per dataset. This module produces query
//! workloads either by perturbing randomly chosen data points (queries whose
//! neighbourhoods are non-trivial) or by drawing fresh points from the same
//! generator; perturbation keeps queries inside the divergence domain.

use bregman::{DenseDataset, DivergenceKind};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A batch of query points with the divergence they are meant to be used
/// with.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkload {
    /// Divergence the workload targets (used for domain checks).
    pub divergence: DivergenceKind,
    /// The query points.
    pub queries: DenseDataset,
}

impl QueryWorkload {
    /// Sample `count` queries by perturbing distinct data points with
    /// multiplicative noise of relative magnitude `jitter` (clamped into the
    /// divergence's domain).
    pub fn perturbed_from(
        dataset: &DenseDataset,
        divergence: DivergenceKind,
        count: usize,
        jitter: f64,
        seed: u64,
    ) -> QueryWorkload {
        assert!(!dataset.is_empty(), "cannot sample queries from an empty dataset");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(count.max(1).min(dataset.len()));
        // Repeat indices if more queries than points were requested.
        while indices.len() < count {
            indices.push(indices[rng.gen_range(0..indices.len())]);
        }
        let mut rows = Vec::with_capacity(count);
        for &idx in &indices {
            let base = dataset.row(idx);
            let row: Vec<f64> = base
                .iter()
                .map(|&v| {
                    let noise = 1.0 + jitter * (rng.gen_range(-1.0..1.0));
                    let perturbed = v * noise + jitter * rng.gen_range(-0.5..0.5);
                    if divergence.requires_positive_data() {
                        perturbed.max(1e-3)
                    } else {
                        perturbed
                    }
                })
                .collect();
            rows.push(row);
        }
        QueryWorkload {
            divergence,
            queries: DenseDataset::from_rows(&rows).expect("query rows share the data dimension"),
        }
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterate over the query points.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.queries.len()).map(move |i| self.queries.row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;

    #[test]
    fn workload_has_requested_size_and_dimension() {
        let ds = uniform(200, 10, 1.0, 5.0, 1);
        let w = QueryWorkload::perturbed_from(&ds, DivergenceKind::Exponential, 25, 0.05, 2);
        assert_eq!(w.len(), 25);
        assert!(!w.is_empty());
        assert_eq!(w.queries.dim(), 10);
        assert_eq!(w.iter().count(), 25);
    }

    #[test]
    fn isd_workload_stays_positive_even_with_large_jitter() {
        let ds = uniform(100, 6, 0.01, 2.0, 3);
        let w = QueryWorkload::perturbed_from(&ds, DivergenceKind::ItakuraSaito, 50, 2.0, 4);
        for q in w.iter() {
            assert!(q.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn more_queries_than_points_recycles_points() {
        let ds = uniform(10, 4, 1.0, 2.0, 5);
        let w = QueryWorkload::perturbed_from(&ds, DivergenceKind::SquaredEuclidean, 30, 0.1, 6);
        assert_eq!(w.len(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = uniform(100, 5, 1.0, 3.0, 7);
        let a = QueryWorkload::perturbed_from(&ds, DivergenceKind::Exponential, 10, 0.1, 8);
        let b = QueryWorkload::perturbed_from(&ds, DivergenceKind::Exponential, 10, 0.1, 8);
        let c = QueryWorkload::perturbed_from(&ds, DivergenceKind::Exponential, 10, 0.1, 9);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_jitter_reproduces_data_points() {
        let ds = uniform(50, 3, 1.0, 4.0, 10);
        let w = QueryWorkload::perturbed_from(&ds, DivergenceKind::SquaredEuclidean, 5, 0.0, 11);
        // Every query must coincide with some data point.
        for q in w.iter() {
            let found = (0..ds.len())
                .any(|i| ds.row(i).iter().zip(q.iter()).all(|(a, b)| (a - b).abs() < 1e-12));
            assert!(found);
        }
    }
}
