//! Dependency-free metrics for the BrePartition serving stack.
//!
//! Every number the serving layer reports — queries served, pages read,
//! tail latency — used to travel through ad-hoc plumbing: an
//! `AtomicIoStats` here, a `Vec<f64>` of latencies there. This crate is
//! the one shared substrate underneath them:
//!
//! * [`Counter`] / [`Gauge`] — lock-free monotone and signed instantaneous
//!   values, cheap enough for once-per-query (or once-per-page) updates.
//! * [`Histogram`] — a log-bucketed latency histogram in the spirit of
//!   HdrHistogram: 32 sub-buckets per power of two (≤ 3.125% relative
//!   error), atomic recording from any number of threads, and mergeable
//!   [`HistogramSnapshot`]s whose quantiles ([`HistogramSnapshot::quantile`])
//!   give p50/p95/p99/p999 without storing individual samples.
//! * [`Phase`] / [`QueryTrace`] / [`PhaseStats`] — per-query trace spans:
//!   a query is decomposed into filter / refine / io / merge phases, each
//!   timed into a [`QueryTrace`] and folded into per-phase histograms.
//! * [`Registry`] — a name → metric map with get-or-register semantics and
//!   a consistent, stably ordered [`Snapshot`] that serializes to
//!   deterministic JSON ([`Snapshot::to_json`]) for machine diffing.
//!
//! Everything here is `std`-only and allocation-free on the hot paths:
//! recording into a counter or histogram is a handful of relaxed atomic
//! operations, so instrumented code stays honest about its own cost.
//!
//! # Example
//!
//! ```
//! use telemetry::{Registry, Phase};
//!
//! let registry = Registry::new();
//! let queries = registry.counter("engine.queries");
//! let latency = registry.histogram("engine.query_ns");
//! queries.inc();
//! latency.record(1_250_000); // 1.25 ms in nanoseconds
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("engine.queries"), Some(1));
//! assert!(snap.histogram("engine.query_ns").unwrap().quantile(0.5) >= 1_250_000);
//! assert_eq!(Phase::Filter.name(), "filter");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Metric, MetricValue, Registry, Snapshot};
pub use span::{Phase, PhaseStats, QueryTrace, SpanTimer};
