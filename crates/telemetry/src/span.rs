//! Per-query trace spans: decompose a query into named phases and fold
//! the phase timings into per-phase histograms.
//!
//! A worker thread owns a plain [`QueryTrace`] per query, opens a
//! [`SpanTimer`] around each phase (filter → refine → merge, with io
//! recorded at the buffer-pool layer), and hands the finished trace to a
//! shared [`PhaseStats`] — one atomic histogram per phase — so tail
//! analysis can answer "is p99 spent filtering or merging?" without any
//! per-query allocation or locking.

use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::registry::Registry;
use std::sync::Arc;

/// The phases a query decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Candidate generation: partition filtering, tree descent, or the
    /// static-backend search underneath a delta overlay.
    Filter,
    /// Exact re-ranking of candidates (including the overlay's exact scan
    /// of live delta rows).
    Refine,
    /// Physical page reads, timed at the buffer-pool layer.
    Io,
    /// Merging and truncating partial result lists.
    Merge,
}

impl Phase {
    /// Every phase, in recording order.
    pub const ALL: [Phase; 4] = [Phase::Filter, Phase::Refine, Phase::Io, Phase::Merge];

    /// The phase's stable lowercase name (used as a metric-name suffix).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Filter => "filter",
            Phase::Refine => "refine",
            Phase::Io => "io",
            Phase::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Filter => 0,
            Phase::Refine => 1,
            Phase::Io => 2,
            Phase::Merge => 3,
        }
    }
}

/// Per-query phase timings in nanoseconds. Plain data — owned by one
/// worker, no atomics — until folded into a [`PhaseStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    ns: [u64; Phase::ALL.len()],
}

impl QueryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `nanos` to `phase` (phases interrupted and resumed accumulate).
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.ns[phase.index()] += nanos;
    }

    /// Nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Total attributed nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Reset all phases to zero so the trace can serve the next query.
    pub fn clear(&mut self) {
        self.ns = [0; Phase::ALL.len()];
    }
}

/// A scope timer attributing its lifetime to one phase of a
/// [`QueryTrace`]. Dropping the timer records the elapsed time.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    trace: &'a mut QueryTrace,
    phase: Phase,
    started: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Start timing `phase` into `trace`.
    pub fn start(trace: &'a mut QueryTrace, phase: Phase) -> Self {
        Self { trace, phase, started: Instant::now() }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.trace.add(self.phase, nanos);
    }
}

/// Shared per-phase histograms: the aggregation target for every worker's
/// [`QueryTrace`]s. Recording is atomic, so one `PhaseStats` serves an
/// entire engine.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    histograms: [Arc<Histogram>; Phase::ALL.len()],
}

impl Default for PhaseStats {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseStats {
    /// Empty per-phase histograms.
    pub fn new() -> Self {
        Self { histograms: std::array::from_fn(|_| Arc::new(Histogram::new())) }
    }

    /// Record one phase duration directly.
    pub fn record(&self, phase: Phase, nanos: u64) {
        self.histograms[phase.index()].record(nanos);
    }

    /// Fold a finished per-query trace in; phases the query never entered
    /// (zero nanoseconds) are skipped so their histograms count only
    /// queries that actually exercised them.
    pub fn record_trace(&self, trace: &QueryTrace) {
        for phase in Phase::ALL {
            let nanos = trace.nanos(phase);
            if nanos > 0 {
                self.record(phase, nanos);
            }
        }
    }

    /// Time `f` and attribute its duration to `phase`.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let result = f();
        self.histograms[phase.index()].record_duration(started.elapsed());
        result
    }

    /// The shared histogram behind `phase`.
    pub fn histogram(&self, phase: Phase) -> &Arc<Histogram> {
        &self.histograms[phase.index()]
    }

    /// A snapshot of one phase's distribution.
    pub fn snapshot(&self, phase: Phase) -> HistogramSnapshot {
        self.histograms[phase.index()].snapshot()
    }

    /// Register every phase histogram under `prefix.<phase>_ns`.
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        for phase in Phase::ALL {
            registry.register_histogram(
                &format!("{prefix}.{}_ns", phase.name()),
                self.histogram(phase).clone(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_timers_accumulate_into_their_phase() {
        let mut trace = QueryTrace::new();
        {
            let _filter = SpanTimer::start(&mut trace, Phase::Filter);
            std::hint::black_box(0u64);
        }
        {
            let _refine = SpanTimer::start(&mut trace, Phase::Refine);
            std::hint::black_box(0u64);
        }
        assert!(trace.nanos(Phase::Filter) > 0);
        assert!(trace.nanos(Phase::Refine) > 0);
        assert_eq!(trace.nanos(Phase::Merge), 0);
        assert_eq!(trace.total_nanos(), Phase::ALL.iter().map(|&p| trace.nanos(p)).sum::<u64>());
        trace.clear();
        assert_eq!(trace.total_nanos(), 0);
    }

    #[test]
    fn phase_stats_skip_phases_a_query_never_entered() {
        let stats = PhaseStats::new();
        let mut trace = QueryTrace::new();
        trace.add(Phase::Filter, 1_000);
        trace.add(Phase::Merge, 50);
        stats.record_trace(&trace);
        stats.record_trace(&trace);
        assert_eq!(stats.snapshot(Phase::Filter).count(), 2);
        assert_eq!(stats.snapshot(Phase::Merge).count(), 2);
        assert_eq!(stats.snapshot(Phase::Refine).count(), 0);
        assert_eq!(stats.snapshot(Phase::Io).count(), 0);
    }

    #[test]
    fn time_attributes_and_returns() {
        let stats = PhaseStats::new();
        let out = stats.time(Phase::Refine, || 7 * 6);
        assert_eq!(out, 42);
        assert_eq!(stats.snapshot(Phase::Refine).count(), 1);
    }

    #[test]
    fn bind_registers_one_histogram_per_phase() {
        let registry = Registry::new();
        let stats = PhaseStats::new();
        stats.bind(&registry, "overlay");
        stats.record(Phase::Filter, 123);
        let snap = registry.snapshot();
        for phase in Phase::ALL {
            let name = format!("overlay.{}_ns", phase.name());
            assert!(snap.histogram(&name).is_some(), "missing {name}");
        }
        assert_eq!(snap.histogram("overlay.filter_ns").unwrap().count(), 1);
    }
}
