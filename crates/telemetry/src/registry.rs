//! The metric registry: a name → metric map with get-or-register
//! semantics and stably ordered, JSON-serializable snapshots.
//!
//! Components either ask the registry for a metric by name (creating it on
//! first use) or *bind* metrics they already own — the engine's cumulative
//! I/O counters, an overlay's phase histograms — under a public name.
//! Names are dotted paths (`engine.queries`, `overlay.filter_ns`); the
//! snapshot iterates them in lexicographic order, so two snapshots of the
//! same registry always serialize with identical key sequences.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};

/// A handle to one registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A signed gauge.
    Gauge(Arc<Gauge>),
    /// A log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A shared name → metric map.
///
/// Registration is locked (it happens a handful of times at startup);
/// recording never touches the registry — callers hold `Arc`s straight to
/// the metric, so the hot path stays lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — that is
    /// a wiring bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let metric = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(counter) => counter.clone(),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let metric =
            inner.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(gauge) => gauge.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let metric = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(histogram) => histogram.clone(),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Bind an existing counter under `name` (rebinding replaces the
    /// previous metric of the same name).
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        self.register(name, Metric::Counter(counter));
    }

    /// Bind an existing gauge under `name`.
    pub fn register_gauge(&self, name: &str, gauge: Arc<Gauge>) {
        self.register(name, Metric::Gauge(gauge));
    }

    /// Bind an existing histogram under `name`.
    pub fn register_histogram(&self, name: &str, histogram: Arc<Histogram>) {
        self.register(name, Metric::Histogram(histogram));
    }

    /// Bind an existing metric under `name`.
    pub fn register(&self, name: &str, metric: Metric) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.insert(name.to_string(), metric);
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).get(name).cloned()
    }

    /// A point-in-time snapshot of every registered metric, in
    /// lexicographic name order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let entries = inner
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// A snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A stably ordered point-in-time view of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Iterate `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(name, value)| (name.as_str(), value))
    }

    /// Number of snapshotted metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The value of counter `name`, if it was registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if it was registered as one.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The state of histogram `name`, if it was registered as one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Serialize to one deterministic JSON object: keys in lexicographic
    /// order, counters/gauges as integers, histograms as nested objects
    /// with `count`, `mean`, `p50`, `p95`, `p99`, `p999` and `max`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\
                         \"p999\":{},\"max\":{}}}",
                        h.count(),
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.quantile(0.999),
                        h.max()
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Append `value` as a JSON string literal (quotes, backslashes and
/// control characters escaped).
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let registry = Registry::new();
        let a = registry.counter("engine.queries");
        let b = registry.counter("engine.queries");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_a_wiring_bug() {
        let registry = Registry::new();
        registry.histogram("engine.latency");
        registry.counter("engine.latency");
    }

    #[test]
    fn binding_existing_metrics_shares_state() {
        let registry = Registry::new();
        let io = Arc::new(Counter::new());
        registry.register_counter("io.pages_read", io.clone());
        io.add(11);
        assert_eq!(registry.snapshot().counter("io.pages_read"), Some(11));
        let depth = Arc::new(Gauge::new());
        registry.register_gauge("serving.inflight", depth.clone());
        depth.set(-2);
        assert_eq!(registry.snapshot().gauge("serving.inflight"), Some(-2));
    }

    #[test]
    fn snapshots_are_lexicographically_ordered_and_stable() {
        let registry = Registry::new();
        registry.counter("b.second");
        registry.counter("a.first");
        registry.gauge("c.third");
        registry.histogram("a.hist");
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.iter().map(|(name, _)| name).collect();
        assert_eq!(names, vec!["a.first", "a.hist", "b.second", "c.third"]);
        assert_eq!(snap.to_json(), registry.snapshot().to_json());
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
    }

    #[test]
    fn json_shape_is_deterministic() {
        let registry = Registry::new();
        registry.counter("queries").add(5);
        registry.gauge("depth").set(-1);
        let h = registry.histogram("lat_ns");
        h.record(10);
        h.record(20);
        let json = registry.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries\":5"), "{json}");
        assert!(json.contains("\"depth\":-1"), "{json}");
        assert!(json.contains("\"lat_ns\":{\"count\":2,"), "{json}");
        assert!(json.contains("\"p999\":"), "{json}");
    }

    #[test]
    fn missing_and_mistyped_lookups_are_none() {
        let registry = Registry::new();
        registry.counter("only.counter");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauge("only.counter"), None);
        assert!(snap.histogram("only.counter").is_none());
        assert!(registry.get("absent").is_none());
        assert!(matches!(registry.get("only.counter"), Some(Metric::Counter(_))));
    }
}
