//! Log-bucketed latency histograms with mergeable quantile snapshots.
//!
//! The bucketing is HdrHistogram-style: values below 2⁵ = 32 get one
//! bucket each (exact), and every power-of-two octave above that is split
//! into 32 sub-buckets, so a bucket's width is at most 1/32 of its lower
//! bound and any reported quantile overstates the true nearest-rank value
//! by at most 3.125%. The whole `u64` range is covered by 1920 buckets,
//! which makes a [`Histogram`] a fixed 15 KiB of atomics — cheap enough to
//! keep one per phase per engine, record into from every worker thread
//! without locks, and merge across shards by adding bucket counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 2⁵ = 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
const BUCKETS: usize = (SUB_COUNT as usize) * (64 - SUB_BITS as usize + 1);

/// The bucket index a value lands in.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let top = 63 - value.leading_zeros(); // >= SUB_BITS
    let shift = top - SUB_BITS;
    let mantissa = (value >> shift) & (SUB_COUNT - 1);
    (SUB_COUNT as usize) * (shift as usize + 1) + mantissa as usize
}

/// The largest value mapping to bucket `index` — what quantiles report, so
/// estimates err on the conservative (larger) side within the 3.125% bound.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let shift = (index / SUB_COUNT) - 1;
    let mantissa = index % SUB_COUNT;
    let lower = (SUB_COUNT + mantissa) << shift;
    lower + ((1u64 << shift) - 1)
}

/// A concurrent log-bucketed histogram of `u64` samples (latencies are
/// recorded as nanoseconds).
///
/// All updates are relaxed atomics; reads go through [`Histogram::snapshot`],
/// which materializes a plain [`HistogramSnapshot`] for quantile queries
/// and cross-thread/cross-shard merging.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("mean", &snap.mean())
            .field("max", &snap.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`,
    /// i.e. after ~584 years of latency the histogram stops caring).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile queries and merging. Taken while
    /// writers run, the snapshot is internally consistent enough for
    /// statistics (no torn buckets; totals may trail in-flight records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), reported as the
    /// containing bucket's upper bound clamped to the observed `[min, max]`.
    ///
    /// Guarantees relative to the exact nearest-rank value `e` of the
    /// recorded samples: `quantile(q) >= e` and `quantile(q) <= e + e/32`,
    /// the bound the oracle test pins.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other`'s samples into `self` (bucket-wise addition), the shard
    /// and cross-thread aggregation path.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over raw samples — the oracle.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The documented error contract: estimates never undershoot the exact
    /// nearest-rank value and overshoot by at most 1/32 of it.
    fn assert_within_contract(estimate: u64, exact: u64, context: &str) {
        assert!(estimate >= exact, "{context}: estimate {estimate} below exact {exact}");
        let slack = exact / 32;
        assert!(
            estimate <= exact + slack,
            "{context}: estimate {estimate} exceeds exact {exact} by more than {slack}"
        );
    }

    #[test]
    fn bucket_mapping_is_monotone_and_self_consistent() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within the relative-error contract; the index function is
        // monotone in the value.
        let mut values: Vec<u64> = (0..4096).collect();
        for exp in 0..64u32 {
            for off in [0u64, 1, 3, 17, 31] {
                values.push((1u64 << exp).saturating_add(off << exp.saturating_sub(5)));
                values.push((1u64 << exp).saturating_sub(off));
            }
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut previous = 0usize;
        for &value in &values {
            let index = bucket_index(value);
            assert!(index >= previous, "index regressed at {value}");
            previous = index;
            let upper = bucket_upper(index);
            assert!(upper >= value, "upper {upper} below value {value}");
            assert!(upper - value <= value / 32, "bucket too wide at {value}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(snap.quantile(q), v, "small values must be bucketed exactly");
        }
    }

    #[test]
    fn quantiles_match_exact_sort_oracle_within_bucket_error() {
        // A deterministic, skewed sample mix: a tight body with a long tail,
        // the shape serving latencies actually have.
        let mut samples: Vec<u64> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in 0..10_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let body = 400_000 + (state >> 40); // ~0.4 ms body
            let value = match i % 100 {
                97 => body * 10,  // p97+ tail
                98 => body * 25,  // p98+ tail
                99 => body * 120, // extreme outliers
                _ => body,
            };
            samples.push(value);
        }
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        samples.sort_unstable();
        for &q in &[0.01, 0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            assert_within_contract(snap.quantile(q), exact, &format!("q={q}"));
        }
        assert_eq!(snap.count(), samples.len() as u64);
        assert_eq!(snap.max(), *samples.last().unwrap());
        assert_eq!(snap.min(), samples[0]);
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((snap.mean() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn merged_snapshots_equal_single_histogram_of_all_samples() {
        let combined = Histogram::new();
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        let mut state = 7u64;
        for i in 0..4000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = state >> 30;
            combined.record(v);
            parts[(i % 4) as usize].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for part in &parts {
            merged.merge(&part.snapshot());
        }
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 3 * 1_000_000 + 9_999);
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(250));
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_within_contract(snap.quantile(0.5), 250_000, "250us duration");
    }
}
