//! Lock-free scalar metrics: monotone counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// Updates and reads are relaxed atomics: counters are statistics, not
/// synchronization, so a snapshot taken while writers run is
/// "consistent enough" — it never tears and never goes backwards.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero. Intended for test and between-run reuse, not for
    /// concurrent use against live writers (a racing `add` may survive).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depth, live deltas, in-flight ops).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the current value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Shorthand for `add(1)`.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Shorthand for `add(-1)`.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = &counter;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                    counter.add(10);
                });
            }
        });
        assert_eq!(counter.get(), 4040);
        counter.reset();
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn gauge_moves_both_directions() {
        let gauge = Gauge::new();
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.get(), 1);
        gauge.add(-5);
        assert_eq!(gauge.get(), -4);
        gauge.set(42);
        assert_eq!(gauge.get(), 42);
    }
}
