//! BB-tree construction by recursive Bregman 2-means clustering.
//!
//! Following Cayton (ICML 2008), each node is split by a two-cluster Bregman
//! k-means. Because the *right-type* centroid (the minimizer of
//! `Σ_i D_f(x_i, μ)` over `μ`) is the arithmetic mean for every Bregman
//! divergence (Banerjee et al., JMLR 2005), the Lloyd iteration uses plain
//! means regardless of the divergence; only the assignment step evaluates
//! `D_f`.

use bregman::vector::mean_of;
use bregman::{DecomposableBregman, DenseDataset, PointId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::ball::BregmanBall;
use crate::node::{BBTree, Node, NodeId, NodeKind};

/// Construction parameters for a BB-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBTreeConfig {
    /// Maximum number of points per leaf (the paper's leaf capacity `C`).
    pub leaf_capacity: usize,
    /// Maximum Lloyd iterations per split.
    pub max_kmeans_iters: usize,
    /// Seed for the (deterministic) centre initialization.
    pub seed: u64,
}

impl Default for BBTreeConfig {
    fn default() -> Self {
        Self { leaf_capacity: 32, max_kmeans_iters: 16, seed: 0x5EED }
    }
}

impl BBTreeConfig {
    /// A configuration with the given leaf capacity and default remaining
    /// parameters.
    pub fn with_leaf_capacity(leaf_capacity: usize) -> Self {
        Self { leaf_capacity, ..Self::default() }
    }
}

/// Builds [`BBTree`] instances for a fixed divergence.
#[derive(Debug, Clone)]
pub struct BBTreeBuilder<B: DecomposableBregman> {
    divergence: B,
    config: BBTreeConfig,
}

impl<B: DecomposableBregman> BBTreeBuilder<B> {
    /// A builder using `divergence` and `config`.
    pub fn new(divergence: B, config: BBTreeConfig) -> Self {
        Self { divergence, config }
    }

    /// The configuration used by this builder.
    pub fn config(&self) -> BBTreeConfig {
        self.config
    }

    /// Build a tree over every point of `dataset`.
    pub fn build(&self, dataset: &DenseDataset) -> BBTree {
        let ids: Vec<PointId> = (0..dataset.len()).map(PointId::from).collect();
        self.build_subset(dataset, ids)
    }

    /// Build a tree over a subset of the dataset's points.
    pub fn build_subset(&self, dataset: &DenseDataset, ids: Vec<PointId>) -> BBTree {
        let mut nodes: Vec<Node> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let point_count = ids.len();
        let root = if ids.is_empty() {
            // Degenerate empty tree: a single empty leaf with a zero ball.
            nodes.push(Node {
                ball: BregmanBall::new(vec![self.divergence.domain_anchor(); dataset.dim()], 0.0),
                kind: NodeKind::Leaf { points: Vec::new() },
            });
            NodeId(0)
        } else {
            self.build_recursive(dataset, ids, &mut nodes, &mut rng)
        };
        BBTree {
            nodes,
            root,
            dim: dataset.dim(),
            point_count,
            divergence_name: self.divergence.name().to_string(),
        }
    }

    fn build_recursive(
        &self,
        dataset: &DenseDataset,
        ids: Vec<PointId>,
        nodes: &mut Vec<Node>,
        rng: &mut ChaCha8Rng,
    ) -> NodeId {
        let ball = self.covering_ball(dataset, &ids);
        if ids.len() <= self.config.leaf_capacity {
            nodes.push(Node { ball, kind: NodeKind::Leaf { points: ids } });
            return NodeId((nodes.len() - 1) as u32);
        }
        let (left_ids, right_ids) = self.split(dataset, &ids, rng);
        if left_ids.is_empty() || right_ids.is_empty() {
            // Clustering collapsed (e.g. all points identical): make a leaf
            // even though it exceeds the nominal capacity.
            nodes.push(Node { ball, kind: NodeKind::Leaf { points: ids } });
            return NodeId((nodes.len() - 1) as u32);
        }
        let left = self.build_recursive(dataset, left_ids, nodes, rng);
        let right = self.build_recursive(dataset, right_ids, nodes, rng);
        nodes.push(Node { ball, kind: NodeKind::Internal { left, right } });
        NodeId((nodes.len() - 1) as u32)
    }

    /// The smallest ball centred at the arithmetic mean that covers `ids`.
    fn covering_ball(&self, dataset: &DenseDataset, ids: &[PointId]) -> BregmanBall {
        let center = if ids.is_empty() {
            vec![self.divergence.domain_anchor(); dataset.dim()]
        } else {
            mean_of(dataset, ids)
        };
        let radius = ids
            .iter()
            .map(|&id| self.divergence.divergence(dataset.point(id), &center))
            .fold(0.0f64, f64::max);
        BregmanBall::new(center, radius)
    }

    /// Bregman 2-means split of `ids` into two non-empty halves (when
    /// possible).
    fn split(
        &self,
        dataset: &DenseDataset,
        ids: &[PointId],
        rng: &mut ChaCha8Rng,
    ) -> (Vec<PointId>, Vec<PointId>) {
        // Initialize with two distinct points sampled from the node.
        let mut candidates: Vec<PointId> = ids.to_vec();
        candidates.shuffle(rng);
        let c0 = dataset.point(candidates[0]).to_vec();
        let mut c1 = None;
        for &cand in candidates.iter().skip(1) {
            if dataset.point(cand) != c0.as_slice() {
                c1 = Some(dataset.point(cand).to_vec());
                break;
            }
        }
        let Some(mut center_b) = c1 else {
            // Every point is identical; no useful split exists.
            return (ids.to_vec(), Vec::new());
        };
        let mut center_a = c0;

        let mut assignment_a: Vec<PointId> = Vec::with_capacity(ids.len());
        let mut assignment_b: Vec<PointId> = Vec::with_capacity(ids.len());
        for _ in 0..self.config.max_kmeans_iters {
            let mut new_a = Vec::with_capacity(ids.len());
            let mut new_b = Vec::with_capacity(ids.len());
            for &id in ids {
                let p = dataset.point(id);
                let da = self.divergence.divergence(p, &center_a);
                let db = self.divergence.divergence(p, &center_b);
                if da <= db {
                    new_a.push(id);
                } else {
                    new_b.push(id);
                }
            }
            if new_a.is_empty() || new_b.is_empty() {
                // Keep the previous assignment if this one degenerated.
                if assignment_a.is_empty() && assignment_b.is_empty() {
                    assignment_a = new_a;
                    assignment_b = new_b;
                }
                break;
            }
            let converged = new_a == assignment_a && new_b == assignment_b;
            assignment_a = new_a;
            assignment_b = new_b;
            if converged {
                break;
            }
            center_a = mean_of(dataset, &assignment_a);
            center_b = mean_of(dataset, &assignment_b);
        }
        if assignment_a.is_empty() || assignment_b.is_empty() {
            // Fall back to a balanced split so construction always terminates.
            let mid = ids.len() / 2;
            return (ids[..mid].to_vec(), ids[mid..].to_vec());
        }
        (assignment_a, assignment_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bregman::{Divergence, ItakuraSaito, SquaredEuclidean};

    fn clustered_dataset() -> DenseDataset {
        // Two well separated clusters of 16 points each.
        let mut rows = Vec::new();
        for i in 0..16 {
            rows.push(vec![1.0 + (i % 4) as f64 * 0.1, 1.0 + (i / 4) as f64 * 0.1]);
        }
        for i in 0..16 {
            rows.push(vec![10.0 + (i % 4) as f64 * 0.1, 10.0 + (i / 4) as f64 * 0.1]);
        }
        DenseDataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn build_produces_capacity_respecting_leaves() {
        let ds = clustered_dataset();
        let config = BBTreeConfig::with_leaf_capacity(4);
        let tree = BBTreeBuilder::new(SquaredEuclidean, config).build(&ds);
        for id in 0..tree.node_count() {
            if let NodeKind::Leaf { points } = &tree.node(NodeId(id as u32)).kind {
                assert!(points.len() <= 4, "leaf of size {} exceeds capacity", points.len());
            }
        }
    }

    #[test]
    fn first_split_separates_the_two_clusters() {
        let ds = clustered_dataset();
        let config = BBTreeConfig::with_leaf_capacity(16);
        let tree = BBTreeBuilder::new(SquaredEuclidean, config).build(&ds);
        // Root must be internal; its children should each hold one cluster.
        if let NodeKind::Internal { left, right } = &tree.node(tree.root()).kind {
            let left_pts = tree.collect_points(*left);
            let right_pts = tree.collect_points(*right);
            assert_eq!(left_pts.len(), 16);
            assert_eq!(right_pts.len(), 16);
            // Each side must be homogeneous: entirely ids 0..16 or entirely 16..32.
            let homogeneous =
                |pts: &[PointId]| pts.iter().all(|p| p.0 < 16) || pts.iter().all(|p| p.0 >= 16);
            assert!(homogeneous(&left_pts) && homogeneous(&right_pts));
        } else {
            panic!("root should be internal for 32 points with capacity 16");
        }
    }

    #[test]
    fn covering_invariant_for_itakura_saito() {
        let rows: Vec<Vec<f64>> =
            (1..=40).map(|i| vec![i as f64, (41 - i) as f64, 0.5 * i as f64]).collect();
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let tree = BBTreeBuilder::new(ItakuraSaito, BBTreeConfig::with_leaf_capacity(5)).build(&ds);
        assert!(tree.validate_covering(&ItakuraSaito, |pid| ds.point(pid).to_vec()));
        assert_eq!(tree.divergence_name(), ItakuraSaito.name());
    }

    #[test]
    fn identical_points_collapse_to_single_leaf() {
        let rows = vec![vec![2.0, 2.0]; 50];
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(8)).build(&ds);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.points_in_leaf_order().len(), 50);
    }

    #[test]
    fn empty_dataset_builds_empty_tree() {
        let ds = DenseDataset::empty(3).unwrap();
        let tree = BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::default()).build(&ds);
        assert!(tree.is_empty());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = clustered_dataset();
        let config = BBTreeConfig { leaf_capacity: 4, max_kmeans_iters: 8, seed: 99 };
        let t1 = BBTreeBuilder::new(SquaredEuclidean, config).build(&ds);
        let t2 = BBTreeBuilder::new(SquaredEuclidean, config).build(&ds);
        assert_eq!(t1.points_in_leaf_order(), t2.points_in_leaf_order());
        assert_eq!(t1.node_count(), t2.node_count());
    }

    #[test]
    fn subset_build_only_indexes_subset() {
        let ds = clustered_dataset();
        let ids: Vec<PointId> = (0..10).map(PointId::from).collect();
        let tree = BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(3))
            .build_subset(&ds, ids.clone());
        let mut indexed = tree.points_in_leaf_order();
        indexed.sort();
        assert_eq!(indexed, ids);
    }
}
