//! Arena-based BB-tree representation.

use bregman::{DecomposableBregman, PointId};

use crate::ball::BregmanBall;

/// Index of a node inside the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Children of a node: either two sub-balls or the point ids of a leaf
/// cluster.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Internal node with two children.
    Internal {
        /// Left child.
        left: NodeId,
        /// Right child.
        right: NodeId,
    },
    /// Leaf node holding the ids of the points in its cluster.
    Leaf {
        /// Point ids in this cluster, in construction order.
        points: Vec<PointId>,
    },
}

/// One node of a BB-tree: a Bregman ball plus its children or leaf contents.
#[derive(Debug, Clone)]
pub struct Node {
    /// The covering Bregman ball of every point below this node.
    pub ball: BregmanBall,
    /// Children or leaf contents.
    pub kind: NodeKind,
}

/// A Bregman ball tree over a dataset of dimensionality `dim`.
///
/// The tree stores only point *ids*; the coordinates live in the owning
/// dataset (in-memory search) or in a [`pagestore::PageStore`]
/// (disk-resident search via [`crate::DiskBBTree`]).
#[derive(Debug, Clone)]
pub struct BBTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) dim: usize,
    pub(crate) point_count: usize,
    pub(crate) divergence_name: String,
}

impl BBTree {
    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.point_count
    }

    /// Whether the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.point_count == 0
    }

    /// Name of the divergence the tree was built for (used to catch
    /// accidental mixing of divergences between build and query time).
    pub fn divergence_name(&self) -> &str {
        &self.divergence_name
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Leaf { .. })).count()
    }

    /// Iterate over the leaves in depth-first (left-to-right) order; this is
    /// the order the BB-forest uses to lay points out on disk.
    pub fn leaves_in_order(&self) -> Vec<NodeId> {
        let mut leaves = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf { .. } => leaves.push(id),
                NodeKind::Internal { left, right } => {
                    // Push right first so the left child is processed first.
                    stack.push(*right);
                    stack.push(*left);
                }
            }
        }
        leaves
    }

    /// All point ids in depth-first leaf order.
    pub fn points_in_leaf_order(&self) -> Vec<PointId> {
        let mut out = Vec::with_capacity(self.point_count);
        for leaf in self.leaves_in_order() {
            if let NodeKind::Leaf { points } = &self.node(leaf).kind {
                out.extend_from_slice(points);
            }
        }
        out
    }

    /// Maximum depth of the tree (root = depth 1); an empty tree has depth 0.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max_depth = 0;
        let mut stack = vec![(self.root, 1usize)];
        while let Some((id, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            if let NodeKind::Internal { left, right } = &self.node(id).kind {
                stack.push((*left, depth + 1));
                stack.push((*right, depth + 1));
            }
        }
        max_depth
    }

    /// Check the structural invariant that every point below a node lies in
    /// the node's ball. Intended for tests; `points` resolves ids to
    /// coordinates.
    pub fn validate_covering<B, F>(&self, divergence: &B, mut points: F) -> bool
    where
        B: DecomposableBregman,
        F: FnMut(PointId) -> Vec<f64>,
    {
        for node_index in 0..self.nodes.len() {
            let node = &self.nodes[node_index];
            let members = self.collect_points(NodeId(node_index as u32));
            for pid in members {
                let coords = points(pid);
                let d = divergence.divergence(&coords, node.ball.center());
                if d > node.ball.radius() + 1e-6 * (1.0 + node.ball.radius()) {
                    return false;
                }
            }
        }
        true
    }

    /// Collect every point id stored beneath a node.
    pub fn collect_points(&self, id: NodeId) -> Vec<PointId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(nid) = stack.pop() {
            match &self.node(nid).kind {
                NodeKind::Leaf { points } => out.extend_from_slice(points),
                NodeKind::Internal { left, right } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{BBTreeBuilder, BBTreeConfig};
    use bregman::{DenseDataset, SquaredEuclidean};

    fn grid_dataset() -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![(i % 8) as f64, (i / 8) as f64]).collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    fn build_tree(leaf_capacity: usize) -> (BBTree, DenseDataset) {
        let ds = grid_dataset();
        let config = BBTreeConfig { leaf_capacity, ..BBTreeConfig::default() };
        let tree = BBTreeBuilder::new(SquaredEuclidean, config).build(&ds);
        (tree, ds)
    }

    #[test]
    fn basic_shape_invariants() {
        let (tree, ds) = build_tree(4);
        assert_eq!(tree.len(), ds.len());
        assert!(!tree.is_empty());
        assert_eq!(tree.dim(), 2);
        assert!(tree.leaf_count() >= ds.len() / 4);
        assert!(tree.depth() >= 2);
        assert_eq!(tree.divergence_name(), "Squared Euclidean");
        assert!(tree.node_count() >= tree.leaf_count());
    }

    #[test]
    fn leaf_order_contains_every_point_exactly_once() {
        let (tree, ds) = build_tree(4);
        let mut order = tree.points_in_leaf_order();
        assert_eq!(order.len(), ds.len());
        order.sort();
        order.dedup();
        assert_eq!(order.len(), ds.len());
    }

    #[test]
    fn covering_invariant_holds() {
        let (tree, ds) = build_tree(3);
        assert!(tree.validate_covering(&SquaredEuclidean, |pid| ds.point(pid).to_vec()));
    }

    #[test]
    fn collect_points_at_root_is_everything() {
        let (tree, ds) = build_tree(5);
        let mut pts = tree.collect_points(tree.root());
        pts.sort();
        assert_eq!(pts.len(), ds.len());
    }

    #[test]
    fn leaves_in_order_are_all_leaves() {
        let (tree, _) = build_tree(4);
        let leaves = tree.leaves_in_order();
        assert_eq!(leaves.len(), tree.leaf_count());
        for l in leaves {
            assert!(matches!(tree.node(l).kind, NodeKind::Leaf { .. }));
        }
    }
}
