//! Bregman balls and the query-to-ball projection bound.

use bregman::{DecomposableBregman, GeodesicInterpolator};

/// Number of bisection steps used when projecting a query onto a ball
/// surface. 20 halvings shrink the θ interval below 1e-6, far below the
/// tolerance that matters for pruning decisions (the bisection stays on the
/// conservative side of the surface, so fewer steps never break exactness).
const PROJECTION_BISECTION_STEPS: usize = 20;

/// A Bregman ball `{x : D_f(x, center) ≤ radius}`.
#[derive(Debug, Clone, PartialEq)]
pub struct BregmanBall {
    center: Vec<f64>,
    radius: f64,
}

impl BregmanBall {
    /// A ball with the given centre and radius (radius must be ≥ 0).
    pub fn new(center: Vec<f64>, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "ball radius must be non-negative");
        Self { center, radius }
    }

    /// The ball centre.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The ball radius (a divergence value, not a metric distance).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Dimensionality of the centre.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Whether a point lies inside the ball under divergence `b`.
    pub fn contains<B: DecomposableBregman>(&self, b: &B, point: &[f64]) -> bool {
        b.divergence(point, &self.center) <= self.radius
    }

    /// Lower bound on `D_f(x, query)` over all `x` in the ball.
    ///
    /// If the query could itself be a ball member (its divergence to the
    /// centre is within the radius) the bound is zero. Otherwise the
    /// minimizer lies on the dual geodesic between the query and the centre
    /// (the KKT stationarity condition makes `∇f(x*)` a convex combination
    /// of `∇f(query)` and `∇f(center)`), so a bisection that keeps its
    /// iterate on the *outside* of the ball yields a conservative bound:
    /// the returned value never exceeds the true minimum, so pruning with it
    /// preserves exactness.
    pub fn min_divergence_from<B: DecomposableBregman>(&self, b: &B, query: &[f64]) -> f64 {
        let to_center = b.divergence(query, &self.center);
        if to_center <= self.radius {
            return 0.0;
        }
        // θ = 0 → query (outside the ball), θ = 1 → centre (inside).
        let mut interp = GeodesicInterpolator::new(b.clone(), query, &self.center);
        let mut lo = 0.0f64; // invariant: D(x_lo, center) ≥ radius (outside)
        let mut hi = 1.0f64; // invariant: D(x_hi, center) ≤ radius (inside)
        for _ in 0..PROJECTION_BISECTION_STEPS {
            let mid = 0.5 * (lo + hi);
            let d_center = interp.divergence_to(mid, &self.center);
            if d_center >= self.radius {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        interp.divergence_to(lo, query)
    }

    /// Whether the ball can intersect the query range
    /// `{x : D_f(x, query) ≤ range}`.
    pub fn intersects_range<B: DecomposableBregman>(
        &self,
        b: &B,
        query: &[f64],
        range: f64,
    ) -> bool {
        // Cheap sufficient condition: the centre itself lies in the range, so
        // the ball certainly intersects it and the projection can be skipped.
        if b.divergence(&self.center, query) <= range {
            return true;
        }
        self.min_divergence_from(b, query) <= range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bregman::{Divergence, Exponential, ItakuraSaito, SquaredEuclidean};

    #[test]
    fn contains_is_consistent_with_divergence() {
        let ball = BregmanBall::new(vec![1.0, 1.0], 0.5);
        assert!(ball.contains(&SquaredEuclidean, &[1.0, 1.5])); // D = 0.25
        assert!(!ball.contains(&SquaredEuclidean, &[2.0, 2.0])); // D = 2
        assert_eq!(ball.dim(), 2);
        assert_eq!(ball.radius(), 0.5);
    }

    #[test]
    fn min_divergence_zero_when_query_inside() {
        let ball = BregmanBall::new(vec![2.0, 2.0], 1.0);
        assert_eq!(ball.min_divergence_from(&SquaredEuclidean, &[2.1, 2.1]), 0.0);
    }

    #[test]
    fn min_divergence_matches_euclidean_geometry() {
        // For squared Euclidean the ball is a disk of radius sqrt(R); the
        // projection distance is (|q−c| − sqrt(R))².
        let ball = BregmanBall::new(vec![0.0, 0.0], 1.0);
        let query = [3.0, 4.0]; // |q−c| = 5
        let expected = (5.0f64 - 1.0).powi(2);
        let bound = ball.min_divergence_from(&SquaredEuclidean, &query);
        // The bisection is conservative (stays just outside the surface), so
        // the bound approaches the geometric value from below.
        assert!(bound <= expected + 1e-9);
        assert!((bound - expected).abs() < 1e-3, "bound {bound} vs expected {expected}");
    }

    #[test]
    fn min_divergence_is_a_true_lower_bound() {
        // Sample points inside the ball and verify none violates the bound.
        let divergences: (ItakuraSaito, Exponential, SquaredEuclidean) =
            (ItakuraSaito, Exponential, SquaredEuclidean);
        let center = vec![1.5, 2.0, 0.8];
        let radius = 0.4;
        let query = vec![4.0, 0.5, 3.0];

        fn check<B: DecomposableBregman>(b: &B, center: &[f64], radius: f64, query: &[f64]) {
            let ball = BregmanBall::new(center.to_vec(), radius);
            let bound = ball.min_divergence_from(b, query);
            // Deterministic grid of perturbations around the centre.
            let offsets = [-0.3, -0.15, 0.0, 0.1, 0.25];
            for &dx in &offsets {
                for &dy in &offsets {
                    for &dz in &offsets {
                        let p = [center[0] + dx, center[1] + dy, center[2] + dz];
                        if p.iter().any(|v| *v <= 0.05) {
                            continue;
                        }
                        if b.divergence(&p, center) <= radius {
                            let d = b.divergence(&p, query);
                            assert!(
                                d + 1e-9 >= bound,
                                "{}: point {:?} in ball has D={} < bound={}",
                                b.name(),
                                p,
                                d,
                                bound
                            );
                        }
                    }
                }
            }
        }
        check(&divergences.0, &center, radius, &query);
        check(&divergences.1, &center, radius, &query);
        check(&divergences.2, &center, radius, &query);
    }

    #[test]
    fn intersects_range_consistent_with_bound() {
        let ball = BregmanBall::new(vec![0.0], 1.0);
        // min divergence from query 5.0: (5 − 1)² = 16 under squared Euclidean.
        assert!(ball.intersects_range(&SquaredEuclidean, &[5.0], 16.5));
        assert!(!ball.intersects_range(&SquaredEuclidean, &[5.0], 15.5));
    }

    #[test]
    fn zero_radius_ball_bound_is_divergence_to_center() {
        let ball = BregmanBall::new(vec![2.0, 3.0], 0.0);
        let q = [1.0, 1.0];
        let bound = ball.min_divergence_from(&SquaredEuclidean, &q);
        let exact = SquaredEuclidean.divergence(&[2.0, 3.0], &q);
        assert!(bound <= exact + 1e-9);
        assert!((bound - exact).abs() < 1e-3 * (1.0 + exact));
    }
}
