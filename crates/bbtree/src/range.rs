//! Bregman range search (Cayton, NeurIPS 2009).
//!
//! A range query asks for every point `x` with `D_f(x, query) ≤ radius`.
//! The tree is traversed top-down; a node is pruned when the Bregman
//! projection bound of its ball exceeds the radius. Following the paper's
//! cost model, the *candidates* of a range query are all points stored in
//! the leaves that could not be pruned — those are the points whose pages
//! must be fetched from disk — and the exact filtering happens afterwards
//! during refinement.

use bregman::{DecomposableBregman, DenseDataset, PointId};

use crate::node::{BBTree, NodeKind};
use crate::stats::SearchStats;

impl BBTree {
    /// Candidate point ids for a range query: every point in a leaf whose
    /// ball intersects `{x : D_f(x, query) ≤ radius}`.
    pub fn range_candidates<B: DecomposableBregman>(
        &self,
        divergence: &B,
        query: &[f64],
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<PointId> {
        let mut out = Vec::new();
        self.collect_range_leaves(divergence, query, radius, stats, &mut |points| {
            out.extend_from_slice(points);
        });
        out
    }

    /// Visit every leaf intersecting the range, invoking `visit` with its
    /// point ids. Shared by the in-memory and disk-resident searches.
    pub(crate) fn collect_range_leaves<B: DecomposableBregman>(
        &self,
        divergence: &B,
        query: &[f64],
        radius: f64,
        stats: &mut SearchStats,
        visit: &mut dyn FnMut(&[PointId]),
    ) {
        if self.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.node(id);
            if !node.ball.intersects_range(divergence, query, radius) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { points } => {
                    stats.leaves_visited += 1;
                    visit(points);
                }
                NodeKind::Internal { left, right } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
    }

    /// Exact range query over an in-memory dataset: candidates are refined by
    /// computing the actual divergence. Returns `(id, divergence)` pairs in
    /// ascending divergence order.
    pub fn range_query_exact<B: DecomposableBregman>(
        &self,
        divergence: &B,
        dataset: &DenseDataset,
        query: &[f64],
        radius: f64,
        stats: &mut SearchStats,
    ) -> Vec<(PointId, f64)> {
        let candidates = self.range_candidates(divergence, query, radius, stats);
        let mut out = Vec::new();
        for pid in candidates {
            stats.candidates_examined += 1;
            stats.distance_computations += 1;
            let d = divergence.divergence(dataset.point(pid), query);
            if d <= radius {
                out.push((pid, d));
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Brute-force range query by linear scan (test oracle).
pub fn linear_scan_range<B: DecomposableBregman>(
    divergence: &B,
    dataset: &DenseDataset,
    query: &[f64],
    radius: f64,
) -> Vec<(PointId, f64)> {
    let mut out = Vec::new();
    for (id, point) in dataset.iter() {
        let d = divergence.divergence(point, query);
        if d <= radius {
            out.push((id, d));
        }
    }
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{BBTreeBuilder, BBTreeConfig};
    use bregman::{ItakuraSaito, SquaredEuclidean};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> DenseDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.gen_range(0.1..10.0)).collect()).collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn exact_range_matches_linear_scan() {
        let ds = random_dataset(400, 5, 11);
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(16)).build(&ds);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..8 {
            let query: Vec<f64> = (0..5).map(|_| rng.gen_range(0.1..10.0)).collect();
            let radius = rng.gen_range(1.0..40.0);
            let mut stats = SearchStats::new();
            let got = tree.range_query_exact(&SquaredEuclidean, &ds, &query, radius, &mut stats);
            let expected = linear_scan_range(&SquaredEuclidean, &ds, &query, radius);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                assert_eq!(g.0, e.0);
            }
        }
    }

    #[test]
    fn candidates_are_a_superset_of_true_results() {
        let ds = random_dataset(300, 4, 21);
        let tree =
            BBTreeBuilder::new(ItakuraSaito, BBTreeConfig::with_leaf_capacity(12)).build(&ds);
        let query = vec![2.0, 5.0, 1.0, 3.0];
        let radius = 0.8;
        let mut stats = SearchStats::new();
        let candidates = tree.range_candidates(&ItakuraSaito, &query, radius, &mut stats);
        let truth = linear_scan_range(&ItakuraSaito, &ds, &query, radius);
        let candidate_set: std::collections::HashSet<_> = candidates.iter().copied().collect();
        for (pid, _) in truth {
            assert!(candidate_set.contains(&pid), "true result {pid:?} missing from candidates");
        }
    }

    #[test]
    fn zero_radius_returns_only_exact_duplicates() {
        let mut rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 + 1.0, 2.0]).collect();
        rows.push(vec![7.0, 2.0]); // duplicate of index 6
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(8)).build(&ds);
        let mut stats = SearchStats::new();
        let got = tree.range_query_exact(&SquaredEuclidean, &ds, &[7.0, 2.0], 0.0, &mut stats);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(_, d)| *d == 0.0));
    }

    #[test]
    fn huge_radius_returns_everything_and_prunes_nothing() {
        let ds = random_dataset(100, 3, 33);
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(10)).build(&ds);
        let mut stats = SearchStats::new();
        let got =
            tree.range_query_exact(&SquaredEuclidean, &ds, &[5.0, 5.0, 5.0], 1e12, &mut stats);
        assert_eq!(got.len(), ds.len());
        assert_eq!(stats.leaves_visited as usize, tree.leaf_count());
    }

    #[test]
    fn pruning_skips_leaves_for_tight_ranges() {
        // Two distant clusters; a tight range around one must not visit the
        // other cluster's leaves.
        let mut rows = Vec::new();
        for i in 0..64 {
            rows.push(vec![1.0 + (i % 8) as f64 * 0.01, 1.0 + (i / 8) as f64 * 0.01]);
        }
        for i in 0..64 {
            rows.push(vec![500.0 + (i % 8) as f64 * 0.01, 500.0 + (i / 8) as f64 * 0.01]);
        }
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(8)).build(&ds);
        let mut stats = SearchStats::new();
        let candidates = tree.range_candidates(&SquaredEuclidean, &[1.0, 1.0], 0.5, &mut stats);
        assert!(!candidates.is_empty());
        assert!((stats.leaves_visited as usize) < tree.leaf_count());
        assert!(candidates.iter().all(|pid| pid.index() < 64));
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let ds = DenseDataset::empty(2).unwrap();
        let tree = BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::default()).build(&ds);
        let mut stats = SearchStats::new();
        assert!(tree.range_candidates(&SquaredEuclidean, &[1.0, 1.0], 10.0, &mut stats).is_empty());
    }
}
