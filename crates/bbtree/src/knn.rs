//! Exact k-nearest-neighbour search by best-first branch-and-bound.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bregman::{DecomposableBregman, DenseDataset, PointId};

use crate::node::{BBTree, NodeId, NodeKind};
use crate::stats::SearchStats;

/// One kNN result: a point id and its divergence from the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the neighbour.
    pub id: PointId,
    /// Divergence `D_f(point, query)`.
    pub distance: f64,
}

/// Max-heap entry over neighbour distance (largest distance at the top), so
/// the heap holds the current k best and its top is the pruning threshold.
#[derive(Debug, Clone, Copy)]
struct HeapNeighbor(Neighbor);

impl PartialEq for HeapNeighbor {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance && self.0.id == other.0.id
    }
}
impl Eq for HeapNeighbor {}
impl PartialOrd for HeapNeighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNeighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.distance.total_cmp(&other.0.distance).then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// Min-heap entry over a node lower bound (smallest bound popped first).
#[derive(Debug, Clone, Copy)]
struct FrontierEntry {
    bound: f64,
    node: NodeId,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.node == other.node
    }
}
impl Eq for FrontierEntry {}
impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the smallest bound.
        other.bound.total_cmp(&self.bound).then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Running top-k accumulator shared by the in-memory, disk-resident and
/// variational searches.
#[derive(Debug)]
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<HeapNeighbor>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// The current pruning threshold: the k-th best distance, or infinity
    /// while fewer than k neighbours have been seen.
    pub(crate) fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|n| n.0.distance).unwrap_or(f64::INFINITY)
        }
    }

    pub(crate) fn offer(&mut self, id: PointId, distance: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapNeighbor(Neighbor { id, distance }));
        } else if distance < self.threshold() {
            self.heap.pop();
            self.heap.push(HeapNeighbor(Neighbor { id, distance }));
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self.heap.into_iter().map(|h| h.0).collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        out
    }
}

impl BBTree {
    /// Exact kNN search over an in-memory dataset.
    ///
    /// `dataset` must be the dataset the tree was built over (the tree only
    /// stores point ids). Returns up to `k` neighbours ordered by increasing
    /// divergence `D_f(point, query)`.
    pub fn knn<B: DecomposableBregman>(
        &self,
        divergence: &B,
        dataset: &DenseDataset,
        query: &[f64],
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        // Hoist the query-side transcendentals out of the candidate loop;
        // per-candidate work is then `Φ(x)` (data-side `φ` only) plus one
        // dot product. Disk-resident callers go further and tabulate `Φ`.
        let prepared = divergence.prepare_query(query);
        self.knn_bounded(divergence, query, k, stats, usize::MAX, &mut |points, offer| {
            for &pid in points {
                let coords = dataset.point(pid);
                offer(pid, prepared.distance(divergence.f(coords), coords));
            }
        })
    }

    /// Best-first kNN visiting at most `max_leaves` leaves (exact when
    /// `max_leaves` is `usize::MAX`, approximate otherwise); the shared
    /// skeleton of the in-memory, disk-resident and variational searches.
    ///
    /// `visit_leaf` is called with a leaf's point ids and an *offer*
    /// callback taking `(id, divergence)` pairs. Distances are computed by
    /// the visitor itself — the in-memory search scores one borrowed
    /// coordinate slice at a time through a
    /// [`PreparedQuery`](bregman::kernel::PreparedQuery), the
    /// disk-resident search batches each decoded page group through the
    /// lane-major block kernel — so the traversal skeleton is agnostic to
    /// how (and how many at a time) candidates are scored.
    pub(crate) fn knn_bounded<B, F>(
        &self,
        divergence: &B,
        query: &[f64],
        k: usize,
        stats: &mut SearchStats,
        max_leaves: usize,
        visit_leaf: &mut F,
    ) -> Vec<Neighbor>
    where
        B: DecomposableBregman,
        F: FnMut(&[PointId], &mut dyn FnMut(PointId, f64)),
    {
        let mut top = TopK::new(k);
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut frontier: BinaryHeap<FrontierEntry> = BinaryHeap::new();
        frontier.push(FrontierEntry { bound: 0.0, node: self.root });
        let mut leaves_visited = 0usize;

        while let Some(entry) = frontier.pop() {
            if entry.bound > top.threshold() {
                break; // best-first: nothing left can improve the result
            }
            stats.nodes_visited += 1;
            match &self.node(entry.node).kind {
                NodeKind::Leaf { points } => {
                    stats.leaves_visited += 1;
                    leaves_visited += 1;
                    visit_leaf(points, &mut |pid, distance| {
                        stats.distance_computations += 1;
                        top.offer(pid, distance);
                    });
                    if leaves_visited >= max_leaves {
                        break;
                    }
                }
                NodeKind::Internal { left, right } => {
                    for child in [*left, *right] {
                        let bound = self.node(child).ball.min_divergence_from(divergence, query);
                        if bound <= top.threshold() {
                            frontier.push(FrontierEntry { bound, node: child });
                        }
                    }
                }
            }
        }
        top.into_sorted()
    }
}

/// Brute-force kNN by linear scan; the reference every index is tested
/// against.
pub fn linear_scan_knn<B: DecomposableBregman>(
    divergence: &B,
    dataset: &DenseDataset,
    query: &[f64],
    k: usize,
) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for (id, point) in dataset.iter() {
        top.offer(id, divergence.divergence(point, query));
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{BBTreeBuilder, BBTreeConfig};
    use bregman::{Exponential, ItakuraSaito, SquaredEuclidean};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> DenseDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.gen_range(0.1..10.0)).collect()).collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    fn assert_same_neighbors(a: &[Neighbor], b: &[Neighbor]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.distance - y.distance).abs() < 1e-9 * (1.0 + x.distance.abs()),
                "distance mismatch: {} vs {}",
                x.distance,
                y.distance
            );
        }
    }

    #[test]
    fn matches_linear_scan_squared_euclidean() {
        let ds = random_dataset(300, 6, 1);
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(8)).build(&ds);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let query: Vec<f64> = (0..6).map(|_| rng.gen_range(0.1..10.0)).collect();
            let mut stats = SearchStats::new();
            let got = tree.knn(&SquaredEuclidean, &ds, &query, 5, &mut stats);
            let expected = linear_scan_knn(&SquaredEuclidean, &ds, &query, 5);
            assert_same_neighbors(&got, &expected);
            assert!(stats.distance_computations <= ds.len() as u64);
        }
    }

    #[test]
    fn matches_linear_scan_itakura_saito_and_exponential() {
        let ds = random_dataset(200, 4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let query: Vec<f64> = (0..4).map(|_| rng.gen_range(0.5..5.0)).collect();

        let tree_isd =
            BBTreeBuilder::new(ItakuraSaito, BBTreeConfig::with_leaf_capacity(10)).build(&ds);
        let mut stats = SearchStats::new();
        let got = tree_isd.knn(&ItakuraSaito, &ds, &query, 7, &mut stats);
        assert_same_neighbors(&got, &linear_scan_knn(&ItakuraSaito, &ds, &query, 7));

        let tree_exp =
            BBTreeBuilder::new(Exponential, BBTreeConfig::with_leaf_capacity(10)).build(&ds);
        let mut stats = SearchStats::new();
        let got = tree_exp.knn(&Exponential, &ds, &query, 7, &mut stats);
        assert_same_neighbors(&got, &linear_scan_knn(&Exponential, &ds, &query, 7));
    }

    #[test]
    fn pruning_actually_reduces_work_on_clustered_data() {
        // Clustered data: the search should not touch every point.
        let mut rows = Vec::new();
        for c in 0..8 {
            for i in 0..50 {
                rows.push(vec![
                    100.0 * c as f64 + (i % 7) as f64 * 0.01,
                    100.0 * c as f64 + (i / 7) as f64 * 0.01,
                ]);
            }
        }
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(16)).build(&ds);
        let mut stats = SearchStats::new();
        let got = tree.knn(&SquaredEuclidean, &ds, &[100.0, 100.0], 3, &mut stats);
        assert_eq!(got.len(), 3);
        assert!(
            stats.distance_computations < ds.len() as u64 / 2,
            "expected pruning, computed {} of {} distances",
            stats.distance_computations,
            ds.len()
        );
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let ds = random_dataset(12, 3, 5);
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(4)).build(&ds);
        let mut stats = SearchStats::new();
        let got = tree.knn(&SquaredEuclidean, &ds, &[1.0, 1.0, 1.0], 50, &mut stats);
        assert_eq!(got.len(), 12);
        // Results must be sorted by distance.
        for pair in got.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let ds = random_dataset(10, 2, 6);
        let tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::with_leaf_capacity(4)).build(&ds);
        let mut stats = SearchStats::new();
        assert!(tree.knn(&SquaredEuclidean, &ds, &[1.0, 1.0], 0, &mut stats).is_empty());

        let empty = DenseDataset::empty(2).unwrap();
        let empty_tree =
            BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::default()).build(&empty);
        assert!(empty_tree.knn(&SquaredEuclidean, &empty, &[1.0, 1.0], 3, &mut stats).is_empty());
    }

    #[test]
    fn linear_scan_is_sorted_and_deterministic() {
        let ds = random_dataset(64, 3, 8);
        let got = linear_scan_knn(&SquaredEuclidean, &ds, &[5.0, 5.0, 5.0], 10);
        assert_eq!(got.len(), 10);
        for pair in got.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn top_k_threshold_behaviour() {
        let mut top = TopK::new(2);
        assert_eq!(top.threshold(), f64::INFINITY);
        top.offer(PointId(0), 5.0);
        assert_eq!(top.threshold(), f64::INFINITY);
        top.offer(PointId(1), 3.0);
        assert_eq!(top.threshold(), 5.0);
        top.offer(PointId(2), 1.0);
        assert_eq!(top.threshold(), 3.0);
        let sorted = top.into_sorted();
        assert_eq!(sorted[0].id, PointId(2));
        assert_eq!(sorted[1].id, PointId(1));
    }
}
