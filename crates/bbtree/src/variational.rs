//! Simplified variational approximate BB-tree search (the paper's **Var**
//! baseline, after Coviello et al., ICML 2013).
//!
//! Coviello et al. speed up BB-tree kNN search over data distributions by
//! estimating, during backtracking, the probability that the still-unexplored
//! nodes improve the current result, and stopping once that probability is
//! small. The estimate is derived from the data's distribution.
//!
//! This reproduction keeps the *role* of the method in the evaluation — an
//! approximate BB-tree competitor trading accuracy for fewer node/leaf visits
//! — while simplifying the stopping rule to an explicit leaf-visit budget
//! expressed as a fraction of the tree's leaves. Because the underlying
//! traversal is best-first (most promising leaves first), truncating the
//! exploration after a fixed number of leaves is exactly the "stop
//! backtracking early" behaviour the variational criterion induces; the
//! budget plays the role of the variational confidence threshold. The
//! substitution is recorded in `DESIGN.md`.

/// Parameters of the variational-style approximate search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationalConfig {
    /// Fraction of the tree's leaves the search may visit (clamped to
    /// `(0, 1]`). Smaller values are faster and less accurate.
    pub explore_fraction: f64,
}

impl Default for VariationalConfig {
    fn default() -> Self {
        Self { explore_fraction: 0.2 }
    }
}

impl VariationalConfig {
    /// The absolute number of leaves the search may visit for a tree with
    /// `leaf_count` leaves (always at least 1 so a result is produced).
    pub fn leaf_budget(&self, leaf_count: usize) -> usize {
        let f = if self.explore_fraction.is_finite() && self.explore_fraction > 0.0 {
            self.explore_fraction.min(1.0)
        } else {
            1.0
        };
        ((leaf_count as f64 * f).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_fraction_of_leaves() {
        let c = VariationalConfig { explore_fraction: 0.25 };
        assert_eq!(c.leaf_budget(100), 25);
        assert_eq!(c.leaf_budget(101), 26);
    }

    #[test]
    fn budget_is_at_least_one() {
        let c = VariationalConfig { explore_fraction: 0.01 };
        assert_eq!(c.leaf_budget(10), 1);
        assert_eq!(c.leaf_budget(0), 1);
    }

    #[test]
    fn degenerate_fractions_fall_back_to_full_exploration() {
        assert_eq!(VariationalConfig { explore_fraction: 0.0 }.leaf_budget(40), 40);
        assert_eq!(VariationalConfig { explore_fraction: -3.0 }.leaf_budget(40), 40);
        assert_eq!(VariationalConfig { explore_fraction: f64::NAN }.leaf_budget(40), 40);
        assert_eq!(VariationalConfig { explore_fraction: 5.0 }.leaf_budget(40), 40);
    }

    #[test]
    fn default_explores_a_fifth() {
        assert_eq!(VariationalConfig::default().leaf_budget(50), 10);
    }
}
