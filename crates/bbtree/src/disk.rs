//! Disk-resident BB-tree: the paper's **BBT** baseline.
//!
//! The paper extends Cayton's in-memory BB-tree to disk by keeping the tree
//! structure (ball centres and radii) in memory while the data points live in
//! fixed-size pages; every leaf visit loads the leaf's points through the
//! buffer pool so the per-query I/O cost can be measured. [`DiskBBTree`]
//! bundles the tree with its page store and exposes exact kNN, range search
//! and the variational approximate search over that storage layout.

use std::path::Path;
use std::sync::Arc;

use bregman::kernel::{phi_table, KernelScratch};
use bregman::{DecomposableBregman, DenseDataset, PointId};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError, PersistResult};
use pagestore::{BufferPool, IoStats, PageStore, PageStoreConfig, PageStoreError};

use crate::build::{BBTreeBuilder, BBTreeConfig};
use crate::knn::Neighbor;
use crate::node::BBTree;
use crate::stats::SearchStats;
use crate::variational::VariationalConfig;

/// File name of the serialized tree structure within an index directory.
pub const TREE_FILE: &str = "tree.bbt";

/// File name of the page file within an index directory.
pub const PAGES_FILE: &str = "pages.bin";

/// File name of the per-point `Φ(x)` column within an index directory.
pub const PHI_FILE: &str = "phi.tbl";

/// Magic tag of the `Φ` column artifact.
pub const PHI_MAGIC: [u8; 8] = *b"BREPPHI1";

/// Format version of the `Φ` column this build writes and reads.
pub const PHI_VERSION: u32 = 1;

/// What a range query returns: the in-radius `(id, divergence)` pairs plus
/// the traversal and I/O counters of the scan.
pub type RangeResult = (Vec<(PointId, f64)>, SearchStats, IoStats);

/// Result of one disk-resident query: neighbours plus CPU and I/O cost.
#[derive(Debug, Clone)]
pub struct DiskQueryResult {
    /// The neighbours, ordered by increasing divergence.
    pub neighbors: Vec<Neighbor>,
    /// Tree traversal counters.
    pub search: SearchStats,
    /// Physical I/O counters for this query.
    pub io: IoStats,
}

/// A BB-tree whose data points are stored in a [`PageStore`], laid out in the
/// tree's own leaf order so that each leaf is (close to) contiguous on disk.
///
/// The page store sits behind an `Arc`, so cloning shares the disk image
/// instead of duplicating the dataset.
#[derive(Debug, Clone)]
pub struct DiskBBTree<B: DecomposableBregman> {
    divergence: B,
    tree: BBTree,
    store: Arc<PageStore>,
    /// Per-point generator sums `Φ(x) = Σ_j φ(x_j)`, indexed by point id —
    /// the data side of the prepared-query kernel, computed once at build
    /// time and persisted as [`PHI_FILE`].
    phi: Arc<Vec<f64>>,
}

impl<B: DecomposableBregman> DiskBBTree<B> {
    /// Build the tree over `dataset` and lay the points out on the simulated
    /// disk in leaf order.
    pub fn build(
        divergence: B,
        dataset: &DenseDataset,
        tree_config: BBTreeConfig,
        store_config: PageStoreConfig,
    ) -> Self {
        let tree = BBTreeBuilder::new(divergence.clone(), tree_config).build(dataset);
        let order: Vec<u32> = tree.points_in_leaf_order().iter().map(|p| p.0).collect();
        let store = PageStore::build_with_order(store_config, dataset.dim(), &order, |pid| {
            dataset.point(PointId(pid))
        });
        let phi = Arc::new(phi_table(&divergence, dataset));
        Self { divergence, tree, store: Arc::new(store), phi }
    }

    /// Persist the index to a directory: the tree structure as
    /// [`TREE_FILE`], the data pages as [`PAGES_FILE`] and the per-point
    /// `Φ(x)` column as [`PHI_FILE`].
    pub fn save(&self, dir: &Path) -> PersistResult<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(TREE_FILE), self.tree.to_bytes())?;
        let mut w = ByteWriter::new();
        w.put_f64_seq(&self.phi);
        std::fs::write(dir.join(PHI_FILE), seal(&PHI_MAGIC, PHI_VERSION, &w.into_vec()))?;
        self.store.save(&dir.join(PAGES_FILE))
    }

    /// Open an index saved with [`DiskBBTree::save`]. The tree structure is
    /// loaded into memory; data pages are served from the page file on
    /// demand. Fails if the directory was written for a different
    /// divergence.
    ///
    /// Directories written before the `Φ` column existed (no [`PHI_FILE`])
    /// are migrated on open: the column is recomputed with one pass over
    /// the page file. A *present but invalid* column is rejected.
    pub fn open(divergence: B, dir: &Path) -> PersistResult<Self> {
        let tree = BBTree::from_bytes(&std::fs::read(dir.join(TREE_FILE))?)?;
        if tree.divergence_name() != divergence.name() {
            return Err(PersistError::Corrupt(format!(
                "index was built for divergence {:?}, opened with {:?}",
                tree.divergence_name(),
                divergence.name()
            )));
        }
        let store = PageStore::open(&dir.join(PAGES_FILE))?;
        if store.point_count() != tree.len() {
            return Err(PersistError::Corrupt(format!(
                "page file holds {} points, tree indexes {}",
                store.point_count(),
                tree.len()
            )));
        }
        if store.dim() != tree.dim() {
            return Err(PersistError::Corrupt(format!(
                "page file records are {}-dimensional, tree is {}-dimensional",
                store.dim(),
                tree.dim()
            )));
        }
        // Every indexed point must resolve to a page address, otherwise a
        // structurally valid tree over the wrong id space would silently
        // drop candidates at query time.
        if let Some(orphan) =
            tree.points_in_leaf_order().iter().find(|p| store.address_of(p.0).is_none())
        {
            return Err(PersistError::Corrupt(format!(
                "tree indexes point {orphan} which has no address in the page file"
            )));
        }
        let phi = read_or_rebuild_phi(&divergence, dir, &store, tree.len())?;
        Ok(Self { divergence, tree, store: Arc::new(store), phi: Arc::new(phi) })
    }

    /// The in-memory tree structure.
    pub fn tree(&self) -> &BBTree {
        &self.tree
    }

    /// The disk image.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The disk image as a shareable handle.
    pub fn store_arc(&self) -> Arc<PageStore> {
        Arc::clone(&self.store)
    }

    /// The divergence this index was built for.
    pub fn divergence(&self) -> &B {
        &self.divergence
    }

    /// The per-point `Φ(x)` column (indexed by point id).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Exact kNN with per-query I/O accounting through `pool`. A physical
    /// page read that fails mid-query (post-open bit rot caught by the page
    /// file's per-page checksums, or a device error) surfaces as a
    /// [`PageStoreError`] instead of a panic.
    pub fn knn(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        k: usize,
    ) -> Result<DiskQueryResult, PageStoreError> {
        let mut kernel = KernelScratch::default();
        self.knn_with_scratch(pool, &mut kernel, query, k)
    }

    /// Exact kNN reusing the caller's [`KernelScratch`] (the batch-serving
    /// hot path: the prepared-query gradient buffer and the candidate
    /// decode buffers are reused across a whole batch).
    pub fn knn_with_scratch(
        &self,
        pool: &mut BufferPool,
        kernel: &mut KernelScratch,
        query: &[f64],
        k: usize,
    ) -> Result<DiskQueryResult, PageStoreError> {
        self.knn_bounded_with_scratch(pool, kernel, query, k, usize::MAX)
    }

    /// Approximate kNN visiting at most `max_leaves` leaves (in best-first
    /// order). A budget of at least [`BBTree::leaf_count`] degenerates to the
    /// exact search; smaller budgets bound the candidates examined (and the
    /// I/O performed) at the cost of exactness.
    pub fn knn_with_leaf_budget(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        k: usize,
        max_leaves: usize,
    ) -> Result<DiskQueryResult, PageStoreError> {
        let mut kernel = KernelScratch::default();
        self.knn_bounded_with_scratch(pool, &mut kernel, query, k, max_leaves)
    }

    /// [`DiskBBTree::knn_with_leaf_budget`] reusing the caller's scratch.
    pub fn knn_with_leaf_budget_scratch(
        &self,
        pool: &mut BufferPool,
        kernel: &mut KernelScratch,
        query: &[f64],
        k: usize,
        max_leaves: usize,
    ) -> Result<DiskQueryResult, PageStoreError> {
        self.knn_bounded_with_scratch(pool, kernel, query, k, max_leaves)
    }

    /// Approximate kNN using the variational early-termination rule.
    pub fn knn_variational(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        k: usize,
        config: &VariationalConfig,
    ) -> Result<DiskQueryResult, PageStoreError> {
        let max_leaves = config.leaf_budget(self.tree.leaf_count());
        self.knn_with_leaf_budget(pool, query, k, max_leaves)
    }

    /// The shared disk search: best-first traversal with the prepared-query
    /// kernel — query-side transcendentals hoisted once, per-candidate
    /// distance `Φ(x) + c_q − ⟨∇φ(q), x⟩` over the tabulated `Φ` column.
    /// Each visited leaf is decoded one page group at a time as a
    /// lane-major block and refined in a single batched kernel call.
    fn knn_bounded_with_scratch(
        &self,
        pool: &mut BufferPool,
        kernel: &mut KernelScratch,
        query: &[f64],
        k: usize,
        max_leaves: usize,
    ) -> Result<DiskQueryResult, PageStoreError> {
        let before = pool.stats();
        let mut stats = SearchStats::new();
        let KernelScratch { prepared, ids, lanes, distances, phis, .. } = kernel;
        prepared.decompose_into(&self.divergence, query);
        let prepared: &bregman::kernel::PreparedQuery = prepared;
        let phi = &self.phi;
        let store = &self.store;
        // The traversal callback cannot early-return through `knn_bounded`,
        // so a failed page read is captured here and re-raised afterwards
        // (remaining leaf visits are skipped).
        let mut read_error: Option<PageStoreError> = None;
        let neighbors = self.tree.knn_bounded(
            &self.divergence,
            query,
            k,
            &mut stats,
            max_leaves,
            &mut |leaf_points, offer| {
                if read_error.is_some() {
                    return;
                }
                ids.clear();
                ids.extend(leaf_points.iter().map(|p| p.0));
                if let Err(e) = pool.read_points_block(store, ids, lanes, &mut |members, block| {
                    phis.clear();
                    phis.extend(members.iter().map(|&pid| phi[pid as usize]));
                    prepared.distance_block(phis, block, distances);
                    for (&pid, &d) in members.iter().zip(distances.iter()) {
                        offer(PointId(pid), d);
                    }
                }) {
                    read_error = Some(e);
                }
            },
        );
        if let Some(e) = read_error {
            return Err(e);
        }
        Ok(DiskQueryResult { neighbors, search: stats, io: pool.stats().since(&before) })
    }

    /// Range query: load every candidate leaf's points from disk and refine
    /// them against the exact divergence (through the prepared kernel).
    /// Returns `(id, divergence)` pairs with divergence ≤ `radius`.
    pub fn range(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        radius: f64,
    ) -> Result<RangeResult, PageStoreError> {
        let before = pool.stats();
        let mut stats = SearchStats::new();
        let prepared = self.divergence.prepare_query(query);
        let candidates = self.tree.range_candidates(&self.divergence, query, radius, &mut stats);
        let ids: Vec<u32> = candidates.iter().map(|p| p.0).collect();
        let mut coords = Vec::new();
        let mut out = Vec::new();
        pool.read_points_with(&self.store, &ids, &mut coords, &mut |pid, c| {
            stats.candidates_examined += 1;
            stats.distance_computations += 1;
            let d = prepared.distance(self.phi[pid as usize], c);
            if d <= radius {
                out.push((PointId(pid), d));
            }
        })?;
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Ok((out, stats, pool.stats().since(&before)))
    }

    /// Number of pages in the simulated disk image.
    pub fn page_count(&self) -> usize {
        self.store.page_count()
    }
}

/// Load the persisted `Φ` column, or migrate a pre-`Φ` directory by
/// recomputing it from the page file (one sequential pass; the migration
/// pool's I/O is not attributed to any query).
fn read_or_rebuild_phi<B: DecomposableBregman>(
    divergence: &B,
    dir: &Path,
    store: &PageStore,
    expected_len: usize,
) -> PersistResult<Vec<f64>> {
    let path = dir.join(PHI_FILE);
    if !path.exists() {
        return store.derive_point_column(&mut |coords| divergence.f(coords));
    }
    let bytes = std::fs::read(&path)?;
    let payload = unseal(&PHI_MAGIC, PHI_VERSION, &bytes)?;
    let mut r = ByteReader::new(payload);
    let phi = r.take_f64_seq()?;
    r.expect_end()?;
    if phi.len() != expected_len {
        return Err(PersistError::Corrupt(format!(
            "Φ column holds {} entries, index holds {expected_len} points",
            phi.len()
        )));
    }
    Ok(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::linear_scan_knn;
    use crate::range::linear_scan_range;
    use bregman::{ItakuraSaito, SquaredEuclidean};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> DenseDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.gen_range(0.1..10.0)).collect()).collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn disk_knn_matches_linear_scan() {
        let ds = random_dataset(250, 8, 41);
        let index = DiskBBTree::build(
            SquaredEuclidean,
            &ds,
            BBTreeConfig::with_leaf_capacity(16),
            PageStoreConfig::with_page_size(1024),
        );
        let mut pool = BufferPool::unbuffered();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let query: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..10.0)).collect();
            let result = index.knn(&mut pool, &query, 10).unwrap();
            let expected = linear_scan_knn(&SquaredEuclidean, &ds, &query, 10);
            assert_eq!(result.neighbors.len(), 10);
            for (g, e) in result.neighbors.iter().zip(expected.iter()) {
                assert!((g.distance - e.distance).abs() < 1e-9);
            }
            assert!(result.io.pages_read > 0, "disk search must perform I/O");
        }
    }

    #[test]
    fn disk_range_matches_linear_scan() {
        let ds = random_dataset(200, 4, 77);
        let index = DiskBBTree::build(
            ItakuraSaito,
            &ds,
            BBTreeConfig::with_leaf_capacity(10),
            PageStoreConfig::with_page_size(512),
        );
        let mut pool = BufferPool::new(16);
        let query = vec![3.0, 3.0, 3.0, 3.0];
        let (got, stats, io) = index.range(&mut pool, &query, 1.2).unwrap();
        let expected = linear_scan_range(&ItakuraSaito, &ds, &query, 1.2);
        assert_eq!(got.len(), expected.len());
        assert!(stats.candidates_examined >= got.len() as u64);
        assert!(io.pages_read > 0 || got.is_empty());
    }

    #[test]
    fn io_cost_bounded_by_page_count_with_warm_pool() {
        let ds = random_dataset(300, 6, 5);
        let index = DiskBBTree::build(
            SquaredEuclidean,
            &ds,
            BBTreeConfig::with_leaf_capacity(20),
            PageStoreConfig::with_page_size(2048),
        );
        // A pool large enough to hold the whole store never re-reads a page.
        let mut pool = BufferPool::new(index.page_count());
        let result = index.knn(&mut pool, &[5.0; 6], 5).unwrap();
        assert!(result.io.pages_read <= index.page_count() as u64);
        assert!(result.neighbors.len() == 5);
    }

    #[test]
    fn leaf_order_layout_keeps_leaf_pages_contiguous() {
        let ds = random_dataset(128, 4, 9);
        let index = DiskBBTree::build(
            SquaredEuclidean,
            &ds,
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(8 * 4 * 8), // 8 records per page
        );
        // Every leaf of capacity 8 should span at most 2 pages.
        for leaf in index.tree().leaves_in_order() {
            if let crate::node::NodeKind::Leaf { points } = &index.tree().node(leaf).kind {
                let pages: std::collections::HashSet<_> =
                    points.iter().map(|p| index.store().address_of(p.0).unwrap().page).collect();
                assert!(pages.len() <= 2, "leaf spread over {} pages", pages.len());
            }
        }
    }

    #[test]
    fn save_open_roundtrip_answers_identically_with_identical_io() {
        let ds = random_dataset(300, 6, 21);
        let built = DiskBBTree::build(
            ItakuraSaito,
            &ds,
            BBTreeConfig::with_leaf_capacity(12),
            PageStoreConfig::with_page_size(1024),
        );
        let dir = std::env::temp_dir().join(format!("bbtree-disk-test-{}", std::process::id()));
        built.save(&dir).unwrap();
        let reopened = DiskBBTree::open(ItakuraSaito, &dir).unwrap();
        assert_eq!(reopened.store().backend_kind(), "file");
        assert_eq!(reopened.page_count(), built.page_count());
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..4 {
            let query: Vec<f64> = (0..6).map(|_| rng.gen_range(0.5..8.0)).collect();
            let mut pool_a = BufferPool::unbuffered();
            let mut pool_b = BufferPool::unbuffered();
            let a = built.knn(&mut pool_a, &query, 7).unwrap();
            let b = reopened.knn(&mut pool_b, &query, 7).unwrap();
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.io, b.io, "cold-pool I/O must be identical after reopening");
            assert_eq!(a.search, b.search);
        }
        // Opening with the wrong divergence is rejected.
        assert!(DiskBBTree::open(SquaredEuclidean, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_phi_directories_are_migrated_on_open() {
        // A directory saved before the Φ column existed (simulated by
        // deleting phi.tbl) must open by recomputing the column from the
        // page file and answer identically to the freshly built index.
        let ds = random_dataset(220, 5, 61);
        let built = DiskBBTree::build(
            ItakuraSaito,
            &ds,
            BBTreeConfig::with_leaf_capacity(10),
            PageStoreConfig::with_page_size(1024),
        );
        let dir = std::env::temp_dir().join(format!("bbtree-phi-mig-{}", std::process::id()));
        built.save(&dir).unwrap();
        std::fs::remove_file(dir.join(PHI_FILE)).unwrap();
        let migrated = DiskBBTree::open(ItakuraSaito, &dir).unwrap();
        assert_eq!(migrated.phi().len(), built.phi().len());
        for (a, b) in migrated.phi().iter().zip(built.phi().iter()) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
        let mut pool_a = BufferPool::unbuffered();
        let mut pool_b = BufferPool::unbuffered();
        let query = ds.point(bregman::PointId(3)).to_vec();
        let a = built.knn(&mut pool_a, &query, 9).unwrap();
        let b = migrated.knn(&mut pool_b, &query, 9).unwrap();
        assert_eq!(a.neighbors, b.neighbors);

        // A present-but-truncated Φ column is rejected, not silently used.
        let mut w = ByteWriter::new();
        w.put_f64_seq(&built.phi()[..10]);
        std::fs::write(dir.join(PHI_FILE), seal(&PHI_MAGIC, PHI_VERSION, &w.into_vec())).unwrap();
        match DiskBBTree::open(ItakuraSaito, &dir) {
            Err(PersistError::Corrupt(message)) => assert!(message.contains("Φ"), "{message}"),
            other => panic!("expected Φ length rejection, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_page_file_dimensionality_is_rejected() {
        // Equal point counts, different record widths: pairing the tree with
        // the other index's page file must fail at open rather than letting
        // release-mode searches zip-truncate divergences.
        let root = std::env::temp_dir().join(format!("bbtree-swap-test-{}", std::process::id()));
        let a = DiskBBTree::build(
            SquaredEuclidean,
            &random_dataset(80, 4, 50),
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(512),
        );
        let b = DiskBBTree::build(
            SquaredEuclidean,
            &random_dataset(80, 6, 51),
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(512),
        );
        a.save(&root.join("a")).unwrap();
        b.save(&root.join("b")).unwrap();
        std::fs::copy(root.join("b").join(PAGES_FILE), root.join("a").join(PAGES_FILE)).unwrap();
        match DiskBBTree::open(SquaredEuclidean, &root.join("a")) {
            Err(PersistError::Corrupt(message)) => {
                assert!(message.contains("dimensional"), "{message}")
            }
            other => panic!("expected dimensionality rejection, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn variational_visits_no_more_leaves_than_budget() {
        let ds = random_dataset(400, 6, 13);
        let index = DiskBBTree::build(
            SquaredEuclidean,
            &ds,
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(1024),
        );
        let mut pool = BufferPool::unbuffered();
        let config = VariationalConfig { explore_fraction: 0.1 };
        let result = index.knn_variational(&mut pool, &[5.0; 6], 10, &config).unwrap();
        let budget = config.leaf_budget(index.tree().leaf_count());
        assert!(result.search.leaves_visited as usize <= budget);
        assert_eq!(result.neighbors.len(), 10);
    }
}
