//! BB-tree serialization: the in-memory tree structure (balls, children,
//! leaf point ids) as a sealed binary artifact.
//!
//! The tree structure is the part of a disk-resident BB-tree that lives in
//! memory at query time; persisting it (alongside the page file holding the
//! data points) is what makes the build-once/open-many lifecycle possible.
//!
//! # Format (`BREPTRE1`, version 1)
//!
//! A sealed envelope (see [`pagestore::format`]) whose payload is:
//!
//! ```text
//! dim             u64
//! point_count     u64
//! divergence_name length-prefixed UTF-8 string
//! root            u32 (node id)
//! node_count      u64, then per node:
//!   center        length-prefixed f64 sequence
//!   radius        f64
//!   kind          u8 — 0 = internal, 1 = leaf
//!     internal:   left u32, right u32
//!     leaf:       length-prefixed u32 sequence of point ids
//! ```
//!
//! Decoding validates the structure before handing the tree back: node
//! references in range, every node reachable from the root exactly once (no
//! cycles, no shared subtrees, no orphaned leaves), every point id stored in
//! exactly one leaf, and the leaf population equal to `point_count` — so a
//! corrupted artifact is rejected instead of producing a tree that loops,
//! panics or silently hides points during search.

use bregman::PointId;
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError, PersistResult};

use crate::ball::BregmanBall;
use crate::node::{BBTree, Node, NodeId, NodeKind};

/// Magic tag of a serialized BB-tree.
pub const TREE_MAGIC: [u8; 8] = *b"BREPTRE1";

/// Format version this build writes and reads.
pub const TREE_VERSION: u32 = 1;

impl BBTree {
    /// Serialize the tree structure into a sealed byte artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.dim as u64);
        w.put_u64(self.point_count as u64);
        w.put_str(&self.divergence_name);
        w.put_u32(self.root.0);
        w.put_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            w.put_f64_seq(node.ball.center());
            w.put_f64(node.ball.radius());
            match &node.kind {
                NodeKind::Internal { left, right } => {
                    w.put_u8(0);
                    w.put_u32(left.0);
                    w.put_u32(right.0);
                }
                NodeKind::Leaf { points } => {
                    w.put_u8(1);
                    let ids: Vec<u32> = points.iter().map(|p| p.0).collect();
                    w.put_u32_seq(&ids);
                }
            }
        }
        seal(&TREE_MAGIC, TREE_VERSION, &w.into_vec())
    }

    /// Decode a tree serialized with [`BBTree::to_bytes`], validating the
    /// envelope and the structural invariants.
    pub fn from_bytes(data: &[u8]) -> PersistResult<BBTree> {
        let payload = unseal(&TREE_MAGIC, TREE_VERSION, data)?;
        let mut r = ByteReader::new(payload);
        let dim = r.take_usize()?;
        let point_count = r.take_usize()?;
        let divergence_name = r.take_str()?;
        let root = NodeId(r.take_u32()?);
        let node_count = r.take_usize()?;
        let mut nodes = Vec::with_capacity(node_count.min(1 << 22));
        let mut leaf_population = 0usize;
        let mut seen_points = std::collections::HashSet::new();
        for index in 0..node_count {
            let center = r.take_f64_seq()?;
            if center.len() != dim {
                return Err(PersistError::Corrupt(format!(
                    "node {index}: ball centre has {} dimensions, tree is {dim}-dimensional",
                    center.len()
                )));
            }
            let radius = r.take_f64()?;
            if radius.is_nan() || radius < 0.0 {
                return Err(PersistError::Corrupt(format!(
                    "node {index}: negative or NaN ball radius {radius}"
                )));
            }
            let kind = match r.take_u8()? {
                0 => {
                    NodeKind::Internal { left: NodeId(r.take_u32()?), right: NodeId(r.take_u32()?) }
                }
                1 => {
                    let ids = r.take_u32_seq()?;
                    for &id in &ids {
                        if !seen_points.insert(id) {
                            return Err(PersistError::Corrupt(format!(
                                "point id {id} stored in more than one leaf"
                            )));
                        }
                    }
                    leaf_population += ids.len();
                    NodeKind::Leaf { points: ids.into_iter().map(PointId).collect() }
                }
                tag => {
                    return Err(PersistError::Corrupt(format!(
                        "node {index}: unknown node kind tag {tag}"
                    )))
                }
            };
            nodes.push(Node { ball: BregmanBall::new(center, radius), kind });
        }
        r.expect_end()?;
        if nodes.is_empty() {
            return Err(PersistError::Corrupt("tree holds no nodes".into()));
        }
        if root.index() >= nodes.len() {
            return Err(PersistError::Corrupt(format!(
                "root {} out of range for {} nodes",
                root.0,
                nodes.len()
            )));
        }
        for (index, node) in nodes.iter().enumerate() {
            if let NodeKind::Internal { left, right } = &node.kind {
                if left.index() >= nodes.len() || right.index() >= nodes.len() {
                    return Err(PersistError::Corrupt(format!(
                        "node {index}: child reference out of range"
                    )));
                }
            }
        }
        if leaf_population != point_count {
            return Err(PersistError::Corrupt(format!(
                "leaves hold {leaf_population} points, header says {point_count}"
            )));
        }
        // Every node must be reachable from the root exactly once: a cycle
        // or shared subtree would make searches loop or double-count, and an
        // unreachable leaf would silently hide points from every traversal.
        let mut visited = vec![false; nodes.len()];
        let mut visited_count = 0usize;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let slot = &mut visited[id.index()];
            if *slot {
                return Err(PersistError::Corrupt(format!(
                    "node {} is reachable more than once (cycle or shared subtree)",
                    id.0
                )));
            }
            *slot = true;
            visited_count += 1;
            if let NodeKind::Internal { left, right } = &nodes[id.index()].kind {
                stack.push(*left);
                stack.push(*right);
            }
        }
        if visited_count != nodes.len() {
            return Err(PersistError::Corrupt(format!(
                "{} of {} nodes unreachable from the root",
                nodes.len() - visited_count,
                nodes.len()
            )));
        }
        Ok(BBTree { nodes, root, dim, point_count, divergence_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{BBTreeBuilder, BBTreeConfig};
    use bregman::{DenseDataset, ItakuraSaito, SquaredEuclidean};

    fn sample_tree() -> (BBTree, DenseDataset) {
        let rows: Vec<Vec<f64>> =
            (1..=48).map(|i| vec![i as f64, (49 - i) as f64, 0.25 * i as f64]).collect();
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let tree = BBTreeBuilder::new(ItakuraSaito, BBTreeConfig::with_leaf_capacity(5)).build(&ds);
        (tree, ds)
    }

    #[test]
    fn roundtrip_preserves_structure_and_search_behavior() {
        let (tree, ds) = sample_tree();
        let restored = BBTree::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(restored.dim(), tree.dim());
        assert_eq!(restored.len(), tree.len());
        assert_eq!(restored.node_count(), tree.node_count());
        assert_eq!(restored.leaf_count(), tree.leaf_count());
        assert_eq!(restored.divergence_name(), tree.divergence_name());
        assert_eq!(restored.points_in_leaf_order(), tree.points_in_leaf_order());
        assert!(restored.validate_covering(&ItakuraSaito, |pid| ds.point(pid).to_vec()));
        // Identical range candidates on both trees.
        let mut s1 = crate::stats::SearchStats::new();
        let mut s2 = crate::stats::SearchStats::new();
        let query = ds.point(bregman::PointId(7));
        let a = tree.range_candidates(&ItakuraSaito, query, 0.5, &mut s1);
        let b = restored.range_candidates(&ItakuraSaito, query, 0.5, &mut s2);
        assert_eq!(a, b);
        assert_eq!(s1.nodes_visited, s2.nodes_visited);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let ds = DenseDataset::empty(2).unwrap();
        let tree = BBTreeBuilder::new(SquaredEuclidean, BBTreeConfig::default()).build(&ds);
        let restored = BBTree::from_bytes(&tree.to_bytes()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.node_count(), 1);
    }

    #[test]
    fn corruption_is_detected() {
        let (tree, _) = sample_tree();
        let bytes = tree.to_bytes();
        // Checksum catches payload bit flips.
        let mut flipped = bytes.clone();
        let middle = flipped.len() / 2;
        flipped[middle] ^= 0xFF;
        assert!(BBTree::from_bytes(&flipped).is_err());
        // Truncation is rejected.
        assert!(BBTree::from_bytes(&bytes[..bytes.len() - 4]).is_err());
        // Wrong artifact type is rejected.
        let sealed = seal(b"BREPPGS1", 1, b"not a tree");
        assert!(matches!(BBTree::from_bytes(&sealed), Err(PersistError::BadMagic { .. })));
    }

    #[test]
    fn cyclic_and_duplicate_point_structures_are_rejected() {
        // Node 0 is internal and references itself: the reachability walk
        // must flag the cycle instead of letting searches loop forever.
        let mut w = ByteWriter::new();
        w.put_u64(1); // dim
        w.put_u64(0); // point_count
        w.put_str("Test");
        w.put_u32(0); // root
        w.put_u64(2); // two nodes
        w.put_f64_seq(&[0.0]); // node 0: internal, left = itself
        w.put_f64(0.0);
        w.put_u8(0);
        w.put_u32(0);
        w.put_u32(1);
        w.put_f64_seq(&[0.0]); // node 1: empty leaf
        w.put_f64(0.0);
        w.put_u8(1);
        w.put_u32_seq(&[]);
        let sealed = seal(&TREE_MAGIC, TREE_VERSION, &w.into_vec());
        match BBTree::from_bytes(&sealed) {
            Err(PersistError::Corrupt(message)) => {
                assert!(message.contains("reachable more than once"), "{message}")
            }
            other => panic!("expected cycle rejection, got {other:?}"),
        }

        // The same point id in two leaves must be rejected.
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        w.put_str("Test");
        w.put_u32(2); // root = internal node
        w.put_u64(3);
        for _ in 0..2 {
            w.put_f64_seq(&[0.0]); // leaf holding point 7
            w.put_f64(0.0);
            w.put_u8(1);
            w.put_u32_seq(&[7]);
        }
        w.put_f64_seq(&[0.0]); // internal root
        w.put_f64(0.0);
        w.put_u8(0);
        w.put_u32(0);
        w.put_u32(1);
        let sealed = seal(&TREE_MAGIC, TREE_VERSION, &w.into_vec());
        match BBTree::from_bytes(&sealed) {
            Err(PersistError::Corrupt(message)) => {
                assert!(message.contains("more than one leaf"), "{message}")
            }
            other => panic!("expected duplicate-point rejection, got {other:?}"),
        }
    }

    #[test]
    fn structural_validation_rejects_bad_references() {
        // Hand-craft a payload with an out-of-range root.
        let mut w = ByteWriter::new();
        w.put_u64(1); // dim
        w.put_u64(0); // point_count
        w.put_str("Test");
        w.put_u32(5); // root out of range
        w.put_u64(1); // one node
        w.put_f64_seq(&[0.0]);
        w.put_f64(0.0);
        w.put_u8(1);
        w.put_u32_seq(&[]);
        let sealed = seal(&TREE_MAGIC, TREE_VERSION, &w.into_vec());
        assert!(matches!(BBTree::from_bytes(&sealed), Err(PersistError::Corrupt(_))));
    }
}
