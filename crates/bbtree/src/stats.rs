//! Search-cost counters reported by every BB-tree traversal.

/// CPU-side cost counters for one tree traversal.
///
/// These complement [`pagestore::IoStats`]: `SearchStats` counts in-memory
/// work (nodes touched, divergence evaluations), while the buffer pool counts
/// physical page reads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes popped/visited during the traversal.
    pub nodes_visited: u64,
    /// Leaf nodes whose contents were examined.
    pub leaves_visited: u64,
    /// Exact divergence evaluations between the query and data points.
    pub distance_computations: u64,
    /// Candidate points examined (for filter-and-refine searches).
    pub candidates_examined: u64,
}

impl SearchStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.distance_computations += other.distance_computations;
        self.candidates_examined += other.candidates_examined;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} leaves, {} divergence evals, {} candidates",
            self.nodes_visited,
            self.leaves_visited,
            self.distance_computations,
            self.candidates_examined
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_reset() {
        let mut a = SearchStats {
            nodes_visited: 1,
            leaves_visited: 2,
            distance_computations: 3,
            candidates_examined: 4,
        };
        let b = SearchStats {
            nodes_visited: 10,
            leaves_visited: 20,
            distance_computations: 30,
            candidates_examined: 40,
        };
        a.accumulate(&b);
        assert_eq!(a.nodes_visited, 11);
        assert_eq!(a.candidates_examined, 44);
        a.reset();
        assert_eq!(a, SearchStats::default());
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = SearchStats {
            nodes_visited: 5,
            leaves_visited: 6,
            distance_computations: 7,
            candidates_examined: 8,
        };
        let text = s.to_string();
        for needle in ["5 nodes", "6 leaves", "7 divergence", "8 candidates"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
