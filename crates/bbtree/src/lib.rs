//! Bregman ball trees (BB-trees).
//!
//! A BB-tree (Cayton, ICML 2008) is a binary space-partitioning tree whose
//! nodes are *Bregman balls* `{x : D_f(x, μ) ≤ R}`. It is built by recursive
//! Bregman 2-means clustering and supports:
//!
//! * exact k-nearest-neighbour search by best-first branch-and-bound
//!   ([`knn`]), the paper's **BBT** baseline,
//! * Bregman range search (Cayton, NeurIPS 2009) returning the candidate
//!   points of every leaf whose ball intersects the query range ([`range`]),
//!   which is the filtering primitive BrePartition runs in every subspace,
//! * a disk-resident variant whose leaves resolve points through a
//!   [`pagestore::PageStore`] and report I/O cost ([`disk`]),
//! * a simplified variational approximate search in the spirit of
//!   Coviello et al. (ICML 2013), the paper's **Var** baseline
//!   ([`variational`]).
//!
//! The pruning bound is the exact Bregman projection of the query onto a
//! ball, computed by bisection along the dual geodesic ([`ball`]); the
//! bisection maintains a conservative (outside-the-ball) iterate so the
//! reported bound never exceeds the true minimum and exactness is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
pub mod build;
pub mod disk;
pub mod knn;
pub mod node;
pub mod range;
pub mod serial;
pub mod stats;
pub mod variational;

pub use ball::BregmanBall;
pub use build::{BBTreeBuilder, BBTreeConfig};
pub use disk::DiskBBTree;
pub use knn::Neighbor;
pub use node::{BBTree, NodeId, NodeKind};
pub use stats::SearchStats;
pub use variational::VariationalConfig;
