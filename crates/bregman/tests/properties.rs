//! Property-based tests for the Bregman divergence primitives.
//!
//! `proptest` is not available in the offline build environment, so each
//! property is checked over a deterministic battery of seeded random inputs
//! instead of shrinking strategies. The properties themselves are unchanged.

use bregman::{
    DecomposableBregman, DenseDataset, Divergence, DivergenceKind, Exponential, GeneralizedI,
    GeodesicInterpolator, ItakuraSaito, SquaredEuclidean,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 64;

/// Strictly positive coordinates usable by every divergence.
fn positive_vec(rng: &mut ChaCha8Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(0.05..50.0)).collect()
}

/// Possibly-negative coordinates (SE / exponential only).
fn real_vec(rng: &mut ChaCha8Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-20.0..20.0)).collect()
}

#[test]
fn divergences_are_non_negative_on_positive_orthant() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let x = positive_vec(&mut rng, 8);
        let y = positive_vec(&mut rng, 8);
        for kind in DivergenceKind::ALL {
            let d = kind.divergence(&x, &y);
            assert!(d >= -1e-9, "{kind}: divergence {d} < 0");
        }
    }
}

#[test]
fn divergence_is_zero_iff_equal() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let x = positive_vec(&mut rng, 6);
        for kind in DivergenceKind::ALL {
            let d = kind.divergence(&x, &x);
            assert!(d.abs() < 1e-9, "{kind}: D(x,x) = {d}");
        }
    }
}

#[test]
fn squared_euclidean_and_exponential_accept_negatives() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let x = real_vec(&mut rng, 8);
        let y = real_vec(&mut rng, 8);
        let se = SquaredEuclidean.divergence(&x, &y);
        let ed = Exponential.divergence(&x, &y);
        assert!(se >= 0.0);
        assert!(ed >= -1e-9);
        assert!(se.is_finite());
        assert!(ed.is_finite());
    }
}

#[test]
fn decomposability_sum_of_parts() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB4);
    for _ in 0..CASES {
        let x = positive_vec(&mut rng, 12);
        let y = positive_vec(&mut rng, 12);
        let split = rng.gen_range(1..11usize);
        // D(x, y) over the full vector equals the sum over any split — the
        // property the whole BrePartition framework rests on.
        for kind in [
            DivergenceKind::SquaredEuclidean,
            DivergenceKind::ItakuraSaito,
            DivergenceKind::Exponential,
        ] {
            let whole = kind.divergence(&x, &y);
            let parts = kind.divergence(&x[..split], &y[..split])
                + kind.divergence(&x[split..], &y[split..]);
            assert!(
                (whole - parts).abs() < 1e-7 * (1.0 + whole.abs()),
                "{kind}: whole={whole} parts={parts}"
            );
        }
    }
}

#[test]
fn scalar_divergence_is_convex_in_first_argument() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let a = rng.gen_range(0.1..20.0);
        let b = rng.gen_range(0.1..20.0);
        let y = rng.gen_range(0.1..20.0);
        let lambda = rng.gen_range(0.0..1.0);
        // φ-divergence d(·, y) is convex: d(λa+(1-λ)b, y) ≤ λ d(a,y) + (1-λ) d(b,y).
        let mid = lambda * a + (1.0 - lambda) * b;
        for kind in DivergenceKind::ALL {
            let lhs = kind.divergence(&[mid], &[y]);
            let rhs =
                lambda * kind.divergence(&[a], &[y]) + (1.0 - lambda) * kind.divergence(&[b], &[y]);
            assert!(lhs <= rhs + 1e-7 * (1.0 + rhs.abs()), "{kind}: {lhs} > {rhs}");
        }
    }
}

#[test]
fn dual_roundtrip_is_identity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB6);
    for _ in 0..CASES {
        let x = positive_vec(&mut rng, 5);
        type Roundtrip<'a> = &'a dyn Fn(&[f64]) -> Vec<f64>;
        let divergences: [Roundtrip; 3] = [
            &|v| SquaredEuclidean.from_dual(&SquaredEuclidean.to_dual(v)),
            &|v| ItakuraSaito.from_dual(&ItakuraSaito.to_dual(v)),
            &|v| GeneralizedI.from_dual(&GeneralizedI.to_dual(v)),
        ];
        for roundtrip in divergences {
            let back = roundtrip(&x);
            for (orig, rec) in x.iter().zip(back.iter()) {
                assert!((orig - rec).abs() < 1e-6 * (1.0 + orig.abs()));
            }
        }
    }
}

#[test]
fn geodesic_endpoints_and_monotonicity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB7);
    for _ in 0..CASES {
        let a = positive_vec(&mut rng, 4);
        let b = positive_vec(&mut rng, 4);
        let mut interp = GeodesicInterpolator::new(ItakuraSaito, &a, &b);
        let start = interp.at(0.0).to_vec();
        let end = interp.at(1.0).to_vec();
        for i in 0..4 {
            assert!((start[i] - a[i]).abs() < 1e-6 * (1.0 + a[i].abs()));
            assert!((end[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()));
        }
        // Divergence to the θ=1 endpoint decreases monotonically (Cayton's lemma).
        let mut prev = f64::INFINITY;
        for step in 0..=8 {
            let theta = step as f64 / 8.0;
            let d = interp.divergence_to(theta, &b);
            assert!(d <= prev + 1e-6 * (1.0 + prev.abs().min(1e12)));
            prev = d;
        }
    }
}

#[test]
fn query_components_bound_reconstruction() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB8);
    for _ in 0..CASES {
        let x = positive_vec(&mut rng, 10);
        let y = positive_vec(&mut rng, 10);
        // The Cauchy upper bound assembled from the transform components must
        // dominate the exact divergence (Theorem 1 of the paper).
        fn check<B: DecomposableBregman>(b: &B, x: &[f64], y: &[f64]) -> (f64, f64) {
            let (alpha_x, gamma_x) = b.point_components(x);
            let (alpha_y, beta_yy, delta_y) = b.query_components(y);
            let ub = alpha_x + alpha_y + beta_yy + (gamma_x * delta_y).sqrt();
            (b.divergence(x, y), ub)
        }
        for (exact, ub) in [
            check(&SquaredEuclidean, &x, &y),
            check(&ItakuraSaito, &x, &y),
            check(&Exponential, &x, &y),
        ] {
            assert!(exact <= ub + 1e-7 * (1.0 + ub.abs()), "exact={exact} ub={ub}");
        }
    }
}

#[test]
fn dataset_projection_preserves_rows() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB9);
    for _ in 0..CASES {
        let n = rng.gen_range(1..20usize);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..6).map(|_| rng.gen_range(0.1..10.0)).collect()).collect();
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let proj = ds.project(&[5, 3, 1]).unwrap();
        assert_eq!(proj.len(), ds.len());
        for i in 0..ds.len() {
            let orig = ds.row(i);
            let p = proj.row(i);
            assert_eq!(p, &[orig[5], orig[3], orig[1]]);
        }
    }
}
