//! Property-based tests for the Bregman divergence primitives.

use bregman::{
    DecomposableBregman, DenseDataset, Divergence, DivergenceKind, Exponential, GeneralizedI,
    GeodesicInterpolator, ItakuraSaito, SquaredEuclidean,
};
use proptest::prelude::*;

/// Strategy for strictly positive coordinates usable by every divergence.
fn positive_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..50.0, len)
}

/// Strategy for possibly-negative coordinates (SE / exponential only).
fn real_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-20.0f64..20.0, len)
}

proptest! {
    #[test]
    fn divergences_are_non_negative_on_positive_orthant(
        x in positive_vec(8),
        y in positive_vec(8),
    ) {
        for kind in DivergenceKind::ALL {
            let d = kind.divergence(&x, &y);
            prop_assert!(d >= -1e-9, "{kind}: divergence {d} < 0");
        }
    }

    #[test]
    fn divergence_is_zero_iff_equal(x in positive_vec(6)) {
        for kind in DivergenceKind::ALL {
            let d = kind.divergence(&x, &x);
            prop_assert!(d.abs() < 1e-9, "{kind}: D(x,x) = {d}");
        }
    }

    #[test]
    fn squared_euclidean_and_exponential_accept_negatives(
        x in real_vec(8),
        y in real_vec(8),
    ) {
        let se = SquaredEuclidean.divergence(&x, &y);
        let ed = Exponential.divergence(&x, &y);
        prop_assert!(se >= 0.0);
        prop_assert!(ed >= -1e-9);
        prop_assert!(se.is_finite());
        prop_assert!(ed.is_finite());
    }

    #[test]
    fn decomposability_sum_of_parts(
        x in positive_vec(12),
        y in positive_vec(12),
        split in 1usize..11,
    ) {
        // D(x, y) over the full vector equals the sum over any split — the
        // property the whole BrePartition framework rests on.
        for kind in [
            DivergenceKind::SquaredEuclidean,
            DivergenceKind::ItakuraSaito,
            DivergenceKind::Exponential,
        ] {
            let whole = kind.divergence(&x, &y);
            let parts = kind.divergence(&x[..split], &y[..split])
                + kind.divergence(&x[split..], &y[split..]);
            prop_assert!((whole - parts).abs() < 1e-7 * (1.0 + whole.abs()),
                "{kind}: whole={whole} parts={parts}");
        }
    }

    #[test]
    fn scalar_divergence_is_convex_in_first_argument(
        a in 0.1f64..20.0,
        b in 0.1f64..20.0,
        y in 0.1f64..20.0,
        lambda in 0.0f64..1.0,
    ) {
        // φ-divergence d(·, y) is convex: d(λa+(1-λ)b, y) ≤ λ d(a,y) + (1-λ) d(b,y).
        let mid = lambda * a + (1.0 - lambda) * b;
        for kind in DivergenceKind::ALL {
            let lhs = kind.divergence(&[mid], &[y]);
            let rhs = lambda * kind.divergence(&[a], &[y])
                + (1.0 - lambda) * kind.divergence(&[b], &[y]);
            prop_assert!(lhs <= rhs + 1e-7 * (1.0 + rhs.abs()), "{kind}: {lhs} > {rhs}");
        }
    }

    #[test]
    fn dual_roundtrip_is_identity(x in positive_vec(5)) {
        let divergences: [&dyn Fn(&[f64]) -> Vec<f64>; 3] = [
            &|v| SquaredEuclidean.from_dual(&SquaredEuclidean.to_dual(v)),
            &|v| ItakuraSaito.from_dual(&ItakuraSaito.to_dual(v)),
            &|v| GeneralizedI.from_dual(&GeneralizedI.to_dual(v)),
        ];
        for roundtrip in divergences {
            let back = roundtrip(&x);
            for (orig, rec) in x.iter().zip(back.iter()) {
                prop_assert!((orig - rec).abs() < 1e-6 * (1.0 + orig.abs()));
            }
        }
    }

    #[test]
    fn geodesic_endpoints_and_monotonicity(
        a in positive_vec(4),
        b in positive_vec(4),
    ) {
        let mut interp = GeodesicInterpolator::new(ItakuraSaito, &a, &b);
        let start = interp.at(0.0).to_vec();
        let end = interp.at(1.0).to_vec();
        for i in 0..4 {
            prop_assert!((start[i] - a[i]).abs() < 1e-6 * (1.0 + a[i].abs()));
            prop_assert!((end[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()));
        }
        // Divergence to the θ=1 endpoint decreases monotonically (Cayton's lemma).
        let mut prev = f64::INFINITY;
        for step in 0..=8 {
            let theta = step as f64 / 8.0;
            let d = interp.divergence_to(theta, &b);
            prop_assert!(d <= prev + 1e-6 * (1.0 + prev.abs().min(1e12)));
            prev = d;
        }
    }

    #[test]
    fn query_components_bound_reconstruction(
        x in positive_vec(10),
        y in positive_vec(10),
    ) {
        // The Cauchy upper bound assembled from the transform components must
        // dominate the exact divergence (Theorem 1 of the paper).
        fn check<B: DecomposableBregman>(b: &B, x: &[f64], y: &[f64]) -> (f64, f64) {
            let (alpha_x, gamma_x) = b.point_components(x);
            let (alpha_y, beta_yy, delta_y) = b.query_components(y);
            let ub = alpha_x + alpha_y + beta_yy + (gamma_x * delta_y).sqrt();
            (b.divergence(x, y), ub)
        }
        for (exact, ub) in [
            check(&SquaredEuclidean, &x, &y),
            check(&ItakuraSaito, &x, &y),
            check(&Exponential, &x, &y),
        ] {
            prop_assert!(exact <= ub + 1e-7 * (1.0 + ub.abs()), "exact={exact} ub={ub}");
        }
    }

    #[test]
    fn dataset_projection_preserves_rows(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..10.0, 6), 1..20),
    ) {
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let proj = ds.project(&[5, 3, 1]).unwrap();
        prop_assert_eq!(proj.len(), ds.len());
        for i in 0..ds.len() {
            let orig = ds.row(i);
            let p = proj.row(i);
            prop_assert_eq!(p, &[orig[5], orig[3], orig[1]]);
        }
    }
}
