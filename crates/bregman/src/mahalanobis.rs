//! Squared Mahalanobis distance as a (non-decomposable) Bregman divergence.
//!
//! Generator `f(x) = ½ xᵀ Q x` for a symmetric positive-definite matrix `Q`,
//! giving `D_f(x, y) = ½ (x − y)ᵀ Q (x − y)`. With `Q = I` this reduces to
//! half the squared Euclidean distance. Because the generator couples
//! dimensions through `Q`, this divergence is not decomposable and is only
//! usable with the flat indexes (linear scan, BB-tree, VA-file on a
//! diagonal `Q`), not with the partitioned BrePartition pipeline — unless
//! `Q` is diagonal, in which case [`SquaredMahalanobis::try_into_diagonal`]
//! exposes the per-dimension weights so callers can fall back to a weighted
//! decomposable form.

use crate::divergence::Divergence;
use crate::error::{BregmanError, Result};

/// Squared Mahalanobis distance `½ (x−y)ᵀ Q (x−y)` with a symmetric
/// positive-definite matrix `Q` stored in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredMahalanobis {
    dim: usize,
    /// Row-major `dim × dim` matrix.
    q: Vec<f64>,
}

impl SquaredMahalanobis {
    /// Build from a row-major `dim × dim` matrix.
    ///
    /// Validates shape, symmetry (within `1e-9`) and positive diagonal; a
    /// full positive-definiteness check (Cholesky) is performed as well so
    /// that downstream code can rely on `D ≥ 0`.
    pub fn new(dim: usize, q: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(BregmanError::Empty("Mahalanobis dimension"));
        }
        if q.len() != dim * dim {
            return Err(BregmanError::InvalidMatrix(format!(
                "expected {} entries for a {dim}x{dim} matrix, got {}",
                dim * dim,
                q.len()
            )));
        }
        for i in 0..dim {
            for j in (i + 1)..dim {
                let a = q[i * dim + j];
                let b = q[j * dim + i];
                if (a - b).abs() > 1e-9 * (1.0 + a.abs().max(b.abs())) {
                    return Err(BregmanError::InvalidMatrix(format!(
                        "matrix is not symmetric at ({i},{j}): {a} vs {b}"
                    )));
                }
            }
        }
        let me = Self { dim, q };
        if !me.is_positive_definite() {
            return Err(BregmanError::InvalidMatrix("matrix is not positive definite".to_string()));
        }
        Ok(me)
    }

    /// The identity-matrix instance (half squared Euclidean distance).
    pub fn identity(dim: usize) -> Result<Self> {
        let mut q = vec![0.0; dim * dim];
        for i in 0..dim {
            q[i * dim + i] = 1.0;
        }
        Self::new(dim, q)
    }

    /// Build from a diagonal of positive weights.
    pub fn diagonal(weights: &[f64]) -> Result<Self> {
        let dim = weights.len();
        let mut q = vec![0.0; dim * dim];
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(BregmanError::InvalidMatrix(format!(
                    "diagonal weight {w} at index {i} must be positive"
                )));
            }
            q[i * dim + i] = w;
        }
        Self::new(dim, q)
    }

    /// Dimensionality of the matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// If `Q` is diagonal, return the per-dimension weights; otherwise `None`.
    pub fn try_into_diagonal(&self) -> Option<Vec<f64>> {
        let mut weights = Vec::with_capacity(self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let v = self.q[i * self.dim + j];
                if i != j && v.abs() > 1e-12 {
                    return None;
                }
                if i == j {
                    weights.push(v);
                }
            }
        }
        Some(weights)
    }

    /// The naive prepared-query fallback: because `Q` couples dimensions,
    /// the divergence does not decompose per coordinate, so the returned
    /// [`PreparedQuery`](crate::kernel::PreparedQuery) re-evaluates the full
    /// quadratic form per candidate (and ignores any tabulated `Φ(x)`).
    /// Exists so Mahalanobis call sites share the prepared-kernel code path
    /// used by the decomposable divergences.
    pub fn prepare_query(&self, query: &[f64]) -> crate::kernel::PreparedQuery {
        crate::kernel::PreparedQuery::naive(Box::new(self.clone()), query)
    }

    /// Gradient `∇f(y) = Q y`.
    pub fn gradient(&self, y: &[f64]) -> Vec<f64> {
        debug_assert_eq!(y.len(), self.dim);
        self.q
            .chunks_exact(self.dim)
            .map(|row| row.iter().zip(y.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    fn is_positive_definite(&self) -> bool {
        // In-place Cholesky factorization attempt on a copy.
        let n = self.dim;
        let mut a = self.q.clone();
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= a[i * n + k] * a[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return false;
                    }
                    a[i * n + j] = sum.sqrt();
                } else {
                    a[i * n + j] = sum / a[j * n + j];
                }
            }
        }
        true
    }
}

impl Divergence for SquaredMahalanobis {
    fn name(&self) -> &'static str {
        "Squared Mahalanobis"
    }

    fn divergence(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        debug_assert_eq!(y.len(), self.dim);
        let n = self.dim;
        let mut acc = 0.0;
        for i in 0..n {
            let di = x[i] - y[i];
            let row = &self.q[i * n..(i + 1) * n];
            let mut inner = 0.0;
            for j in 0..n {
                inner += row[j] * (x[j] - y[j]);
            }
            acc += di * inner;
        }
        0.5 * acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_reduces_to_half_squared_euclidean() {
        let m = SquaredMahalanobis::identity(3).unwrap();
        let x = [1.0, 2.0, 3.0];
        let y = [0.0, 0.0, 0.0];
        assert!((m.divergence(&x, &y) - 0.5 * 14.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square_and_asymmetric() {
        assert!(SquaredMahalanobis::new(2, vec![1.0, 0.0, 0.0]).is_err());
        assert!(SquaredMahalanobis::new(2, vec![1.0, 0.5, -0.5, 1.0]).is_err());
    }

    #[test]
    fn rejects_non_positive_definite() {
        // Eigenvalues 3 and -1: not PD.
        let q = vec![1.0, 2.0, 2.0, 1.0];
        assert!(SquaredMahalanobis::new(2, q).is_err());
    }

    #[test]
    fn diagonal_weights_roundtrip() {
        let m = SquaredMahalanobis::diagonal(&[2.0, 3.0]).unwrap();
        assert_eq!(m.try_into_diagonal(), Some(vec![2.0, 3.0]));
        let full = SquaredMahalanobis::new(2, vec![1.0, 0.2, 0.2, 1.0]).unwrap();
        assert_eq!(full.try_into_diagonal(), None);
    }

    #[test]
    fn diagonal_rejects_non_positive_weight() {
        assert!(SquaredMahalanobis::diagonal(&[1.0, 0.0]).is_err());
        assert!(SquaredMahalanobis::diagonal(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn non_negative_and_zero_at_equality() {
        let m = SquaredMahalanobis::new(2, vec![2.0, 0.5, 0.5, 1.0]).unwrap();
        let x = [1.0, -1.0];
        let y = [0.5, 2.0];
        assert!(m.divergence(&x, &y) > 0.0);
        assert!(m.divergence(&x, &x).abs() < 1e-15);
    }

    #[test]
    fn gradient_is_qy() {
        let m = SquaredMahalanobis::new(2, vec![2.0, 0.5, 0.5, 1.0]).unwrap();
        let g = m.gradient(&[1.0, 2.0]);
        assert!((g[0] - 3.0).abs() < 1e-12);
        assert!((g[1] - 2.5).abs() < 1e-12);
    }
}
