//! Exponential distance.
//!
//! Generator `φ(t) = e^t`, giving
//! `D_f(x, y) = Σ ( e^{x_j} − (x_j − y_j + 1) e^{y_j} )`.
//! The paper introduces this divergence (named "exponential distance", ED in
//! Table 4) and uses it for the Audio, Deep, SIFT and Normal datasets.

use crate::divergence::{decomposable_divergence, DecomposableBregman, Divergence};

/// Exponential distance, `φ(t) = e^t`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exponential;

impl Divergence for Exponential {
    fn name(&self) -> &'static str {
        "Exponential"
    }

    #[inline]
    fn divergence(&self, x: &[f64], y: &[f64]) -> f64 {
        decomposable_divergence(self, x, y)
    }
}

impl DecomposableBregman for Exponential {
    #[inline]
    fn phi(&self, t: f64) -> f64 {
        t.exp()
    }

    #[inline]
    fn phi_prime(&self, t: f64) -> f64 {
        t.exp()
    }

    #[inline]
    fn phi_prime_inv(&self, s: f64) -> f64 {
        s.ln()
    }

    #[inline]
    fn in_domain(&self, t: f64) -> bool {
        // exp overflows around 709; keep arguments in a range where the
        // divergence stays finite in double precision.
        t.is_finite() && t.abs() < 700.0
    }

    fn domain_anchor(&self) -> f64 {
        0.0
    }

    /// `e^x − (x − y + 1) e^y`, matching the closed form in the paper.
    #[inline]
    fn scalar_divergence(&self, x: f64, y: f64) -> f64 {
        x.exp() - (x - y + 1.0) * y.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_generic_formula() {
        let ed = Exponential;
        for &(x, y) in &[(0.0, 1.0), (-2.0, 3.0), (1.5, 1.5), (4.0, -4.0)] {
            let generic = ed.phi(x) - ed.phi(y) - ed.phi_prime(y) * (x - y);
            assert!((ed.scalar_divergence(x, y) - generic).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_at_equality_positive_elsewhere() {
        let ed = Exponential;
        assert!(ed.scalar_divergence(0.7, 0.7).abs() < 1e-12);
        assert!(ed.scalar_divergence(0.0, 1.0) > 0.0);
        assert!(ed.scalar_divergence(1.0, 0.0) > 0.0);
    }

    #[test]
    fn asymmetric() {
        let ed = Exponential;
        let a = ed.divergence(&[2.0, 0.0], &[0.0, 0.0]);
        let b = ed.divergence(&[0.0, 0.0], &[2.0, 0.0]);
        assert!((a - b).abs() > 1e-6);
    }

    #[test]
    fn dual_map_roundtrip() {
        let ed = Exponential;
        for t in [-5.0, 0.0, 1.0, 6.0] {
            assert!((ed.phi_prime_inv(ed.phi_prime(t)) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn domain_excludes_overflowing_values() {
        assert!(!Exponential.in_domain(1e10));
        assert!(Exponential.in_domain(10.0));
    }
}
