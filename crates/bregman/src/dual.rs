//! Geodesic interpolation in the dual (gradient) space.
//!
//! For a decomposable generator, the curve
//!
//! ```text
//! x_θ = ∇f*( (1 − θ) ∇f(a) + θ ∇f(b) ),   θ ∈ [0, 1]
//! ```
//!
//! connects `a` (θ = 0) to `b` (θ = 1) and is the curve along which Cayton's
//! BB-tree projection performs its bisection search: the divergence to the
//! ball centre decreases monotonically in θ while the divergence to the query
//! increases, so the point where the curve crosses the ball surface gives the
//! exact lower bound on the divergence from any point inside the ball to the
//! query.
//!
//! [`GeodesicInterpolator`] caches the dual coordinates of the two endpoints
//! so repeated evaluations during the bisection reuse the `∇f` computations.

use crate::divergence::DecomposableBregman;

/// Caches the dual coordinates of two endpoints and evaluates points on the
/// dual geodesic between them.
#[derive(Debug, Clone)]
pub struct GeodesicInterpolator<B: DecomposableBregman> {
    divergence: B,
    dual_a: Vec<f64>,
    dual_b: Vec<f64>,
    scratch: Vec<f64>,
}

impl<B: DecomposableBregman> GeodesicInterpolator<B> {
    /// Create an interpolator between `a` (θ = 0) and `b` (θ = 1).
    pub fn new(divergence: B, a: &[f64], b: &[f64]) -> Self {
        assert_eq!(a.len(), b.len(), "geodesic endpoints must share a dimension");
        let dual_a = divergence.to_dual(a);
        let dual_b = divergence.to_dual(b);
        let scratch = vec![0.0; a.len()];
        Self { divergence, dual_a, dual_b, scratch }
    }

    /// Dimensionality of the endpoints.
    pub fn dim(&self) -> usize {
        self.dual_a.len()
    }

    /// Evaluate the primal-space point at parameter `theta`, writing into the
    /// internal scratch buffer and returning a reference to it.
    pub fn at(&mut self, theta: f64) -> &[f64] {
        let t = theta.clamp(0.0, 1.0);
        for i in 0..self.dual_a.len() {
            let dual = (1.0 - t) * self.dual_a[i] + t * self.dual_b[i];
            self.scratch[i] = self.divergence.phi_prime_inv(dual);
        }
        &self.scratch
    }

    /// Evaluate the point at `theta` into a caller-provided buffer.
    pub fn at_into(&self, theta: f64, out: &mut Vec<f64>) {
        let t = theta.clamp(0.0, 1.0);
        out.clear();
        out.reserve(self.dual_a.len());
        for i in 0..self.dual_a.len() {
            let dual = (1.0 - t) * self.dual_a[i] + t * self.dual_b[i];
            out.push(self.divergence.phi_prime_inv(dual));
        }
    }

    /// Divergence from the point at `theta` to an arbitrary reference point
    /// (`D_f(x_θ, reference)`).
    pub fn divergence_to(&mut self, theta: f64, reference: &[f64]) -> f64 {
        let div = self.divergence.clone();
        let point = self.at(theta);
        div.divergence(point, reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::Divergence;
    use crate::{Exponential, ItakuraSaito, SquaredEuclidean};

    #[test]
    fn endpoints_are_recovered() {
        let a = [1.0, 2.0, 0.5];
        let b = [3.0, 0.25, 4.0];
        let mut g = GeodesicInterpolator::new(ItakuraSaito, &a, &b);
        let at0 = g.at(0.0).to_vec();
        let at1 = g.at(1.0).to_vec();
        for i in 0..3 {
            assert!((at0[i] - a[i]).abs() < 1e-9);
            assert!((at1[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn squared_euclidean_geodesic_is_straight_line() {
        let a = [0.0, 0.0];
        let b = [2.0, 4.0];
        let mut g = GeodesicInterpolator::new(SquaredEuclidean, &a, &b);
        let mid = g.at(0.5).to_vec();
        assert!((mid[0] - 1.0).abs() < 1e-12);
        assert!((mid[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn divergence_to_endpoint_is_monotone_along_curve() {
        let a = [0.2, 1.0, 3.0];
        let b = [2.0, 0.4, 1.0];
        let mut g = GeodesicInterpolator::new(Exponential, &a, &b);
        // D(x_θ, b) should decrease as θ goes 0 → 1.
        let mut prev = f64::INFINITY;
        for step in 0..=10 {
            let theta = step as f64 / 10.0;
            let d = g.divergence_to(theta, &b);
            assert!(d <= prev + 1e-9, "θ={theta}: {d} > {prev}");
            prev = d;
        }
        assert!(prev.abs() < 1e-9);
    }

    #[test]
    fn at_into_matches_at() {
        let a = [0.5, 0.5];
        let b = [2.0, 8.0];
        let mut g = GeodesicInterpolator::new(ItakuraSaito, &a, &b);
        let inline = g.at(0.3).to_vec();
        let mut buf = Vec::new();
        g.at_into(0.3, &mut buf);
        for (x, y) in inline.iter().zip(buf.iter()) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn theta_is_clamped() {
        let a = [1.0];
        let b = [2.0];
        let mut g = GeodesicInterpolator::new(SquaredEuclidean, &a, &b);
        assert!((g.at(-3.0)[0] - 1.0).abs() < 1e-12);
        assert!((g.at(7.0)[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interpolated_point_divergence_never_exceeds_endpoint_divergence() {
        // For any θ, D(x_θ, a) ≤ D(b, a): the geodesic stays "between" the
        // endpoints in divergence terms.
        let a = [0.5, 1.5, 2.5];
        let b = [4.0, 0.3, 1.0];
        let mut g = GeodesicInterpolator::new(ItakuraSaito, &a, &b);
        let total = ItakuraSaito.divergence(&b, &a);
        for step in 0..=20 {
            let theta = step as f64 / 20.0;
            let d = g.divergence_to(theta, &a);
            assert!(d <= total + 1e-9);
        }
    }
}
