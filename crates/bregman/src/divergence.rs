//! The divergence traits.
//!
//! [`Divergence`] is the minimal, object-safe interface used by indexes that
//! only need to evaluate distances (BB-tree pruning, refinement). The
//! [`DecomposableBregman`] trait exposes the scalar generator `φ`, its
//! derivative and the inverse of the derivative, from which every vector
//! level operation needed by BrePartition (gradients, dual coordinates,
//! geodesic interpolation, partial sums for the Cauchy bound) is derived.

use crate::error::{BregmanError, Result};

/// Minimal divergence interface: evaluate `D_f(x, y)`.
///
/// Implementations must guarantee `D_f(x, x) = 0` and `D_f(x, y) ≥ 0` for all
/// in-domain arguments. Symmetry and the triangle inequality are *not*
/// required — Bregman divergences generally satisfy neither.
pub trait Divergence: Send + Sync {
    /// A short human-readable name, e.g. `"Itakura-Saito"`.
    fn name(&self) -> &'static str;

    /// Evaluate the divergence from `x` to `y` (first argument convention as
    /// in the paper: `D_f(x, y)` with `x` a data point and `y` the query).
    ///
    /// Panics in debug builds when lengths differ; use
    /// [`Divergence::try_divergence`] for checked evaluation.
    fn divergence(&self, x: &[f64], y: &[f64]) -> f64;

    /// Checked evaluation, returning an error on dimension mismatch or a
    /// domain violation detectable without evaluating `φ` (NaN result).
    fn try_divergence(&self, x: &[f64], y: &[f64]) -> Result<f64> {
        if x.len() != y.len() {
            return Err(BregmanError::DimensionMismatch { left: x.len(), right: y.len() });
        }
        let d = self.divergence(x, y);
        if d.is_nan() {
            return Err(BregmanError::OutOfDomain { divergence: self.name(), value: f64::NAN });
        }
        Ok(d)
    }

    /// Whether every coordinate of `x` lies in the domain of the generator.
    fn in_domain_vec(&self, x: &[f64]) -> bool {
        x.iter().all(|v| v.is_finite())
    }
}

/// A decomposable (separable) Bregman divergence defined by a scalar
/// generator `φ`, with `f(x) = Σ_j φ(x_j)`.
///
/// The vector-level operations used throughout the repository are provided as
/// default methods and only require the three scalar functions plus a domain
/// predicate. The inverse derivative [`DecomposableBregman::phi_prime_inv`]
/// is the scalar Legendre-dual map used for geodesic interpolation inside
/// Bregman-ball projection.
pub trait DecomposableBregman: Divergence + Clone {
    /// Scalar generator `φ(t)`.
    fn phi(&self, t: f64) -> f64;

    /// Derivative `φ'(t)`.
    fn phi_prime(&self, t: f64) -> f64;

    /// Inverse of the derivative, `(φ')⁻¹(s)`, defined on the image of `φ'`.
    fn phi_prime_inv(&self, s: f64) -> f64;

    /// Whether `t` is inside the (open) domain of `φ`.
    fn in_domain(&self, t: f64) -> bool {
        t.is_finite()
    }

    /// A representative value strictly inside the domain, used by tests and
    /// by quantizers that need to clamp cell corners into the domain.
    fn domain_anchor(&self) -> f64 {
        1.0
    }

    /// Scalar divergence `d_φ(x, y) = φ(x) − φ(y) − φ'(y)(x − y)`.
    #[inline]
    fn scalar_divergence(&self, x: f64, y: f64) -> f64 {
        self.phi(x) - self.phi(y) - self.phi_prime(y) * (x - y)
    }

    /// Vector generator value `f(x) = Σ_j φ(x_j)`.
    #[inline]
    fn f(&self, x: &[f64]) -> f64 {
        x.iter().map(|&v| self.phi(v)).sum()
    }

    /// Gradient `∇f(y)` written into `out` (resized as needed).
    fn gradient_into(&self, y: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(y.iter().map(|&v| self.phi_prime(v)));
    }

    /// Gradient `∇f(y)` as a fresh vector.
    fn gradient(&self, y: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(y.len());
        self.gradient_into(y, &mut out);
        out
    }

    /// Dual (gradient-space) coordinates of `x`: `∇f(x)`.
    fn to_dual(&self, x: &[f64]) -> Vec<f64> {
        self.gradient(x)
    }

    /// Primal coordinates of a dual point: `(∇f)⁻¹(s)` applied element-wise.
    // Named to pair with `to_dual`; it maps a point, it does not construct a
    // divergence, so the `from_*` constructor convention does not apply.
    #[allow(clippy::wrong_self_convention)]
    fn from_dual(&self, s: &[f64]) -> Vec<f64> {
        s.iter().map(|&v| self.phi_prime_inv(v)).collect()
    }

    /// The Cauchy-bound components of a data point over one subspace:
    /// `(α_x, γ_x) = (Σ φ(x_j), Σ x_j²)`.
    #[inline]
    fn point_components(&self, x: &[f64]) -> (f64, f64) {
        let mut alpha = 0.0;
        let mut gamma = 0.0;
        for &v in x {
            alpha += self.phi(v);
            gamma += v * v;
        }
        (alpha, gamma)
    }

    /// The Cauchy-bound components of a query point over one subspace:
    /// `(α_y, β_yy, δ_y) = (−Σ φ(y_j), Σ y_j φ'(y_j), Σ φ'(y_j)²)`.
    #[inline]
    fn query_components(&self, y: &[f64]) -> (f64, f64, f64) {
        let mut alpha = 0.0;
        let mut beta_yy = 0.0;
        let mut delta = 0.0;
        for &v in y {
            let g = self.phi_prime(v);
            alpha -= self.phi(v);
            beta_yy += v * g;
            delta += g * g;
        }
        (alpha, beta_yy, delta)
    }

    /// Hoist the query-side work of the decomposition
    /// `D_φ(x, q) = Φ(x) + c_q − ⟨∇φ(q), x⟩` into a
    /// [`PreparedQuery`](crate::kernel::PreparedQuery): `φ`/`φ'` are
    /// evaluated over `query` once, and every subsequent candidate distance
    /// is a single dot product (see [`crate::kernel`]).
    fn prepare_query(&self, query: &[f64]) -> crate::kernel::PreparedQuery
    where
        Self: Sized,
    {
        crate::kernel::PreparedQuery::decompose(self, query)
    }

    /// Whether this divergence is *cumulative across partitions*, i.e. the
    /// divergence of a concatenation equals the sum of the partition
    /// divergences. True for every decomposable divergence whose generator
    /// does not couple dimensions through normalization; the paper excludes
    /// the (normalized) KL-divergence on these grounds.
    fn cumulative_across_partitions(&self) -> bool {
        true
    }
}

/// Evaluate a decomposable divergence over slices (free function used by the
/// blanket `Divergence` implementations of the concrete generators).
#[inline]
pub(crate) fn decomposable_divergence<B: DecomposableBregman>(b: &B, x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "divergence operands must have equal length");
    let mut acc = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        acc += b.scalar_divergence(xi, yi);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, GeneralizedI, ItakuraSaito, SquaredEuclidean};

    type DivergenceFn = Box<dyn Fn(&[f64], &[f64]) -> f64>;

    fn all_decomposable() -> Vec<DivergenceFn> {
        vec![
            Box::new(|x, y| SquaredEuclidean.divergence(x, y)),
            Box::new(|x, y| ItakuraSaito.divergence(x, y)),
            Box::new(|x, y| Exponential.divergence(x, y)),
            Box::new(|x, y| GeneralizedI.divergence(x, y)),
        ]
    }

    #[test]
    fn identity_of_indiscernibles() {
        let x = [0.5, 1.0, 2.5, 3.0];
        for d in all_decomposable() {
            let v = d(&x, &x);
            assert!(v.abs() < 1e-12, "D(x,x) should be 0, got {v}");
        }
    }

    #[test]
    fn non_negative_on_positive_orthant() {
        let xs = [vec![0.5, 1.0, 2.5], vec![1.0, 1.0, 1.0], vec![3.0, 0.25, 7.5]];
        for d in all_decomposable() {
            for x in &xs {
                for y in &xs {
                    let v = d(x, y);
                    assert!(v >= -1e-12, "divergence must be non-negative, got {v}");
                }
            }
        }
    }

    #[test]
    fn try_divergence_rejects_mismatch() {
        let e = SquaredEuclidean.try_divergence(&[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(e, BregmanError::DimensionMismatch { left: 2, right: 1 });
    }

    #[test]
    fn gradient_matches_phi_prime() {
        let isd = ItakuraSaito;
        let y = [0.5, 2.0, 4.0];
        let g = isd.gradient(&y);
        for (gi, yi) in g.iter().zip(y.iter()) {
            assert!((gi - isd.phi_prime(*yi)).abs() < 1e-15);
        }
    }

    #[test]
    fn dual_roundtrip() {
        let divs = [0.3, 1.0, 2.0, 5.5];
        let isd = ItakuraSaito;
        let dual = isd.to_dual(&divs);
        let back = isd.from_dual(&dual);
        for (a, b) in divs.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn point_and_query_components_reconstruct_divergence_bound_pieces() {
        // α_x + α_y + β_yy − Σ x φ'(y) must equal the exact divergence.
        let se = SquaredEuclidean;
        let x = [1.0, -2.0, 3.0];
        let y = [0.5, 0.5, 0.5];
        let (alpha_x, _gamma_x) = se.point_components(&x);
        let (alpha_y, beta_yy, _delta_y) = se.query_components(&y);
        let beta_xy: f64 = x.iter().zip(y.iter()).map(|(&xi, &yi)| -xi * se.phi_prime(yi)).sum();
        let reconstructed = alpha_x + alpha_y + beta_yy + beta_xy;
        let exact = se.divergence(&x, &y);
        assert!((reconstructed - exact).abs() < 1e-12);
    }

    #[test]
    fn gradient_into_reuses_buffer() {
        let se = SquaredEuclidean;
        let mut buf = Vec::with_capacity(8);
        se.gradient_into(&[1.0, 2.0], &mut buf);
        assert_eq!(buf.len(), 2);
        se.gradient_into(&[3.0], &mut buf);
        assert_eq!(buf.len(), 1);
    }
}
