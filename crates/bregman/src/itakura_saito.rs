//! Itakura-Saito distance (Burg entropy generator).
//!
//! Generator `φ(t) = −ln t` on `t > 0`, giving
//! `D_f(x, y) = Σ ( x_j / y_j − ln(x_j / y_j) − 1 )`.
//! Widely used for speech spectra; the "ISD" measure of the Fonts and
//! Uniform datasets in the paper's evaluation.

use crate::divergence::{decomposable_divergence, DecomposableBregman, Divergence};

/// Itakura-Saito distance, `φ(t) = −ln t`, domain `t > 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItakuraSaito;

impl Divergence for ItakuraSaito {
    fn name(&self) -> &'static str {
        "Itakura-Saito"
    }

    #[inline]
    fn divergence(&self, x: &[f64], y: &[f64]) -> f64 {
        decomposable_divergence(self, x, y)
    }

    fn in_domain_vec(&self, x: &[f64]) -> bool {
        x.iter().all(|&v| v.is_finite() && v > 0.0)
    }
}

impl DecomposableBregman for ItakuraSaito {
    #[inline]
    fn phi(&self, t: f64) -> f64 {
        -t.ln()
    }

    #[inline]
    fn phi_prime(&self, t: f64) -> f64 {
        -1.0 / t
    }

    #[inline]
    fn phi_prime_inv(&self, s: f64) -> f64 {
        -1.0 / s
    }

    #[inline]
    fn in_domain(&self, t: f64) -> bool {
        t.is_finite() && t > 0.0
    }

    fn domain_anchor(&self) -> f64 {
        1.0
    }

    /// Specialized ratio form `x/y − ln(x/y) − 1`.
    #[inline]
    fn scalar_divergence(&self, x: f64, y: f64) -> f64 {
        let r = x / y;
        r - r.ln() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_at_equality_and_positive_elsewhere() {
        let isd = ItakuraSaito;
        assert!(isd.scalar_divergence(2.0, 2.0).abs() < 1e-15);
        assert!(isd.scalar_divergence(2.0, 1.0) > 0.0);
        assert!(isd.scalar_divergence(1.0, 2.0) > 0.0);
    }

    #[test]
    fn asymmetric() {
        let isd = ItakuraSaito;
        let x = [4.0, 1.0];
        let y = [1.0, 4.0];
        let a = isd.divergence(&x, &y);
        let b = isd.divergence(&y, &x);
        // The ratio form is permutation-symmetric here, so use unequal vectors.
        let x2 = [4.0, 4.0];
        let y2 = [1.0, 2.0];
        let a2 = isd.divergence(&x2, &y2);
        let b2 = isd.divergence(&y2, &x2);
        assert!((a - b).abs() < 1e-12); // this particular pair is symmetric by construction
        assert!((a2 - b2).abs() > 1e-6, "ISD should be asymmetric in general");
    }

    #[test]
    fn matches_generic_formula() {
        let isd = ItakuraSaito;
        for &(x, y) in &[(0.5, 2.0), (3.0, 0.25), (1.0, 1.0)] {
            let generic = isd.phi(x) - isd.phi(y) - isd.phi_prime(y) * (x - y);
            assert!((isd.scalar_divergence(x, y) - generic).abs() < 1e-12);
        }
    }

    #[test]
    fn domain_excludes_non_positive() {
        let isd = ItakuraSaito;
        assert!(!isd.in_domain(0.0));
        assert!(!isd.in_domain(-1.0));
        assert!(isd.in_domain(1e-9));
        assert!(!isd.in_domain_vec(&[1.0, 0.0]));
        assert!(isd.in_domain_vec(&[1.0, 2.0]));
    }

    #[test]
    fn dual_map_roundtrip() {
        let isd = ItakuraSaito;
        for t in [0.1, 1.0, 3.5, 100.0] {
            assert!((isd.phi_prime_inv(isd.phi_prime(t)) - t).abs() < 1e-9);
        }
    }
}
