//! Flat dense dataset container and small vector helpers.
//!
//! Every index in this repository operates over a [`DenseDataset`]: `n`
//! points of dimensionality `d` stored contiguously in a single `Vec<f64>`
//! (row-major). Points are addressed by [`PointId`], which is a plain
//! `u32`-sized newtype so candidate lists stay compact.

use crate::error::{BregmanError, Result};

/// Identifier of a point inside a [`DenseDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for PointId {
    fn from(v: usize) -> Self {
        PointId(u32::try_from(v).expect("dataset larger than u32::MAX points"))
    }
}

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A dense, row-major collection of `n` points of dimensionality `d`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseDataset {
    dim: usize,
    data: Vec<f64>,
}

impl DenseDataset {
    /// Build a dataset from a flat row-major buffer.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(BregmanError::Empty("dimensionality"));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(BregmanError::RaggedData { len: data.len(), dim });
        }
        Ok(Self { dim, data })
    }

    /// Build a dataset from a list of equally sized rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let dim = rows.first().map(|r| r.len()).ok_or(BregmanError::Empty("rows"))?;
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(BregmanError::DimensionMismatch { left: dim, right: row.len() });
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(dim, data)
    }

    /// An empty dataset of the given dimensionality.
    pub fn empty(dim: usize) -> Result<Self> {
        Self::from_flat(dim, Vec::new())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow a point by id.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let i = id.index();
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow a point by raw index.
    #[inline]
    pub fn row(&self, index: usize) -> &[f64] {
        &self.data[index * self.dim..(index + 1) * self.dim]
    }

    /// Append a point, returning its id.
    pub fn push(&mut self, point: &[f64]) -> Result<PointId> {
        if point.len() != self.dim {
            return Err(BregmanError::DimensionMismatch { left: self.dim, right: point.len() });
        }
        let id = PointId::from(self.len());
        self.data.extend_from_slice(point);
        Ok(id)
    }

    /// Iterate over `(id, point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> + '_ {
        (0..self.len()).map(move |i| (PointId::from(i), self.row(i)))
    }

    /// The underlying flat buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Project every point onto the given dimension indices, producing a new
    /// dataset of dimensionality `dims.len()` (used to build the partitioned
    /// subspace datasets).
    pub fn project(&self, dims: &[usize]) -> Result<DenseDataset> {
        if dims.is_empty() {
            return Err(BregmanError::Empty("projection dimensions"));
        }
        for &d in dims {
            if d >= self.dim {
                return Err(BregmanError::DimensionMismatch { left: self.dim, right: d });
            }
        }
        let mut data = Vec::with_capacity(self.len() * dims.len());
        for i in 0..self.len() {
            let row = self.row(i);
            for &d in dims {
                data.push(row[d]);
            }
        }
        DenseDataset::from_flat(dims.len(), data)
    }

    /// Gather a sub-slice of a single point at the given dimension indices
    /// into `out` (used to project query points without allocating a full
    /// dataset).
    pub fn gather_into(point: &[f64], dims: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.extend(dims.iter().map(|&d| point[d]));
    }

    /// Column (dimension) values as an iterator (used by PCCP and by the
    /// VA-file quantizer training).
    pub fn column(&self, dim_index: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(dim_index < self.dim, "column index out of range");
        (0..self.len()).map(move |i| self.row(i)[dim_index])
    }

    /// Per-dimension minima and maxima; `None` for an empty dataset.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.row(0).to_vec();
        let mut hi = self.row(0).to_vec();
        for i in 1..self.len() {
            for (j, &v) in self.row(i).iter().enumerate() {
                if v < lo[j] {
                    lo[j] = v;
                }
                if v > hi[j] {
                    hi[j] = v;
                }
            }
        }
        Some((lo, hi))
    }

    /// Take the first `n` points (used by scaled-down experiment sweeps).
    pub fn truncate_points(&self, n: usize) -> DenseDataset {
        let keep = n.min(self.len());
        DenseDataset { dim: self.dim, data: self.data[..keep * self.dim].to_vec() }
    }
}

/// Arithmetic mean of a set of rows selected by `ids` — the right-centroid of
/// a Bregman ball (Banerjee et al.: the minimizer of `Σ D_f(x_i, μ)` over μ
/// is the arithmetic mean for every Bregman divergence).
pub fn mean_of(dataset: &DenseDataset, ids: &[PointId]) -> Vec<f64> {
    let dim = dataset.dim();
    let mut mean = vec![0.0; dim];
    if ids.is_empty() {
        return mean;
    }
    for &id in ids {
        for (m, v) in mean.iter_mut().zip(dataset.point(id)) {
            *m += v;
        }
    }
    let inv = 1.0 / ids.len() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    mean
}

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared L2 norm.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DenseDataset {
        DenseDataset::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]])
            .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.point(PointId(1)), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.row(2), &[7.0, 8.0, 9.0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn from_flat_rejects_ragged() {
        assert!(matches!(
            DenseDataset::from_flat(3, vec![1.0, 2.0]),
            Err(BregmanError::RaggedData { .. })
        ));
        assert!(DenseDataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn from_rows_rejects_mismatched_rows() {
        let err = DenseDataset::from_rows(&[vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, BregmanError::DimensionMismatch { .. }));
        assert!(DenseDataset::from_rows(&[]).is_err());
    }

    #[test]
    fn push_and_iter() {
        let mut ds = DenseDataset::empty(2).unwrap();
        let a = ds.push(&[1.0, 2.0]).unwrap();
        let b = ds.push(&[3.0, 4.0]).unwrap();
        assert_eq!(a, PointId(0));
        assert_eq!(b, PointId(1));
        assert!(ds.push(&[1.0]).is_err());
        let collected: Vec<_> = ds.iter().map(|(id, p)| (id.index(), p.to_vec())).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1].1, vec![3.0, 4.0]);
    }

    #[test]
    fn projection_selects_dimensions_in_order() {
        let ds = small();
        let proj = ds.project(&[2, 0]).unwrap();
        assert_eq!(proj.dim(), 2);
        assert_eq!(proj.point(PointId(0)), &[3.0, 1.0]);
        assert_eq!(proj.point(PointId(2)), &[9.0, 7.0]);
        assert!(ds.project(&[]).is_err());
        assert!(ds.project(&[5]).is_err());
    }

    #[test]
    fn gather_into_matches_projection() {
        let ds = small();
        let mut buf = Vec::new();
        DenseDataset::gather_into(ds.point(PointId(1)), &[2, 0], &mut buf);
        assert_eq!(buf, vec![6.0, 4.0]);
    }

    #[test]
    fn column_and_bounds() {
        let ds = small();
        let col: Vec<f64> = ds.column(1).collect();
        assert_eq!(col, vec![2.0, 5.0, 8.0]);
        let (lo, hi) = ds.bounds().unwrap();
        assert_eq!(lo, vec![1.0, 2.0, 3.0]);
        assert_eq!(hi, vec![7.0, 8.0, 9.0]);
        assert!(DenseDataset::empty(3).unwrap().bounds().is_none());
    }

    #[test]
    fn mean_of_ids_is_arithmetic_mean() {
        let ds = small();
        let mean = mean_of(&ds, &[PointId(0), PointId(2)]);
        assert_eq!(mean, vec![4.0, 5.0, 6.0]);
        assert_eq!(mean_of(&ds, &[]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn truncate_points_keeps_prefix() {
        let ds = small();
        let t = ds.truncate_points(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.point(PointId(1)), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.truncate_points(50).len(), 3);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn point_id_display_and_conversion() {
        let id = PointId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "#7");
    }
}
