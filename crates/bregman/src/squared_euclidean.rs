//! Squared Euclidean distance as a Bregman divergence.
//!
//! Generator `φ(t) = t²`, so `D_f(x, y) = Σ (x_j − y_j)²` (the un-halved
//! convention; the paper's `f(x) = ½ xᵀQx` with `Q = 2I` gives the same
//! value). This is the "ED" measure used for the Audio, Deep, SIFT and
//! Normal datasets in the evaluation.

use crate::divergence::{decomposable_divergence, DecomposableBregman, Divergence};

/// Squared Euclidean distance, `φ(t) = t²`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Divergence for SquaredEuclidean {
    fn name(&self) -> &'static str {
        "Squared Euclidean"
    }

    #[inline]
    fn divergence(&self, x: &[f64], y: &[f64]) -> f64 {
        decomposable_divergence(self, x, y)
    }
}

impl DecomposableBregman for SquaredEuclidean {
    #[inline]
    fn phi(&self, t: f64) -> f64 {
        t * t
    }

    #[inline]
    fn phi_prime(&self, t: f64) -> f64 {
        2.0 * t
    }

    #[inline]
    fn phi_prime_inv(&self, s: f64) -> f64 {
        s / 2.0
    }

    #[inline]
    fn in_domain(&self, t: f64) -> bool {
        t.is_finite()
    }

    fn domain_anchor(&self) -> f64 {
        0.0
    }

    /// Specialized: `d_φ(x, y) = (x − y)²` avoids cancellation.
    #[inline]
    fn scalar_divergence(&self, x: f64, y: f64) -> f64 {
        let d = x - y;
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_squared_l2_norm() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        let expected = 9.0 + 16.0 + 0.0;
        assert!((SquaredEuclidean.divergence(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn symmetric_unlike_general_bregman() {
        let x = [0.0, -1.5, 2.0];
        let y = [1.0, 1.0, 1.0];
        let a = SquaredEuclidean.divergence(&x, &y);
        let b = SquaredEuclidean.divergence(&y, &x);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn scalar_specialization_matches_generic_formula() {
        let se = SquaredEuclidean;
        for &(x, y) in &[(0.0, 1.0), (-2.5, 3.0), (7.0, 7.0)] {
            let generic = se.phi(x) - se.phi(y) - se.phi_prime(y) * (x - y);
            assert!((se.scalar_divergence(x, y) - generic).abs() < 1e-9);
        }
    }

    #[test]
    fn dual_map_roundtrip() {
        let se = SquaredEuclidean;
        for t in [-3.0, 0.0, 1.25, 9.0] {
            assert!((se.phi_prime_inv(se.phi_prime(t)) - t).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_values_allowed() {
        assert!(SquaredEuclidean.in_domain(-5.0));
        assert!(!SquaredEuclidean.in_domain(f64::INFINITY));
    }
}
