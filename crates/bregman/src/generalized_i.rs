//! Generalized I-divergence (unnormalized Kullback-Leibler).
//!
//! Generator `φ(t) = t ln t` on `t > 0`, giving
//! `D_f(x, y) = Σ ( x_j ln(x_j / y_j) − x_j + y_j )`.
//!
//! The *normalized* KL-divergence over probability vectors is explicitly
//! excluded by the paper from the partitioned pipeline because the
//! normalization couples dimensions, so the divergence of a concatenation is
//! not the sum of partition divergences. The unnormalized form implemented
//! here *is* decomposable; [`GeneralizedI::cumulative_across_partitions`]
//! still reports `false` so that the BrePartition builder rejects it exactly
//! as the paper prescribes for KL-style measures, while the divergence
//! remains available to the flat (non-partitioned) indexes.

use crate::divergence::{decomposable_divergence, DecomposableBregman, Divergence};

/// Generalized I-divergence (unnormalized KL), `φ(t) = t ln t`, domain `t > 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneralizedI;

impl Divergence for GeneralizedI {
    fn name(&self) -> &'static str {
        "Generalized I-divergence"
    }

    #[inline]
    fn divergence(&self, x: &[f64], y: &[f64]) -> f64 {
        decomposable_divergence(self, x, y)
    }

    fn in_domain_vec(&self, x: &[f64]) -> bool {
        x.iter().all(|&v| v.is_finite() && v > 0.0)
    }
}

impl DecomposableBregman for GeneralizedI {
    #[inline]
    fn phi(&self, t: f64) -> f64 {
        t * t.ln()
    }

    #[inline]
    fn phi_prime(&self, t: f64) -> f64 {
        t.ln() + 1.0
    }

    #[inline]
    fn phi_prime_inv(&self, s: f64) -> f64 {
        (s - 1.0).exp()
    }

    #[inline]
    fn in_domain(&self, t: f64) -> bool {
        t.is_finite() && t > 0.0
    }

    fn domain_anchor(&self) -> f64 {
        1.0
    }

    /// `x ln(x/y) − x + y`.
    #[inline]
    fn scalar_divergence(&self, x: f64, y: f64) -> f64 {
        x * (x / y).ln() - x + y
    }

    fn cumulative_across_partitions(&self) -> bool {
        // Mirrors the paper's exclusion of KL-style divergences from the
        // partition-filter-refinement pipeline.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_generic_formula() {
        let kl = GeneralizedI;
        for &(x, y) in &[(0.5, 2.0), (3.0, 0.25), (1.0, 1.0)] {
            let generic = kl.phi(x) - kl.phi(y) - kl.phi_prime(y) * (x - y);
            assert!((kl.scalar_divergence(x, y) - generic).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_at_equality_positive_elsewhere() {
        let kl = GeneralizedI;
        assert!(kl.scalar_divergence(0.4, 0.4).abs() < 1e-15);
        assert!(kl.scalar_divergence(0.4, 0.6) > 0.0);
        assert!(kl.scalar_divergence(0.6, 0.4) > 0.0);
    }

    #[test]
    fn excluded_from_partitioning() {
        assert!(!GeneralizedI.cumulative_across_partitions());
    }

    #[test]
    fn dual_map_roundtrip() {
        let kl = GeneralizedI;
        for t in [0.2, 1.0, 4.0] {
            assert!((kl.phi_prime_inv(kl.phi_prime(t)) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn domain_positive_only() {
        assert!(!GeneralizedI.in_domain(0.0));
        assert!(GeneralizedI.in_domain(2.0));
        assert!(!GeneralizedI.in_domain_vec(&[1.0, -1.0]));
    }
}
