//! Runtime-selectable divergence kinds.
//!
//! The experiment harness and the examples choose divergences by name (the
//! paper's Table 4 associates each dataset with either the exponential
//! distance "ED" or the Itakura-Saito distance "ISD"). [`DivergenceKind`]
//! is the cheap, copyable selector; [`DivergenceKind::with_decomposable`]
//! lets generic call sites monomorphize over the concrete generator without
//! dynamic dispatch in the hot path.

use crate::divergence::{DecomposableBregman, Divergence};
use crate::error::{BregmanError, Result};
use crate::{Exponential, GeneralizedI, ItakuraSaito, SquaredEuclidean};

/// Selector for the decomposable divergences shipped with this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceKind {
    /// Squared Euclidean distance (`φ(t) = t²`).
    SquaredEuclidean,
    /// Itakura-Saito distance (`φ(t) = −ln t`), the paper's "ISD".
    ItakuraSaito,
    /// Exponential distance (`φ(t) = e^t`), the paper's "ED".
    Exponential,
    /// Generalized I-divergence / unnormalized KL (`φ(t) = t ln t`).
    GeneralizedI,
}

impl DivergenceKind {
    /// All kinds, in a stable order (useful for exhaustive tests).
    pub const ALL: [DivergenceKind; 4] = [
        DivergenceKind::SquaredEuclidean,
        DivergenceKind::ItakuraSaito,
        DivergenceKind::Exponential,
        DivergenceKind::GeneralizedI,
    ];

    /// Parse the abbreviations used in the paper's Table 4 plus the full
    /// names of the divergences.
    pub fn parse(name: &str) -> Result<Self> {
        let lowered = name.trim().to_ascii_lowercase();
        match lowered.as_str() {
            "ed" | "exp" | "exponential" => Ok(DivergenceKind::Exponential),
            "isd" | "is" | "itakura-saito" | "itakura_saito" | "itakurasaito" => {
                Ok(DivergenceKind::ItakuraSaito)
            }
            "se" | "l2" | "squared-euclidean" | "squared_euclidean" | "squaredeuclidean" => {
                Ok(DivergenceKind::SquaredEuclidean)
            }
            "kl" | "gi" | "generalized-i" | "generalized_i" | "generalizedi" => {
                Ok(DivergenceKind::GeneralizedI)
            }
            _ => Err(BregmanError::InvalidMatrix(format!("unknown divergence name: {name}"))),
        }
    }

    /// The canonical short name (matching the paper's notation where one
    /// exists).
    pub fn short_name(&self) -> &'static str {
        match self {
            DivergenceKind::SquaredEuclidean => "SE",
            DivergenceKind::ItakuraSaito => "ISD",
            DivergenceKind::Exponential => "ED",
            DivergenceKind::GeneralizedI => "GI",
        }
    }

    /// A boxed trait object for call sites that only need [`Divergence`].
    pub fn boxed(&self) -> Box<dyn Divergence> {
        match self {
            DivergenceKind::SquaredEuclidean => Box::new(SquaredEuclidean),
            DivergenceKind::ItakuraSaito => Box::new(ItakuraSaito),
            DivergenceKind::Exponential => Box::new(Exponential),
            DivergenceKind::GeneralizedI => Box::new(GeneralizedI),
        }
    }

    /// Whether data for this divergence must be strictly positive.
    pub fn requires_positive_data(&self) -> bool {
        matches!(self, DivergenceKind::ItakuraSaito | DivergenceKind::GeneralizedI)
    }

    /// Whether the kind may be used with the partitioned BrePartition
    /// pipeline (see [`DecomposableBregman::cumulative_across_partitions`]).
    pub fn supports_partitioning(&self) -> bool {
        match self {
            DivergenceKind::SquaredEuclidean => SquaredEuclidean.cumulative_across_partitions(),
            DivergenceKind::ItakuraSaito => ItakuraSaito.cumulative_across_partitions(),
            DivergenceKind::Exponential => Exponential.cumulative_across_partitions(),
            DivergenceKind::GeneralizedI => GeneralizedI.cumulative_across_partitions(),
        }
    }

    /// Invoke `f` with the concrete generator, monomorphizing the caller.
    pub fn with_decomposable<R>(&self, f: impl FnOnce(&dyn Divergence) -> R) -> R {
        match self {
            DivergenceKind::SquaredEuclidean => f(&SquaredEuclidean),
            DivergenceKind::ItakuraSaito => f(&ItakuraSaito),
            DivergenceKind::Exponential => f(&Exponential),
            DivergenceKind::GeneralizedI => f(&GeneralizedI),
        }
    }

    /// Evaluate the divergence between two slices through the selector.
    pub fn divergence(&self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            DivergenceKind::SquaredEuclidean => SquaredEuclidean.divergence(x, y),
            DivergenceKind::ItakuraSaito => ItakuraSaito.divergence(x, y),
            DivergenceKind::Exponential => Exponential.divergence(x, y),
            DivergenceKind::GeneralizedI => GeneralizedI.divergence(x, y),
        }
    }

    /// The BrePartition data-point components `(α_x, γ_x)` of a subvector
    /// (see [`DecomposableBregman::point_components`]).
    pub fn point_components(&self, x: &[f64]) -> (f64, f64) {
        match self {
            DivergenceKind::SquaredEuclidean => SquaredEuclidean.point_components(x),
            DivergenceKind::ItakuraSaito => ItakuraSaito.point_components(x),
            DivergenceKind::Exponential => Exponential.point_components(x),
            DivergenceKind::GeneralizedI => GeneralizedI.point_components(x),
        }
    }

    /// The BrePartition query components `(α_y, β_yy, δ_y)` of a subvector
    /// (see [`DecomposableBregman::query_components`]).
    pub fn query_components(&self, y: &[f64]) -> (f64, f64, f64) {
        match self {
            DivergenceKind::SquaredEuclidean => SquaredEuclidean.query_components(y),
            DivergenceKind::ItakuraSaito => ItakuraSaito.query_components(y),
            DivergenceKind::Exponential => Exponential.query_components(y),
            DivergenceKind::GeneralizedI => GeneralizedI.query_components(y),
        }
    }

    /// Hoist the query-side work of the decomposed divergence into a
    /// [`PreparedQuery`](crate::kernel::PreparedQuery) (see
    /// [`crate::kernel`]). All four kinds are decomposable, so this always
    /// produces the transcendental-free fast path.
    pub fn prepare_query(&self, query: &[f64]) -> crate::kernel::PreparedQuery {
        let mut out = crate::kernel::PreparedQuery::default();
        self.prepare_query_into(&mut out, query);
        out
    }

    /// Re-prepare an existing [`PreparedQuery`](crate::kernel::PreparedQuery)
    /// in place, reusing its buffers (the batch-serving hot path).
    pub fn prepare_query_into(&self, out: &mut crate::kernel::PreparedQuery, query: &[f64]) {
        match self {
            DivergenceKind::SquaredEuclidean => out.decompose_into(&SquaredEuclidean, query),
            DivergenceKind::ItakuraSaito => out.decompose_into(&ItakuraSaito, query),
            DivergenceKind::Exponential => out.decompose_into(&Exponential, query),
            DivergenceKind::GeneralizedI => out.decompose_into(&GeneralizedI, query),
        }
    }

    /// The generator sum `Φ(x) = Σ_i φ(x_i)` of one point — the per-point
    /// side of the decomposed kernel, tabulated at index-build time.
    pub fn phi_sum(&self, x: &[f64]) -> f64 {
        match self {
            DivergenceKind::SquaredEuclidean => SquaredEuclidean.f(x),
            DivergenceKind::ItakuraSaito => ItakuraSaito.f(x),
            DivergenceKind::Exponential => Exponential.f(x),
            DivergenceKind::GeneralizedI => GeneralizedI.f(x),
        }
    }

    /// Whether every coordinate of `x` lies in the divergence's domain.
    pub fn in_domain_vec(&self, x: &[f64]) -> bool {
        match self {
            DivergenceKind::SquaredEuclidean => Divergence::in_domain_vec(&SquaredEuclidean, x),
            DivergenceKind::ItakuraSaito => Divergence::in_domain_vec(&ItakuraSaito, x),
            DivergenceKind::Exponential => Divergence::in_domain_vec(&Exponential, x),
            DivergenceKind::GeneralizedI => Divergence::in_domain_vec(&GeneralizedI, x),
        }
    }
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_abbreviations() {
        assert_eq!(DivergenceKind::parse("ED").unwrap(), DivergenceKind::Exponential);
        assert_eq!(DivergenceKind::parse("ISD").unwrap(), DivergenceKind::ItakuraSaito);
        assert_eq!(DivergenceKind::parse("l2").unwrap(), DivergenceKind::SquaredEuclidean);
        assert_eq!(DivergenceKind::parse("KL").unwrap(), DivergenceKind::GeneralizedI);
        assert!(DivergenceKind::parse("cosine").is_err());
    }

    #[test]
    fn display_matches_short_name() {
        for kind in DivergenceKind::ALL {
            assert_eq!(kind.to_string(), kind.short_name());
        }
    }

    #[test]
    fn boxed_agrees_with_direct_evaluation() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.5, 2.5, 3.5];
        for kind in DivergenceKind::ALL {
            let via_enum = kind.divergence(&x, &y);
            let via_box = kind.boxed().divergence(&x, &y);
            assert!((via_enum - via_box).abs() < 1e-12);
        }
    }

    #[test]
    fn positivity_requirements() {
        assert!(DivergenceKind::ItakuraSaito.requires_positive_data());
        assert!(DivergenceKind::GeneralizedI.requires_positive_data());
        assert!(!DivergenceKind::Exponential.requires_positive_data());
        assert!(!DivergenceKind::SquaredEuclidean.requires_positive_data());
    }

    #[test]
    fn partitioning_support_matches_paper() {
        assert!(DivergenceKind::SquaredEuclidean.supports_partitioning());
        assert!(DivergenceKind::ItakuraSaito.supports_partitioning());
        assert!(DivergenceKind::Exponential.supports_partitioning());
        assert!(!DivergenceKind::GeneralizedI.supports_partitioning());
    }

    #[test]
    fn name_roundtrip() {
        for kind in DivergenceKind::ALL {
            assert_eq!(DivergenceKind::parse(kind.short_name()).unwrap(), kind);
        }
    }
}
