//! Bregman divergences and the dense-vector primitives used throughout the
//! BrePartition reproduction.
//!
//! A Bregman divergence is defined by a strictly convex, differentiable
//! generator function `f` as
//!
//! ```text
//! D_f(x, y) = f(x) − f(y) − ⟨∇f(y), x − y⟩
//! ```
//!
//! Most generators used in multimedia retrieval are *decomposable*
//! (separable): `f(x) = Σ_j φ(x_j)` for a scalar generator `φ`. Decomposable
//! divergences are the ones the BrePartition bound machinery applies to,
//! because the divergence of a concatenated vector is the sum of the
//! divergences of its parts. This crate provides:
//!
//! * [`DecomposableBregman`] — the scalar-generator trait with derived
//!   vector-level operations (divergence, gradient, dual coordinates,
//!   geodesic interpolation),
//! * [`Divergence`] — the object-safe, possibly non-decomposable divergence
//!   trait (implemented by every decomposable divergence and by
//!   [`mahalanobis::SquaredMahalanobis`]),
//! * concrete generators: [`SquaredEuclidean`], [`ItakuraSaito`],
//!   [`Exponential`], [`GeneralizedI`] (generalized KL),
//!   and the non-decomposable [`SquaredMahalanobis`],
//! * [`DivergenceKind`] — a plain-enum selector that maps names used in the
//!   paper ("ED", "ISD", …) to boxed divergences,
//! * [`kernel`] — prepared-query decomposed divergence kernels: hoist
//!   `φ(q)`, `φ'(q)` out of the candidate loop once per query so each
//!   refinement collapses to one transcendental-free dot product,
//! * [`vector`] — a flat, cache-friendly dense dataset container and small
//!   vector helpers shared by the index crates.
//!
//! # Example
//!
//! ```
//! use bregman::{Divergence, ItakuraSaito};
//!
//! let isd = ItakuraSaito;
//! let x = [1.0, 2.0, 4.0];
//! let y = [1.0, 1.0, 1.0];
//! let d = isd.divergence(&x, &y);
//! assert!(d > 0.0);
//! assert_eq!(isd.divergence(&x, &x), 0.0);
//! ```

// `deny`, not `forbid`: the only sanctioned `unsafe` in this crate is the
// pair of `#[target_feature(enable = "avx2,fma")]` kernel variants in
// `kernel.rs` (runtime-dispatched explicit SIMD), each carrying a scoped
// `allow` and a SAFETY comment. Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod dual;
pub mod error;
pub mod exponential;
pub mod generalized_i;
pub mod itakura_saito;
pub mod kernel;
pub mod kind;
pub mod mahalanobis;
pub mod squared_euclidean;
pub mod vector;

pub use divergence::{DecomposableBregman, Divergence};
pub use dual::GeodesicInterpolator;
pub use error::{BregmanError, Result};
pub use exponential::Exponential;
pub use generalized_i::GeneralizedI;
pub use itakura_saito::ItakuraSaito;
pub use kernel::{KernelScratch, PreparedQuery};
pub use kind::DivergenceKind;
pub use mahalanobis::SquaredMahalanobis;
pub use squared_euclidean::SquaredEuclidean;
pub use vector::{DenseDataset, PointId};
