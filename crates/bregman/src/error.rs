//! Error type shared by the Bregman primitives.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BregmanError>;

/// Errors raised by divergence evaluation and dataset construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BregmanError {
    /// The two vectors have different lengths.
    DimensionMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A coordinate lies outside the domain of the generator function
    /// (for example a non-positive value under Itakura-Saito).
    OutOfDomain {
        /// Name of the divergence whose domain was violated.
        divergence: &'static str,
        /// The offending coordinate value.
        value: f64,
    },
    /// A dataset was built from a flat buffer whose length is not a multiple
    /// of the dimensionality.
    RaggedData {
        /// Buffer length supplied.
        len: usize,
        /// Dimensionality supplied.
        dim: usize,
    },
    /// The requested divergence cannot be used with the partitioned pipeline
    /// (the paper excludes KL-divergence because it is not cumulative after
    /// dimensionality partitioning of its normalized form).
    UnsupportedForPartitioning {
        /// Name of the rejected divergence.
        divergence: &'static str,
    },
    /// A matrix supplied to the Mahalanobis divergence is not square or not
    /// positive definite.
    InvalidMatrix(String),
    /// An empty dataset or empty query batch was supplied.
    Empty(&'static str),
}

impl fmt::Display for BregmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BregmanError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: left={left}, right={right}")
            }
            BregmanError::OutOfDomain { divergence, value } => {
                write!(f, "value {value} outside the domain of {divergence}")
            }
            BregmanError::RaggedData { len, dim } => {
                write!(f, "flat buffer of length {len} is not a multiple of dimension {dim}")
            }
            BregmanError::UnsupportedForPartitioning { divergence } => {
                write!(f, "{divergence} is not cumulative across partitions and cannot be used with BrePartition")
            }
            BregmanError::InvalidMatrix(msg) => write!(f, "invalid matrix: {msg}"),
            BregmanError::Empty(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for BregmanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BregmanError::DimensionMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("4"));

        let e = BregmanError::OutOfDomain { divergence: "Itakura-Saito", value: -1.0 };
        assert!(e.to_string().contains("Itakura-Saito"));

        let e = BregmanError::RaggedData { len: 10, dim: 3 };
        assert!(e.to_string().contains("10"));

        let e = BregmanError::UnsupportedForPartitioning { divergence: "KL" };
        assert!(e.to_string().contains("KL"));

        let e = BregmanError::InvalidMatrix("not square".into());
        assert!(e.to_string().contains("not square"));

        let e = BregmanError::Empty("dataset");
        assert!(e.to_string().contains("dataset"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&BregmanError::Empty("x"));
    }
}
