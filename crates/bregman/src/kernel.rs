//! Prepared-query decomposed divergence kernels.
//!
//! Every decomposable Bregman divergence factors as
//!
//! ```text
//! D_φ(x, q) = Σ_i φ(x_i) − φ(q_i) − φ'(q_i)(x_i − q_i)
//!           = Φ(x) + c_q − ⟨∇φ(q), x⟩
//! ```
//!
//! with `Φ(x) = Σ_i φ(x_i)`, `∇φ(q)_i = φ'(q_i)` and the scalar
//! `c_q = Σ_i φ'(q_i)·q_i − φ(q_i)`. Everything on the query side — the
//! gradient and the offset, the only places `φ`/`φ'` (ln/exp
//! transcendentals) appear — can be computed **once per query**; everything
//! on the data side (`Φ(x)`) can be computed **once per point at index-build
//! time**. A candidate refinement then collapses to one fused
//! multiply-accumulate dot product with zero transcendentals, which is the
//! dominant cost of the filter/refine pipelines in this repository.
//!
//! [`PreparedQuery`] holds the hoisted query-side state. It is implemented
//! for every decomposable divergence (build one with
//! [`DecomposableBregman::prepare_query`] or
//! [`PreparedQuery::decompose`]); the non-decomposable
//! [`SquaredMahalanobis`](crate::SquaredMahalanobis) falls back to a
//! *naive* prepared query that simply re-evaluates the full divergence per
//! candidate (see [`PreparedQuery::naive`]), so call sites can use one code
//! path regardless of the divergence family.
//!
//! [`phi_table`] builds the per-point `Φ(x)` column the indexes persist in
//! their sealed envelopes, and [`KernelScratch`] bundles the reusable
//! buffers a serving thread carries across a batch of queries.

use crate::divergence::{DecomposableBregman, Divergence};
use crate::vector::DenseDataset;

/// Chunked (4-wide, FMA-friendly) dot product.
///
/// Accumulating into four independent lanes breaks the sequential
/// dependency chain of a naive `fold`, letting the compiler keep several
/// multiply-adds in flight (and vectorize where the target allows). The
/// summation order differs from a sequential loop, so results may differ
/// from a naive dot product in the last few ulps.
#[inline]
pub fn dot_chunked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        lanes[0] += x[0] * y[0];
        lanes[1] += x[1] * y[1];
        lanes[2] += x[2] * y[2];
        lanes[3] += x[3] * y[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// One fused multiply-add step — a hardware `vfmadd` when the build target
/// guarantees FMA, a plain multiply-add otherwise. Gating on the *compile
/// target* matters: without the target feature, `f64::mul_add` lowers to a
/// correctly-rounded libm call that is an order of magnitude slower than
/// the two-instruction fallback.
#[inline(always)]
fn fma(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// The portable 8-lane dot body: eight scalar accumulator lanes, one
/// [`fma`] step per element, pairwise lane reduction. This is the exact
/// summation-order contract the AVX2 variant below replicates with packed
/// registers.
#[inline(always)]
fn dot8_body(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut lanes = [0.0f64; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            lanes[l] = fma(x[l], y[l], lanes[l]);
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail = fma(*x, *y, tail);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// [`dot8_body`]'s summation order in explicit AVX2 intrinsics: the eight
/// accumulator lanes live in two `ymm` registers (lanes 0–3 and 4–7) and
/// every step is one packed `vfmadd231pd`. Intrinsics rather than relying
/// on autovectorization because LLVM keeps the eight lanes as scalar
/// `vfmadd231sd` chains, which measures ~1.6× slower than packed on the
/// same machine. Lane `l` accumulates exactly the elements `i ≡ l (mod 8)`
/// in the same order as the portable body, and the tail plus pairwise
/// reduction are the identical scalar code — within a machine the
/// association never changes, only the instruction encoding does.
///
/// # Safety
/// Caller must have verified `avx2` and `fma` are available (see
/// [`fast_kernels_available`]).
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot8_avx2(a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::{
        _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_setzero_pd, _mm256_storeu_pd,
    };
    debug_assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut lo = _mm256_setzero_pd();
    let mut hi = _mm256_setzero_pd();
    for c in 0..chunks {
        // SAFETY: `c * 8 + 7 < n`, so both 4-wide loads stay in bounds.
        let base = c * 8;
        unsafe {
            lo = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(base)), _mm256_loadu_pd(pb.add(base)), lo);
            hi = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(base + 4)),
                _mm256_loadu_pd(pb.add(base + 4)),
                hi,
            );
        }
    }
    let mut lanes = [0.0f64; 8];
    // SAFETY: `lanes` has room for both 4-wide stores.
    unsafe {
        _mm256_storeu_pd(lanes.as_mut_ptr(), lo);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi);
    }
    let mut tail = 0.0;
    for i in chunks * 8..n {
        // `mul_add` is a single hardware `vfmadd` under this
        // `#[target_feature]`, matching the packed steps above.
        tail = a[i].mul_add(b[i], tail);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// [`dot8_body`]'s summation order in AVX-512 intrinsics: the eight
/// accumulator lanes are exactly one `zmm` register (lane `l` in element
/// `l`), each step one 8-wide load pair plus one `vfmadd231pd` — half the
/// load traffic of the two-`ymm` AVX2 variant. All steps are fused, so
/// results are bit-identical to [`dot8_avx2`] as well as to the block
/// kernels' per-candidate chains.
///
/// # Safety
/// Caller must have verified `avx512f` is available (see
/// [`avx512_available`]).
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot8_avx512(a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::{
        _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_setzero_pd, _mm512_storeu_pd,
    };
    debug_assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm512_setzero_pd();
    for c in 0..chunks {
        // SAFETY: `c * 8 + 7 < n`, so both 8-wide loads stay in bounds.
        let base = c * 8;
        unsafe {
            acc =
                _mm512_fmadd_pd(_mm512_loadu_pd(pa.add(base)), _mm512_loadu_pd(pb.add(base)), acc);
        }
    }
    let mut lanes = [0.0f64; 8];
    // SAFETY: `lanes` has room for the 8-wide store.
    unsafe {
        _mm512_storeu_pd(lanes.as_mut_ptr(), acc);
    }
    let mut tail = 0.0;
    for i in chunks * 8..n {
        tail = a[i].mul_add(b[i], tail);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// Whether the AVX-512 kernel tier is in use on this machine (the fused
/// steps produce the same bits as the AVX2 tier; the wider registers only
/// change instruction count). Detection is cached by the standard library.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

/// Whether runtime-dispatched explicit-SIMD kernel variants (AVX2 + FMA,
/// upgraded to AVX-512 where detected) are in use on this machine. The
/// detection result is cached by the standard library, so the check is one
/// relaxed atomic load per call.
#[inline]
pub fn fast_kernels_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Explicitly 8-wide dot product: eight independent accumulator lanes, one
/// multiply-add step per element, pairwise lane reduction. Twice the
/// instruction-level parallelism of [`dot_chunked`] (which remains the
/// portable reference the equivalence suite checks both against);
/// summation order differs from a sequential loop in the last few ulps.
///
/// On `x86_64` machines with AVX2 and FMA the same body is dispatched to a
/// `#[target_feature]` variant whose steps are single fused `vfmadd`
/// instructions. Fusing skips the intermediate rounding, so results can
/// differ from the portable variant in the last ulp — but the dispatch is
/// uniform across *every* kernel entry point ([`dot8`] and
/// [`PreparedQuery::distance_block`] alike), so per-point and batched
/// refine paths stay bit-identical to each other on any one machine.
#[inline]
pub fn dot8(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: `avx512_available` just verified avx512f.
            #[allow(unsafe_code)]
            return unsafe { dot8_avx512(a, b) };
        }
        if fast_kernels_available() {
            // SAFETY: `fast_kernels_available` just verified avx2 + fma.
            #[allow(unsafe_code)]
            return unsafe { dot8_avx2(a, b) };
        }
    }
    dot8_body(a, b)
}

/// The per-point generator sums `Φ(x) = Σ_i φ(x_i)` for a whole dataset —
/// the column an index precomputes at build time and persists alongside its
/// other artifacts so that query-time refinement never evaluates `φ` over
/// data coordinates.
pub fn phi_table<B: DecomposableBregman>(divergence: &B, dataset: &DenseDataset) -> Vec<f64> {
    (0..dataset.len()).map(|i| divergence.f(dataset.row(i))).collect()
}

enum Mode {
    /// The fast path: query-side state of the decomposition above.
    Decomposed {
        /// `∇φ(q)`: `grad[i] = φ'(q_i)`.
        grad: Vec<f64>,
        /// `c_q = Σ_i φ'(q_i)·q_i − φ(q_i)`.
        offset: f64,
    },
    /// Fallback for non-decomposable divergences (Mahalanobis): the full
    /// divergence is re-evaluated per candidate; the tabulated `Φ(x)` is
    /// ignored.
    Naive { divergence: Box<dyn Divergence>, query: Vec<f64> },
}

/// Query-side state of the decomposed divergence, built once per query and
/// reused across every candidate the refine phase examines.
///
/// With a decomposable divergence, [`PreparedQuery::distance`] evaluates
/// `D_φ(x, q) = Φ(x) + c_q − ⟨∇φ(q), x⟩` — one chunked dot product, no
/// transcendentals — where `Φ(x)` comes from the index's precomputed
/// [`phi_table`] column. The result agrees with
/// [`Divergence::divergence`] up to floating-point reassociation (last-ulp
/// differences; the equivalence suite pins them to `1e-10`).
///
/// ```
/// use bregman::kernel::PreparedQuery;
/// use bregman::{DecomposableBregman, Divergence, ItakuraSaito};
///
/// let q = [1.0, 2.0, 4.0];
/// let x = [2.0, 2.0, 3.0];
/// let prepared = ItakuraSaito.prepare_query(&q);
/// let fast = prepared.distance(ItakuraSaito.f(&x), &x);
/// let naive = ItakuraSaito.divergence(&x, &q);
/// assert!((fast - naive).abs() < 1e-10);
/// ```
pub struct PreparedQuery {
    mode: Mode,
}

impl Default for PreparedQuery {
    /// An empty decomposed query (dimension 0); re-arm it with
    /// [`PreparedQuery::decompose_into`].
    fn default() -> Self {
        PreparedQuery { mode: Mode::Decomposed { grad: Vec::new(), offset: 0.0 } }
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.mode {
            Mode::Decomposed { grad, offset } => f
                .debug_struct("PreparedQuery::Decomposed")
                .field("dim", &grad.len())
                .field("offset", offset)
                .finish(),
            Mode::Naive { divergence, query } => f
                .debug_struct("PreparedQuery::Naive")
                .field("divergence", &divergence.name())
                .field("dim", &query.len())
                .finish(),
        }
    }
}

impl PreparedQuery {
    /// Prepare `query` under a decomposable divergence (the fast path).
    pub fn decompose<B: DecomposableBregman>(divergence: &B, query: &[f64]) -> Self {
        let mut out = Self::default();
        out.decompose_into(divergence, query);
        out
    }

    /// Re-prepare in place, reusing the gradient buffer (the batch engine
    /// carries one `PreparedQuery` per worker thread across all the queries
    /// it serves, so steady-state serving performs no per-query allocation).
    pub fn decompose_into<B: DecomposableBregman>(&mut self, divergence: &B, query: &[f64]) {
        let (grad, offset) = match &mut self.mode {
            Mode::Decomposed { grad, offset } => (grad, offset),
            Mode::Naive { .. } => {
                self.mode = Mode::Decomposed { grad: Vec::new(), offset: 0.0 };
                match &mut self.mode {
                    Mode::Decomposed { grad, offset } => (grad, offset),
                    Mode::Naive { .. } => unreachable!("mode was just set to Decomposed"),
                }
            }
        };
        grad.clear();
        grad.reserve(query.len());
        let mut c = 0.0;
        for &qi in query {
            let g = divergence.phi_prime(qi);
            grad.push(g);
            c += g * qi - divergence.phi(qi);
        }
        *offset = c;
    }

    /// Prepare `query` under a non-decomposable divergence: every
    /// [`PreparedQuery::distance`] call re-evaluates the full divergence and
    /// ignores the tabulated `Φ(x)`. Exists so Mahalanobis (and future
    /// coupled-generator divergences) share the prepared-query call sites.
    pub fn naive(divergence: Box<dyn Divergence>, query: &[f64]) -> Self {
        PreparedQuery { mode: Mode::Naive { divergence, query: query.to_vec() } }
    }

    /// Whether this query uses the decomposed (transcendental-free) path.
    pub fn is_decomposed(&self) -> bool {
        matches!(self.mode, Mode::Decomposed { .. })
    }

    /// Dimensionality the query was prepared for.
    pub fn dim(&self) -> usize {
        match &self.mode {
            Mode::Decomposed { grad, .. } => grad.len(),
            Mode::Naive { query, .. } => query.len(),
        }
    }

    /// The cached gradient `∇φ(q)` (`None` on the naive fallback).
    pub fn gradient(&self) -> Option<&[f64]> {
        match &self.mode {
            Mode::Decomposed { grad, .. } => Some(grad),
            Mode::Naive { .. } => None,
        }
    }

    /// The cached scalar `c_q` (`None` on the naive fallback).
    pub fn offset(&self) -> Option<f64> {
        match &self.mode {
            Mode::Decomposed { offset, .. } => Some(*offset),
            Mode::Naive { .. } => None,
        }
    }

    /// The divergence from candidate `x` (with tabulated generator sum
    /// `phi_x = Φ(x)`) to the prepared query.
    #[inline]
    pub fn distance(&self, phi_x: f64, x: &[f64]) -> f64 {
        match &self.mode {
            Mode::Decomposed { grad, offset } => phi_x + offset - dot8(grad, x),
            Mode::Naive { divergence, query } => divergence.divergence(x, query),
        }
    }

    /// Batched refine over a lane-major candidate block: `lanes[i·m + j]`
    /// is coordinate `i` of candidate `j` (`m = phis.len()` candidates,
    /// `phis[j] = Φ(x_j)`), exactly the shape
    /// `pagestore::Page::decode_slots_into` produces. After the call
    /// `out[j]` is the divergence from candidate `j` to the prepared query.
    ///
    /// On the decomposed path this runs the dot products *across* rows
    /// with exactly [`dot8`]'s summation order: eight accumulator lanes
    /// per row filled dimension-chunk by dimension-chunk (each chunk a
    /// gradient broadcast against a contiguous coordinate lane, so the
    /// multiply-adds vectorize over the `m` rows), a sequential tail, and
    /// the same pairwise lane reduction. Per-row results are therefore
    /// **bit-identical** to [`PreparedQuery::distance`] — a candidate
    /// scores the same whether it is refined one point at a time or as
    /// part of a decoded block, which is what lets the engine mix both
    /// paths (per-point baselines, page-block refine, delta-overlay
    /// scans) without disturbing the exactness guarantees.
    pub fn distance_block(&self, phis: &[f64], lanes: &[f64], out: &mut Vec<f64>) {
        let m = phis.len();
        let dim = self.dim();
        debug_assert_eq!(lanes.len(), dim * m, "lane block must be dim × m");
        out.clear();
        match &self.mode {
            Mode::Decomposed { grad, offset } => {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx512_available() {
                        // SAFETY: `avx512_available` verified avx512f.
                        #[allow(unsafe_code)]
                        unsafe {
                            decomposed_block_avx512(grad, *offset, phis, lanes, out)
                        };
                        return;
                    }
                    if fast_kernels_available() {
                        // SAFETY: `fast_kernels_available` verified avx2 + fma.
                        #[allow(unsafe_code)]
                        unsafe {
                            decomposed_block_avx2(grad, *offset, phis, lanes, out)
                        };
                        return;
                    }
                }
                decomposed_block_body(grad, *offset, phis, lanes, out);
            }
            Mode::Naive { divergence, query } => {
                // Fallback: gather each row out of the lane block and
                // re-evaluate the full divergence (one scratch row per
                // block, reused across candidates).
                let mut row = vec![0.0; dim];
                for j in 0..m {
                    for (i, slot) in row.iter_mut().enumerate() {
                        *slot = lanes[i * m + j];
                    }
                    out.push(divergence.divergence(&row, query));
                }
            }
        }
    }
}

/// The decomposed-path block-refine body: [`dot8_body`]'s summation order
/// run lane-major *across* rows. `out` doubles as the accumulator matrix —
/// eight dot-product lanes plus one sequential tail per row (9·m slots) —
/// before the finals compact into the first `m` slots. For each dimension
/// chunk, one gradient broadcast multiplies a contiguous coordinate lane,
/// so the multiply-adds vectorize over the `m` candidates while every
/// individual row reproduces [`dot8`] bit for bit. Steps use the
/// compile-target-gated [`fma`] helper, matching [`dot8_body`].
#[inline(always)]
fn decomposed_block_body(
    grad: &[f64],
    offset: f64,
    phis: &[f64],
    lanes: &[f64],
    out: &mut Vec<f64>,
) {
    let m = phis.len();
    let dim = grad.len();
    out.resize(9 * m, 0.0);
    let chunks = dim / 8;
    for c in 0..chunks {
        for r in 0..8 {
            let i = c * 8 + r;
            let g = grad[i];
            let lane = &lanes[i * m..(i + 1) * m];
            let acc = &mut out[r * m..(r + 1) * m];
            for (a, &x) in acc.iter_mut().zip(lane) {
                *a = fma(g, x, *a);
            }
        }
    }
    for i in chunks * 8..dim {
        let g = grad[i];
        let lane = &lanes[i * m..(i + 1) * m];
        let tail = &mut out[8 * m..9 * m];
        for (t, &x) in tail.iter_mut().zip(lane) {
            *t = fma(g, x, *t);
        }
    }
    for j in 0..m {
        let l = |r: usize| out[r * m + j];
        let dot = ((l(0) + l(1)) + (l(2) + l(3))) + ((l(4) + l(5)) + (l(6) + l(7))) + l(8);
        out[j] = phis[j] + offset - dot;
    }
    out.truncate(m);
}

/// [`decomposed_block_body`] in explicit AVX2 intrinsics, tiled four
/// candidates at a time: the eight dot lanes plus the tail lane for one
/// tile are nine `ymm` registers that never leave the register file, and
/// each step is one gradient broadcast (`vbroadcastsd`) fused into a
/// packed `vfmadd231pd` against a contiguous slice of the coordinate lane.
/// (A first cut kept the 9·m accumulator matrix in memory like the
/// portable body; the load–fma–store round trip per dimension made it no
/// faster than the per-point path.) When the row stride aliases too few
/// L1 line sets for a whole tile to stay cached, the dimension walk is
/// additionally segmented — see `resident` below. Candidates past the
/// last full tile run the same eight-lane accumulation scalarly.
///
/// Per (lane, candidate) accumulator the visiting order, the fused steps,
/// the pairwise reduction and the `Φ(x) + c_q − ⟨∇φ(q), x⟩` finalization
/// are exactly the portable body's — the packed adds/subs are four
/// independent scalar ops — so per-row results stay bit-identical to
/// [`dot8`], which dispatches to its own fused variant on the same
/// machines.
///
/// # Safety
/// Caller must have verified `avx2` and `fma` are available (see
/// [`fast_kernels_available`]).
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn decomposed_block_avx2(
    grad: &[f64],
    offset: f64,
    phis: &[f64],
    lanes: &[f64],
    out: &mut Vec<f64>,
) {
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm_prefetch, _MM_HINT_T0,
    };
    let m = phis.len();
    let dim = grad.len();
    debug_assert_eq!(lanes.len(), dim * m, "lane block must be dim × m");
    let full = (dim / 8) * 8;
    let offv = _mm256_set1_pd(offset);
    let (pl, pg) = (lanes.as_ptr(), grad.as_ptr());
    // Rows of the lane block are `m·8` bytes apart. When that stride is a
    // multiple of the 64-byte cache line, consecutive rows alias a subset
    // of L1's 64 line sets, and once a tile touches more rows than those
    // sets hold (8 ways assumed — conservative for current x86 cores) its
    // own traversal evicts them, so every tile re-misses the whole block
    // (for `m = 64` that cliff starts near 100 dimensions). `resident` is
    // how many rows a tile can keep cached at this stride.
    let resident = {
        let stride = m * 8;
        if stride.is_multiple_of(64) {
            (64 / gcd((stride / 64) % 64, 64)) * 8
        } else {
            usize::MAX
        }
    };
    if dim <= resident {
        out.resize(m, 0.0);
        for j in (0..m / 4 * 4).step_by(4) {
            // SAFETY: `j + 3 < m`, so every 4-wide load at `i * m + j`
            // stays inside the `dim × m` lane block, and the `phis`/`out`
            // accesses stay inside their `m`-length buffers.
            unsafe {
                // Within a tile the lane loads stride `m` doubles — a
                // pattern the hardware prefetcher gives up on — so tiles
                // starting a new 64-byte line prefetch the following line
                // of every row for the next tile pair.
                let prefetch = j % 8 == 0 && j + 8 < m;
                let mut acc = [_mm256_setzero_pd(); 8];
                let mut c = 0;
                while c < full {
                    for (r, lane) in acc.iter_mut().enumerate() {
                        let i = c + r;
                        if prefetch {
                            _mm_prefetch::<_MM_HINT_T0>(pl.add(i * m + j + 8).cast());
                        }
                        let gv = _mm256_set1_pd(*pg.add(i));
                        *lane = _mm256_fmadd_pd(gv, _mm256_loadu_pd(pl.add(i * m + j)), *lane);
                    }
                    c += 8;
                }
                let mut tail = _mm256_setzero_pd();
                for i in full..dim {
                    if prefetch {
                        _mm_prefetch::<_MM_HINT_T0>(pl.add(i * m + j + 8).cast());
                    }
                    let gv = _mm256_set1_pd(*pg.add(i));
                    tail = _mm256_fmadd_pd(gv, _mm256_loadu_pd(pl.add(i * m + j)), tail);
                }
                let x = _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]), _mm256_add_pd(acc[2], acc[3]));
                let y = _mm256_add_pd(_mm256_add_pd(acc[4], acc[5]), _mm256_add_pd(acc[6], acc[7]));
                let dot = _mm256_add_pd(_mm256_add_pd(x, y), tail);
                let phi = _mm256_loadu_pd(phis.as_ptr().add(j));
                _mm256_storeu_pd(
                    out.as_mut_ptr().add(j),
                    _mm256_sub_pd(_mm256_add_pd(phi, offv), dot),
                );
            }
        }
    } else {
        // Aliased stride: walk the dimensions in L1-sized segments. `out`
        // doubles as the spill matrix (dot lanes at `out[r·m..]`, the tail
        // lane at `out[8·m..]`, finals compacted below) — spilling and
        // reloading a lane between segments does not change one bit of any
        // accumulator chain, it only re-orders *when* the same fused steps
        // run.
        let seg_rows = ((resident / 2).max(8) / 8) * 8;
        out.resize(9 * m, 0.0);
        let po = out.as_mut_ptr();
        let mut seg_start = 0;
        while seg_start < full {
            let seg_end = (seg_start + seg_rows).min(full);
            for j in (0..m / 4 * 4).step_by(4) {
                // SAFETY: as above, plus `8 * m + j + 3 < 9 * m` for every
                // spill-matrix access.
                unsafe {
                    let prefetch = j % 8 == 0 && j + 8 < m;
                    let mut acc = [_mm256_setzero_pd(); 8];
                    if seg_start > 0 {
                        for (r, lane) in acc.iter_mut().enumerate() {
                            *lane = _mm256_loadu_pd(po.add(r * m + j));
                        }
                    }
                    let mut c = seg_start;
                    while c < seg_end {
                        for (r, lane) in acc.iter_mut().enumerate() {
                            let i = c + r;
                            if prefetch {
                                _mm_prefetch::<_MM_HINT_T0>(pl.add(i * m + j + 8).cast());
                            }
                            let gv = _mm256_set1_pd(*pg.add(i));
                            *lane = _mm256_fmadd_pd(gv, _mm256_loadu_pd(pl.add(i * m + j)), *lane);
                        }
                        c += 8;
                    }
                    for (r, lane) in acc.iter().enumerate() {
                        _mm256_storeu_pd(po.add(r * m + j), *lane);
                    }
                }
            }
            seg_start = seg_end;
        }
        for j in (0..m / 4 * 4).step_by(4) {
            // SAFETY: same bounds as the spill loop above.
            unsafe {
                let mut tail = _mm256_setzero_pd();
                for i in full..dim {
                    let gv = _mm256_set1_pd(*pg.add(i));
                    tail = _mm256_fmadd_pd(gv, _mm256_loadu_pd(pl.add(i * m + j)), tail);
                }
                let mut lv = [_mm256_setzero_pd(); 8];
                for (r, v) in lv.iter_mut().enumerate() {
                    *v = _mm256_loadu_pd(po.add(r * m + j));
                }
                let x = _mm256_add_pd(_mm256_add_pd(lv[0], lv[1]), _mm256_add_pd(lv[2], lv[3]));
                let y = _mm256_add_pd(_mm256_add_pd(lv[4], lv[5]), _mm256_add_pd(lv[6], lv[7]));
                let dot = _mm256_add_pd(_mm256_add_pd(x, y), tail);
                let phi = _mm256_loadu_pd(phis.as_ptr().add(j));
                // Lane-0 slots of this tile were read into `lv` above, so
                // compacting the finals over them is safe.
                _mm256_storeu_pd(po.add(j), _mm256_sub_pd(_mm256_add_pd(phi, offv), dot));
            }
        }
    }
    for j in m / 4 * 4..m {
        let mut lanes8 = [0.0f64; 8];
        let mut c = 0;
        while c < full {
            for (r, lane) in lanes8.iter_mut().enumerate() {
                let i = c + r;
                *lane = grad[i].mul_add(lanes[i * m + j], *lane);
            }
            c += 8;
        }
        let mut tail = 0.0;
        for i in full..dim {
            tail = grad[i].mul_add(lanes[i * m + j], tail);
        }
        let dot = ((lanes8[0] + lanes8[1]) + (lanes8[2] + lanes8[3]))
            + ((lanes8[4] + lanes8[5]) + (lanes8[6] + lanes8[7]))
            + tail;
        out[j] = phis[j] + offset - dot;
    }
    out.truncate(m);
}

/// Greatest common divisor, for the L1 line-set arithmetic in
/// [`decomposed_block_avx2`] and [`decomposed_block_avx512`].
#[cfg(target_arch = "x86_64")]
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// [`decomposed_block_avx2`] widened to AVX-512: tiles of *eight*
/// candidates whose nine accumulator lanes are nine `zmm` registers, one
/// gradient broadcast fused into one `vfmadd231pd` per dimension — half
/// the load traffic per candidate of the AVX2 tile. The same L1 line-set
/// segmentation applies (each row load is one full cache line here).
/// Candidates past the last full tile run the eight-lane accumulation
/// scalarly. Association and fused steps are identical to every other
/// variant, so per-row results remain bit-identical to [`dot8`].
///
/// # Safety
/// Caller must have verified `avx512f` is available (see
/// [`avx512_available`]).
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn decomposed_block_avx512(
    grad: &[f64],
    offset: f64,
    phis: &[f64],
    lanes: &[f64],
    out: &mut Vec<f64>,
) {
    use core::arch::x86_64::{
        _mm512_add_pd, _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_set1_pd, _mm512_setzero_pd,
        _mm512_storeu_pd, _mm512_sub_pd, _mm_prefetch, _MM_HINT_T0,
    };
    let m = phis.len();
    let dim = grad.len();
    debug_assert_eq!(lanes.len(), dim * m, "lane block must be dim × m");
    let full = (dim / 8) * 8;
    let tiles = m / 8 * 8;
    let offv = _mm512_set1_pd(offset);
    let (pl, pg) = (lanes.as_ptr(), grad.as_ptr());
    // Same line-set arithmetic as the AVX2 variant — see `resident` there.
    let resident = {
        let stride = m * 8;
        if stride.is_multiple_of(64) {
            (64 / gcd((stride / 64) % 64, 64)) * 8
        } else {
            usize::MAX
        }
    };
    if dim <= resident {
        out.resize(m, 0.0);
        for j in (0..tiles).step_by(8) {
            // SAFETY: `j + 7 < m`, so every 8-wide load at `i * m + j`
            // stays inside the `dim × m` lane block, and the `phis`/`out`
            // accesses stay inside their `m`-length buffers.
            unsafe {
                let prefetch = j + 8 < m;
                let mut acc = [_mm512_setzero_pd(); 8];
                let mut c = 0;
                while c < full {
                    for (r, lane) in acc.iter_mut().enumerate() {
                        let i = c + r;
                        if prefetch {
                            _mm_prefetch::<_MM_HINT_T0>(pl.add(i * m + j + 8).cast());
                        }
                        let gv = _mm512_set1_pd(*pg.add(i));
                        *lane = _mm512_fmadd_pd(gv, _mm512_loadu_pd(pl.add(i * m + j)), *lane);
                    }
                    c += 8;
                }
                let mut tail = _mm512_setzero_pd();
                for i in full..dim {
                    if prefetch {
                        _mm_prefetch::<_MM_HINT_T0>(pl.add(i * m + j + 8).cast());
                    }
                    let gv = _mm512_set1_pd(*pg.add(i));
                    tail = _mm512_fmadd_pd(gv, _mm512_loadu_pd(pl.add(i * m + j)), tail);
                }
                let x = _mm512_add_pd(_mm512_add_pd(acc[0], acc[1]), _mm512_add_pd(acc[2], acc[3]));
                let y = _mm512_add_pd(_mm512_add_pd(acc[4], acc[5]), _mm512_add_pd(acc[6], acc[7]));
                let dot = _mm512_add_pd(_mm512_add_pd(x, y), tail);
                let phi = _mm512_loadu_pd(phis.as_ptr().add(j));
                _mm512_storeu_pd(
                    out.as_mut_ptr().add(j),
                    _mm512_sub_pd(_mm512_add_pd(phi, offv), dot),
                );
            }
        }
    } else {
        // Aliased stride: dimension-segmented walk with the 9·m spill
        // matrix in `out`, exactly as in the AVX2 variant.
        let seg_rows = ((resident / 2).max(8) / 8) * 8;
        out.resize(9 * m, 0.0);
        let po = out.as_mut_ptr();
        let mut seg_start = 0;
        while seg_start < full {
            let seg_end = (seg_start + seg_rows).min(full);
            for j in (0..tiles).step_by(8) {
                // SAFETY: as above, plus `8 * m + j + 7 < 9 * m` for every
                // spill-matrix access.
                unsafe {
                    let prefetch = j + 8 < m;
                    let mut acc = [_mm512_setzero_pd(); 8];
                    if seg_start > 0 {
                        for (r, lane) in acc.iter_mut().enumerate() {
                            *lane = _mm512_loadu_pd(po.add(r * m + j));
                        }
                    }
                    let mut c = seg_start;
                    while c < seg_end {
                        for (r, lane) in acc.iter_mut().enumerate() {
                            let i = c + r;
                            if prefetch {
                                _mm_prefetch::<_MM_HINT_T0>(pl.add(i * m + j + 8).cast());
                            }
                            let gv = _mm512_set1_pd(*pg.add(i));
                            *lane = _mm512_fmadd_pd(gv, _mm512_loadu_pd(pl.add(i * m + j)), *lane);
                        }
                        c += 8;
                    }
                    for (r, lane) in acc.iter().enumerate() {
                        _mm512_storeu_pd(po.add(r * m + j), *lane);
                    }
                }
            }
            seg_start = seg_end;
        }
        for j in (0..tiles).step_by(8) {
            // SAFETY: same bounds as the spill loop above.
            unsafe {
                let mut tail = _mm512_setzero_pd();
                for i in full..dim {
                    let gv = _mm512_set1_pd(*pg.add(i));
                    tail = _mm512_fmadd_pd(gv, _mm512_loadu_pd(pl.add(i * m + j)), tail);
                }
                let mut lv = [_mm512_setzero_pd(); 8];
                for (r, v) in lv.iter_mut().enumerate() {
                    *v = _mm512_loadu_pd(po.add(r * m + j));
                }
                let x = _mm512_add_pd(_mm512_add_pd(lv[0], lv[1]), _mm512_add_pd(lv[2], lv[3]));
                let y = _mm512_add_pd(_mm512_add_pd(lv[4], lv[5]), _mm512_add_pd(lv[6], lv[7]));
                let dot = _mm512_add_pd(_mm512_add_pd(x, y), tail);
                let phi = _mm512_loadu_pd(phis.as_ptr().add(j));
                // Lane-0 slots of this tile were read into `lv` above, so
                // compacting the finals over them is safe.
                _mm512_storeu_pd(po.add(j), _mm512_sub_pd(_mm512_add_pd(phi, offv), dot));
            }
        }
    }
    for j in tiles..m {
        let mut lanes8 = [0.0f64; 8];
        let mut c = 0;
        while c < full {
            for (r, lane) in lanes8.iter_mut().enumerate() {
                let i = c + r;
                *lane = grad[i].mul_add(lanes[i * m + j], *lane);
            }
            c += 8;
        }
        let mut tail = 0.0;
        for i in full..dim {
            tail = grad[i].mul_add(lanes[i * m + j], tail);
        }
        let dot = ((lanes8[0] + lanes8[1]) + (lanes8[2] + lanes8[3]))
            + ((lanes8[4] + lanes8[5]) + (lanes8[6] + lanes8[7]))
            + tail;
        out[j] = phis[j] + offset - dot;
    }
    out.truncate(m);
}

/// Reusable per-thread buffers for prepared-query search, designed to live
/// in an engine worker's scratch pool and be reused across a whole batch:
/// the prepared query (gradient buffer), a decoded-coordinates buffer and a
/// page-id staging buffer. All fields are plain buffers — dropping state
/// between queries is a `clear()`, never a reallocation.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Query-side decomposition state, re-armed per query.
    pub prepared: PreparedQuery,
    /// Decoded candidate coordinates (one point at a time).
    pub coords: Vec<f64>,
    /// Candidate/page id staging.
    pub ids: Vec<u32>,
    /// Lane-major decoded candidate block (one page group at a time), the
    /// input side of [`PreparedQuery::distance_block`].
    pub lanes: Vec<f64>,
    /// Per-candidate distances produced by a block refine.
    pub distances: Vec<f64>,
    /// Tabulated `Φ(x)` values for the candidates of the current block.
    pub phis: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, GeneralizedI, ItakuraSaito, SquaredEuclidean, SquaredMahalanobis};

    #[test]
    fn dot_chunked_matches_sequential_for_all_tail_lengths() {
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| 0.3 + i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.7 - i as f64 * 0.2).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_chunked(&a, &b) - naive).abs() < 1e-12 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn dot8_matches_dot_chunked_and_sequential_for_every_tail_length() {
        // Exhaustive over every lane-remainder class (1..=64 covers all
        // tails for both the 8-wide and 4-wide kernels several times over),
        // plus the benchmark dimensionalities.
        for n in (1..=64).chain([100, 128]) {
            let a: Vec<f64> = (0..n).map(|i| 0.25 + (i as f64) * 0.75 - (n as f64) / 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.6 - (i as f64) * 0.31).collect();
            let sequential: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let scale = 1.0 + sequential.abs();
            let wide = dot8(&a, &b);
            assert!((wide - sequential).abs() < 1e-10 * scale, "n={n}: {wide} vs {sequential}");
            let chunked = dot_chunked(&a, &b);
            assert!((wide - chunked).abs() < 1e-10 * scale, "n={n}: {wide} vs {chunked}");
        }
    }

    #[test]
    fn distance_block_matches_per_point_distance_for_every_tail_length() {
        for dim in (1..=64).chain([100, 128]) {
            let m = 7usize;
            let rows: Vec<Vec<f64>> = (0..m)
                .map(|j| (0..dim).map(|i| 0.5 + ((i * 31 + j * 17) % 13) as f64 * 0.35).collect())
                .collect();
            let q: Vec<f64> = (0..dim).map(|i| 0.25 + ((i * 7) % 11) as f64 * 0.4).collect();
            let prepared = PreparedQuery::decompose(&ItakuraSaito, &q);
            let phis: Vec<f64> = rows.iter().map(|r| ItakuraSaito.f(r)).collect();
            // Lane-major transpose: lanes[i*m + j] = rows[j][i].
            let mut lanes = vec![0.0; dim * m];
            for (j, row) in rows.iter().enumerate() {
                for (i, &x) in row.iter().enumerate() {
                    lanes[i * m + j] = x;
                }
            }
            let mut block = Vec::new();
            prepared.distance_block(&phis, &lanes, &mut block);
            assert_eq!(block.len(), m);
            for (j, row) in rows.iter().enumerate() {
                let single = prepared.distance(phis[j], row);
                // Bit-identical, not merely close: the block kernel
                // replicates dot8's summation order exactly, which is what
                // lets per-point and block refine paths coexist without
                // perturbing final top-k distances.
                assert_eq!(
                    block[j].to_bits(),
                    single.to_bits(),
                    "dim={dim} j={j}: {} vs {single}",
                    block[j]
                );
            }
        }
    }

    #[test]
    fn naive_distance_block_matches_the_full_divergence_exactly() {
        let m = SquaredMahalanobis::diagonal(&[1.0, 2.0, 0.5]).unwrap();
        let q = [1.0, 2.0, 3.0];
        let rows = [[0.5, 1.5, 4.0], [2.0, 0.25, 1.0]];
        let prepared = m.prepare_query(&q);
        let lanes = vec![
            rows[0][0], rows[1][0], // lane 0
            rows[0][1], rows[1][1], // lane 1
            rows[0][2], rows[1][2], // lane 2
        ];
        let mut block = Vec::new();
        prepared.distance_block(&[0.0, 0.0], &lanes, &mut block);
        // The naive fallback gathers rows and re-evaluates the divergence —
        // identical arithmetic to the per-point path, so exact equality.
        assert_eq!(block, vec![m.divergence(&rows[0], &q), m.divergence(&rows[1], &q)]);
    }

    #[test]
    fn prepared_distance_matches_divergence() {
        let x = [0.5, 1.0, 2.5, 3.0, 0.75];
        let q = [1.5, 0.5, 2.0, 1.0, 2.25];
        macro_rules! check {
            ($div:expr) => {
                let d = $div;
                let prepared = PreparedQuery::decompose(&d, &q);
                assert!(prepared.is_decomposed());
                assert_eq!(prepared.dim(), q.len());
                let fast = prepared.distance(d.f(&x), &x);
                let naive = d.divergence(&x, &q);
                assert!(
                    (fast - naive).abs() < 1e-10 * (1.0 + naive.abs()),
                    "{}: {fast} vs {naive}",
                    Divergence::name(&d)
                );
            };
        }
        check!(SquaredEuclidean);
        check!(ItakuraSaito);
        check!(Exponential);
        check!(GeneralizedI);
    }

    #[test]
    fn decompose_into_reuses_the_gradient_buffer() {
        let mut prepared = PreparedQuery::default();
        prepared.decompose_into(&ItakuraSaito, &[1.0, 2.0, 4.0]);
        assert_eq!(prepared.dim(), 3);
        let g = prepared.gradient().unwrap().to_vec();
        assert_eq!(g, vec![-1.0, -0.5, -0.25]);
        prepared.decompose_into(&SquaredEuclidean, &[3.0]);
        assert_eq!(prepared.dim(), 1);
        assert_eq!(prepared.gradient().unwrap(), &[6.0]);
    }

    #[test]
    fn naive_fallback_ignores_phi_and_matches_divergence() {
        let m = SquaredMahalanobis::diagonal(&[1.0, 2.0, 0.5]).unwrap();
        let q = [1.0, 2.0, 3.0];
        let x = [0.5, 1.5, 4.0];
        let prepared = m.prepare_query(&q);
        assert!(!prepared.is_decomposed());
        assert!(prepared.gradient().is_none());
        assert!(prepared.offset().is_none());
        let naive = m.divergence(&x, &q);
        // Whatever Φ the caller passes, the fallback evaluates the real
        // divergence.
        assert_eq!(prepared.distance(0.0, &x), naive);
        assert_eq!(prepared.distance(123.0, &x), naive);
    }

    #[test]
    fn naive_to_decomposed_rearm_works() {
        let m = SquaredMahalanobis::identity(2).unwrap();
        let mut prepared = m.prepare_query(&[1.0, 2.0]);
        prepared.decompose_into(&SquaredEuclidean, &[1.0, 2.0]);
        assert!(prepared.is_decomposed());
        let x = [2.0, 2.0];
        let fast = prepared.distance(SquaredEuclidean.f(&x), &x);
        assert!((fast - SquaredEuclidean.divergence(&x, &[1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn phi_table_matches_generator_sums() {
        let rows = vec![vec![1.0, 2.0], vec![0.5, 4.0], vec![3.0, 3.0]];
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let table = phi_table(&ItakuraSaito, &ds);
        assert_eq!(table.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert!((table[i] - ItakuraSaito.f(row)).abs() < 1e-12);
        }
    }
}
