//! Prepared-query decomposed divergence kernels.
//!
//! Every decomposable Bregman divergence factors as
//!
//! ```text
//! D_φ(x, q) = Σ_i φ(x_i) − φ(q_i) − φ'(q_i)(x_i − q_i)
//!           = Φ(x) + c_q − ⟨∇φ(q), x⟩
//! ```
//!
//! with `Φ(x) = Σ_i φ(x_i)`, `∇φ(q)_i = φ'(q_i)` and the scalar
//! `c_q = Σ_i φ'(q_i)·q_i − φ(q_i)`. Everything on the query side — the
//! gradient and the offset, the only places `φ`/`φ'` (ln/exp
//! transcendentals) appear — can be computed **once per query**; everything
//! on the data side (`Φ(x)`) can be computed **once per point at index-build
//! time**. A candidate refinement then collapses to one fused
//! multiply-accumulate dot product with zero transcendentals, which is the
//! dominant cost of the filter/refine pipelines in this repository.
//!
//! [`PreparedQuery`] holds the hoisted query-side state. It is implemented
//! for every decomposable divergence (build one with
//! [`DecomposableBregman::prepare_query`] or
//! [`PreparedQuery::decompose`]); the non-decomposable
//! [`SquaredMahalanobis`](crate::SquaredMahalanobis) falls back to a
//! *naive* prepared query that simply re-evaluates the full divergence per
//! candidate (see [`PreparedQuery::naive`]), so call sites can use one code
//! path regardless of the divergence family.
//!
//! [`phi_table`] builds the per-point `Φ(x)` column the indexes persist in
//! their sealed envelopes, and [`KernelScratch`] bundles the reusable
//! buffers a serving thread carries across a batch of queries.

use crate::divergence::{DecomposableBregman, Divergence};
use crate::vector::DenseDataset;

/// Chunked (4-wide, FMA-friendly) dot product.
///
/// Accumulating into four independent lanes breaks the sequential
/// dependency chain of a naive `fold`, letting the compiler keep several
/// multiply-adds in flight (and vectorize where the target allows). The
/// summation order differs from a sequential loop, so results may differ
/// from a naive dot product in the last few ulps.
#[inline]
pub fn dot_chunked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        lanes[0] += x[0] * y[0];
        lanes[1] += x[1] * y[1];
        lanes[2] += x[2] * y[2];
        lanes[3] += x[3] * y[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// The per-point generator sums `Φ(x) = Σ_i φ(x_i)` for a whole dataset —
/// the column an index precomputes at build time and persists alongside its
/// other artifacts so that query-time refinement never evaluates `φ` over
/// data coordinates.
pub fn phi_table<B: DecomposableBregman>(divergence: &B, dataset: &DenseDataset) -> Vec<f64> {
    (0..dataset.len()).map(|i| divergence.f(dataset.row(i))).collect()
}

enum Mode {
    /// The fast path: query-side state of the decomposition above.
    Decomposed {
        /// `∇φ(q)`: `grad[i] = φ'(q_i)`.
        grad: Vec<f64>,
        /// `c_q = Σ_i φ'(q_i)·q_i − φ(q_i)`.
        offset: f64,
    },
    /// Fallback for non-decomposable divergences (Mahalanobis): the full
    /// divergence is re-evaluated per candidate; the tabulated `Φ(x)` is
    /// ignored.
    Naive { divergence: Box<dyn Divergence>, query: Vec<f64> },
}

/// Query-side state of the decomposed divergence, built once per query and
/// reused across every candidate the refine phase examines.
///
/// With a decomposable divergence, [`PreparedQuery::distance`] evaluates
/// `D_φ(x, q) = Φ(x) + c_q − ⟨∇φ(q), x⟩` — one chunked dot product, no
/// transcendentals — where `Φ(x)` comes from the index's precomputed
/// [`phi_table`] column. The result agrees with
/// [`Divergence::divergence`] up to floating-point reassociation (last-ulp
/// differences; the equivalence suite pins them to `1e-10`).
///
/// ```
/// use bregman::kernel::PreparedQuery;
/// use bregman::{DecomposableBregman, Divergence, ItakuraSaito};
///
/// let q = [1.0, 2.0, 4.0];
/// let x = [2.0, 2.0, 3.0];
/// let prepared = ItakuraSaito.prepare_query(&q);
/// let fast = prepared.distance(ItakuraSaito.f(&x), &x);
/// let naive = ItakuraSaito.divergence(&x, &q);
/// assert!((fast - naive).abs() < 1e-10);
/// ```
pub struct PreparedQuery {
    mode: Mode,
}

impl Default for PreparedQuery {
    /// An empty decomposed query (dimension 0); re-arm it with
    /// [`PreparedQuery::decompose_into`].
    fn default() -> Self {
        PreparedQuery { mode: Mode::Decomposed { grad: Vec::new(), offset: 0.0 } }
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.mode {
            Mode::Decomposed { grad, offset } => f
                .debug_struct("PreparedQuery::Decomposed")
                .field("dim", &grad.len())
                .field("offset", offset)
                .finish(),
            Mode::Naive { divergence, query } => f
                .debug_struct("PreparedQuery::Naive")
                .field("divergence", &divergence.name())
                .field("dim", &query.len())
                .finish(),
        }
    }
}

impl PreparedQuery {
    /// Prepare `query` under a decomposable divergence (the fast path).
    pub fn decompose<B: DecomposableBregman>(divergence: &B, query: &[f64]) -> Self {
        let mut out = Self::default();
        out.decompose_into(divergence, query);
        out
    }

    /// Re-prepare in place, reusing the gradient buffer (the batch engine
    /// carries one `PreparedQuery` per worker thread across all the queries
    /// it serves, so steady-state serving performs no per-query allocation).
    pub fn decompose_into<B: DecomposableBregman>(&mut self, divergence: &B, query: &[f64]) {
        let (grad, offset) = match &mut self.mode {
            Mode::Decomposed { grad, offset } => (grad, offset),
            Mode::Naive { .. } => {
                self.mode = Mode::Decomposed { grad: Vec::new(), offset: 0.0 };
                match &mut self.mode {
                    Mode::Decomposed { grad, offset } => (grad, offset),
                    Mode::Naive { .. } => unreachable!("mode was just set to Decomposed"),
                }
            }
        };
        grad.clear();
        grad.reserve(query.len());
        let mut c = 0.0;
        for &qi in query {
            let g = divergence.phi_prime(qi);
            grad.push(g);
            c += g * qi - divergence.phi(qi);
        }
        *offset = c;
    }

    /// Prepare `query` under a non-decomposable divergence: every
    /// [`PreparedQuery::distance`] call re-evaluates the full divergence and
    /// ignores the tabulated `Φ(x)`. Exists so Mahalanobis (and future
    /// coupled-generator divergences) share the prepared-query call sites.
    pub fn naive(divergence: Box<dyn Divergence>, query: &[f64]) -> Self {
        PreparedQuery { mode: Mode::Naive { divergence, query: query.to_vec() } }
    }

    /// Whether this query uses the decomposed (transcendental-free) path.
    pub fn is_decomposed(&self) -> bool {
        matches!(self.mode, Mode::Decomposed { .. })
    }

    /// Dimensionality the query was prepared for.
    pub fn dim(&self) -> usize {
        match &self.mode {
            Mode::Decomposed { grad, .. } => grad.len(),
            Mode::Naive { query, .. } => query.len(),
        }
    }

    /// The cached gradient `∇φ(q)` (`None` on the naive fallback).
    pub fn gradient(&self) -> Option<&[f64]> {
        match &self.mode {
            Mode::Decomposed { grad, .. } => Some(grad),
            Mode::Naive { .. } => None,
        }
    }

    /// The cached scalar `c_q` (`None` on the naive fallback).
    pub fn offset(&self) -> Option<f64> {
        match &self.mode {
            Mode::Decomposed { offset, .. } => Some(*offset),
            Mode::Naive { .. } => None,
        }
    }

    /// The divergence from candidate `x` (with tabulated generator sum
    /// `phi_x = Φ(x)`) to the prepared query.
    #[inline]
    pub fn distance(&self, phi_x: f64, x: &[f64]) -> f64 {
        match &self.mode {
            Mode::Decomposed { grad, offset } => phi_x + offset - dot_chunked(grad, x),
            Mode::Naive { divergence, query } => divergence.divergence(x, query),
        }
    }
}

/// Reusable per-thread buffers for prepared-query search, designed to live
/// in an engine worker's scratch pool and be reused across a whole batch:
/// the prepared query (gradient buffer), a decoded-coordinates buffer and a
/// page-id staging buffer. All fields are plain buffers — dropping state
/// between queries is a `clear()`, never a reallocation.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Query-side decomposition state, re-armed per query.
    pub prepared: PreparedQuery,
    /// Decoded candidate coordinates (one point at a time).
    pub coords: Vec<f64>,
    /// Candidate/page id staging.
    pub ids: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, GeneralizedI, ItakuraSaito, SquaredEuclidean, SquaredMahalanobis};

    #[test]
    fn dot_chunked_matches_sequential_for_all_tail_lengths() {
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| 0.3 + i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.7 - i as f64 * 0.2).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_chunked(&a, &b) - naive).abs() < 1e-12 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn prepared_distance_matches_divergence() {
        let x = [0.5, 1.0, 2.5, 3.0, 0.75];
        let q = [1.5, 0.5, 2.0, 1.0, 2.25];
        macro_rules! check {
            ($div:expr) => {
                let d = $div;
                let prepared = PreparedQuery::decompose(&d, &q);
                assert!(prepared.is_decomposed());
                assert_eq!(prepared.dim(), q.len());
                let fast = prepared.distance(d.f(&x), &x);
                let naive = d.divergence(&x, &q);
                assert!(
                    (fast - naive).abs() < 1e-10 * (1.0 + naive.abs()),
                    "{}: {fast} vs {naive}",
                    Divergence::name(&d)
                );
            };
        }
        check!(SquaredEuclidean);
        check!(ItakuraSaito);
        check!(Exponential);
        check!(GeneralizedI);
    }

    #[test]
    fn decompose_into_reuses_the_gradient_buffer() {
        let mut prepared = PreparedQuery::default();
        prepared.decompose_into(&ItakuraSaito, &[1.0, 2.0, 4.0]);
        assert_eq!(prepared.dim(), 3);
        let g = prepared.gradient().unwrap().to_vec();
        assert_eq!(g, vec![-1.0, -0.5, -0.25]);
        prepared.decompose_into(&SquaredEuclidean, &[3.0]);
        assert_eq!(prepared.dim(), 1);
        assert_eq!(prepared.gradient().unwrap(), &[6.0]);
    }

    #[test]
    fn naive_fallback_ignores_phi_and_matches_divergence() {
        let m = SquaredMahalanobis::diagonal(&[1.0, 2.0, 0.5]).unwrap();
        let q = [1.0, 2.0, 3.0];
        let x = [0.5, 1.5, 4.0];
        let prepared = m.prepare_query(&q);
        assert!(!prepared.is_decomposed());
        assert!(prepared.gradient().is_none());
        assert!(prepared.offset().is_none());
        let naive = m.divergence(&x, &q);
        // Whatever Φ the caller passes, the fallback evaluates the real
        // divergence.
        assert_eq!(prepared.distance(0.0, &x), naive);
        assert_eq!(prepared.distance(123.0, &x), naive);
    }

    #[test]
    fn naive_to_decomposed_rearm_works() {
        let m = SquaredMahalanobis::identity(2).unwrap();
        let mut prepared = m.prepare_query(&[1.0, 2.0]);
        prepared.decompose_into(&SquaredEuclidean, &[1.0, 2.0]);
        assert!(prepared.is_decomposed());
        let x = [2.0, 2.0];
        let fast = prepared.distance(SquaredEuclidean.f(&x), &x);
        assert!((fast - SquaredEuclidean.divergence(&x, &[1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn phi_table_matches_generator_sums() {
        let rows = vec![vec![1.0, 2.0], vec![0.5, 4.0], vec![3.0, 3.0]];
        let ds = DenseDataset::from_rows(&rows).unwrap();
        let table = phi_table(&ItakuraSaito, &ds);
        assert_eq!(table.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert!((table[i] - ItakuraSaito.f(row)).abs() < 1e-12);
        }
    }
}
