//! The [`SearchBackend`] abstraction: one trait over every index in the
//! workspace, so the batch engine (and the experiment harness) can drive
//! BrePartition, its approximate extension, the BB-tree baseline and the
//! VA-file baseline through a single code path.
//!
//! Every backend supports two lifecycles: *build* from a dataset (the
//! `build_*`/`*_for_kind` constructors) or *open* a previously saved index
//! directory (the `open_*`/`*_open_for_kind` constructors), so a serving
//! process can come up without re-running index construction. Saved
//! directories are produced by each backend's `save` method (which defers
//! to the underlying index's persistence format).

use std::path::Path;
use std::sync::Arc;

use bbtree::{BBTreeConfig, DiskBBTree};
use bregman::{
    DecomposableBregman, DenseDataset, DivergenceKind, Exponential, GeneralizedI, ItakuraSaito,
    PointId, SquaredEuclidean,
};
use brepartition_core::{ApproximateConfig, BrePartitionConfig, BrePartitionIndex};
use pagestore::{BufferPool, IoStats, PageStoreConfig};
use vafile::{VaFile, VaFileConfig};

use crate::error::EngineError;

/// Per-thread mutable state a backend needs while answering queries.
///
/// Every index in this workspace reads data pages through a [`BufferPool`]
/// that carries the per-query I/O accounting; the engine gives each worker
/// thread its own scratch so the shared index stays immutable (`&self`)
/// during concurrent search.
#[derive(Debug)]
pub struct Scratch {
    /// The buffer pool queries read through.
    pub pool: BufferPool,
}

impl Scratch {
    /// Scratch around an existing pool.
    pub fn new(pool: BufferPool) -> Self {
        Self { pool }
    }
}

/// The answer to one kNN query, normalized across backends.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendAnswer {
    /// Neighbours as `(id, divergence)`, ordered by increasing divergence.
    pub neighbors: Vec<(PointId, f64)>,
    /// Candidate points the backend examined after filtering (`0` for
    /// backends without a filter/refine split).
    pub candidates: usize,
    /// Physical I/O performed for this query.
    pub io: IoStats,
}

/// A kNN index that can serve concurrent batch queries.
///
/// Implementations must be immutable during search: `knn` takes `&self` and
/// threads all mutable state through the caller-owned [`Scratch`]. That
/// contract is what lets the engine share one index across worker threads
/// without locks.
pub trait SearchBackend: Send + Sync {
    /// Short method label (e.g. `"BP"`, `"ABP(p=0.90)"`, `"BBT"`, `"VAF"`).
    fn name(&self) -> &str;

    /// Dimensionality of the indexed points.
    fn dim(&self) -> usize;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fresh per-thread scratch state (a cold buffer pool).
    fn new_scratch(&self) -> Scratch;

    /// Answer one kNN query using the caller's scratch state.
    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError>;
}

/// How a [`BrePartitionBackend`] searches.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BrePartitionMode {
    Exact,
    Approximate(ApproximateConfig),
}

/// The BrePartition index behind the [`SearchBackend`] trait, in either
/// exact (Algorithm 6) or approximate (ABP) mode.
///
/// The index is held behind an [`Arc`] so one build can serve several
/// backends (typically an exact and an approximate one) without duplicating
/// the transformed dataset and BB-forest; the `Into<Arc<_>>` constructors
/// accept an owned index or an existing `Arc` alike.
#[derive(Debug, Clone)]
pub struct BrePartitionBackend {
    index: Arc<BrePartitionIndex>,
    mode: BrePartitionMode,
    name: String,
}

impl BrePartitionBackend {
    /// Wrap an index for exact search.
    pub fn exact(index: impl Into<Arc<BrePartitionIndex>>) -> Self {
        Self { index: index.into(), mode: BrePartitionMode::Exact, name: "BP".to_string() }
    }

    /// Wrap an index for approximate search at the configured probability.
    pub fn approximate(
        index: impl Into<Arc<BrePartitionIndex>>,
        config: ApproximateConfig,
    ) -> Self {
        let name = format!("ABP(p={:.2})", config.probability);
        Self { index: index.into(), mode: BrePartitionMode::Approximate(config), name }
    }

    /// Build an exact backend from a dataset.
    pub fn build_exact(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        config: &BrePartitionConfig,
    ) -> Result<Self, EngineError> {
        let index = BrePartitionIndex::build(kind, dataset, config)
            .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(Self::exact(index))
    }

    /// Build an approximate backend from a dataset.
    pub fn build_approximate(
        kind: DivergenceKind,
        dataset: &DenseDataset,
        config: &BrePartitionConfig,
        approx: ApproximateConfig,
    ) -> Result<Self, EngineError> {
        let index = BrePartitionIndex::build(kind, dataset, config)
            .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(Self::approximate(index, approx))
    }

    /// Open an exact backend from an index directory written by
    /// [`BrePartitionIndex::save`] (or [`BrePartitionBackend::save`]).
    pub fn open_exact(dir: &Path) -> Result<Self, EngineError> {
        let index =
            BrePartitionIndex::open(dir).map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(Self::exact(index))
    }

    /// Open an approximate backend from an index directory. The shrink
    /// coefficient is derived from the persisted per-dimension moments, so a
    /// reopened ABP backend answers exactly like the freshly built one.
    pub fn open_approximate(dir: &Path, approx: ApproximateConfig) -> Result<Self, EngineError> {
        let index =
            BrePartitionIndex::open(dir).map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(Self::approximate(index, approx))
    }

    /// Persist the wrapped index to an index directory.
    pub fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.index.save(dir).map_err(|e| EngineError::Backend(e.to_string()))
    }

    /// The wrapped index.
    pub fn index(&self) -> &BrePartitionIndex {
        &self.index
    }
}

impl SearchBackend for BrePartitionBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn new_scratch(&self) -> Scratch {
        Scratch::new(self.index.new_buffer_pool())
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        let before = scratch.pool.stats();
        let result = match &self.mode {
            BrePartitionMode::Exact => self.index.knn_with_pool(&mut scratch.pool, query, k),
            BrePartitionMode::Approximate(config) => {
                self.index.knn_approximate_with_pool(&mut scratch.pool, query, k, config)
            }
        }
        .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(BackendAnswer {
            neighbors: result.neighbors,
            candidates: result.stats.candidates,
            io: scratch.pool.stats().since(&before),
        })
    }
}

/// The disk-resident BB-tree baseline ("BBT") behind the trait.
#[derive(Debug, Clone)]
pub struct BBTreeBackend<B: DecomposableBregman + Send + Sync> {
    tree: DiskBBTree<B>,
    dim: usize,
    len: usize,
}

impl<B: DecomposableBregman + Send + Sync> BBTreeBackend<B> {
    /// Build the tree over a dataset.
    pub fn build(
        divergence: B,
        dataset: &DenseDataset,
        tree_config: BBTreeConfig,
        store_config: PageStoreConfig,
    ) -> Self {
        let tree = DiskBBTree::build(divergence, dataset, tree_config, store_config);
        Self { tree, dim: dataset.dim(), len: dataset.len() }
    }

    /// Open a tree saved with [`BBTreeBackend::save`] (or
    /// [`DiskBBTree::save`]).
    pub fn open(divergence: B, dir: &Path) -> Result<Self, EngineError> {
        let tree =
            DiskBBTree::open(divergence, dir).map_err(|e| EngineError::Backend(e.to_string()))?;
        let dim = tree.tree().dim();
        let len = tree.tree().len();
        Ok(Self { tree, dim, len })
    }

    /// Persist the wrapped tree to an index directory.
    pub fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.tree.save(dir).map_err(|e| EngineError::Backend(e.to_string()))
    }

    /// The wrapped tree.
    pub fn tree(&self) -> &DiskBBTree<B> {
        &self.tree
    }
}

impl<B: DecomposableBregman + Send + Sync> SearchBackend for BBTreeBackend<B> {
    fn name(&self) -> &str {
        "BBT"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn new_scratch(&self) -> Scratch {
        Scratch::new(BufferPool::unbuffered())
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        check_dim(self.dim, query)?;
        let result = self.tree.knn(&mut scratch.pool, query, k);
        Ok(BackendAnswer {
            neighbors: result.neighbors.iter().map(|n| (n.id, n.distance)).collect(),
            candidates: result.search.candidates_examined as usize,
            io: result.io,
        })
    }
}

/// The VA-file baseline ("VAF") behind the trait.
#[derive(Debug, Clone)]
pub struct VaFileBackend<B: DecomposableBregman + Send + Sync> {
    file: VaFile<B>,
    dim: usize,
}

impl<B: DecomposableBregman + Send + Sync> VaFileBackend<B> {
    /// Build the VA-file over a dataset.
    pub fn build(divergence: B, dataset: &DenseDataset, config: VaFileConfig) -> Self {
        Self { file: VaFile::build(divergence, dataset, config), dim: dataset.dim() }
    }

    /// Open a VA-file saved with [`VaFileBackend::save`] (or
    /// [`VaFile::save`]).
    pub fn open(divergence: B, dir: &Path) -> Result<Self, EngineError> {
        let file =
            VaFile::open(divergence, dir).map_err(|e| EngineError::Backend(e.to_string()))?;
        let dim = file.quantizer().dim();
        Ok(Self { file, dim })
    }

    /// Persist the wrapped VA-file to an index directory.
    pub fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.file.save(dir).map_err(|e| EngineError::Backend(e.to_string()))
    }

    /// The wrapped VA-file.
    pub fn file(&self) -> &VaFile<B> {
        &self.file
    }
}

impl<B: DecomposableBregman + Send + Sync> SearchBackend for VaFileBackend<B> {
    fn name(&self) -> &str {
        "VAF"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.file.len()
    }

    fn new_scratch(&self) -> Scratch {
        Scratch::new(BufferPool::unbuffered())
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        check_dim(self.dim, query)?;
        let result = self.file.knn(&mut scratch.pool, query, k);
        Ok(BackendAnswer {
            neighbors: result.neighbors,
            candidates: result.candidates,
            io: result.io,
        })
    }
}

fn check_dim(expected: usize, query: &[f64]) -> Result<(), EngineError> {
    if query.len() != expected {
        return Err(EngineError::Backend(format!(
            "query dimensionality {} does not match index dimensionality {expected}",
            query.len()
        )));
    }
    Ok(())
}

/// Build a boxed BB-tree backend for a runtime-selected divergence.
pub fn bbtree_backend_for_kind(
    kind: DivergenceKind,
    dataset: &DenseDataset,
    tree_config: BBTreeConfig,
    store_config: PageStoreConfig,
) -> Box<dyn SearchBackend> {
    match kind {
        DivergenceKind::SquaredEuclidean => {
            Box::new(BBTreeBackend::build(SquaredEuclidean, dataset, tree_config, store_config))
        }
        DivergenceKind::ItakuraSaito => {
            Box::new(BBTreeBackend::build(ItakuraSaito, dataset, tree_config, store_config))
        }
        DivergenceKind::Exponential => {
            Box::new(BBTreeBackend::build(Exponential, dataset, tree_config, store_config))
        }
        DivergenceKind::GeneralizedI => {
            Box::new(BBTreeBackend::build(GeneralizedI, dataset, tree_config, store_config))
        }
    }
}

/// Build a boxed VA-file backend for a runtime-selected divergence.
pub fn vafile_backend_for_kind(
    kind: DivergenceKind,
    dataset: &DenseDataset,
    config: VaFileConfig,
) -> Box<dyn SearchBackend> {
    match kind {
        DivergenceKind::SquaredEuclidean => {
            Box::new(VaFileBackend::build(SquaredEuclidean, dataset, config))
        }
        DivergenceKind::ItakuraSaito => {
            Box::new(VaFileBackend::build(ItakuraSaito, dataset, config))
        }
        DivergenceKind::Exponential => Box::new(VaFileBackend::build(Exponential, dataset, config)),
        DivergenceKind::GeneralizedI => {
            Box::new(VaFileBackend::build(GeneralizedI, dataset, config))
        }
    }
}

/// Open a boxed BB-tree backend from an index directory for a
/// runtime-selected divergence.
pub fn bbtree_backend_open_for_kind(
    kind: DivergenceKind,
    dir: &Path,
) -> Result<Box<dyn SearchBackend>, EngineError> {
    Ok(match kind {
        DivergenceKind::SquaredEuclidean => Box::new(BBTreeBackend::open(SquaredEuclidean, dir)?),
        DivergenceKind::ItakuraSaito => Box::new(BBTreeBackend::open(ItakuraSaito, dir)?),
        DivergenceKind::Exponential => Box::new(BBTreeBackend::open(Exponential, dir)?),
        DivergenceKind::GeneralizedI => Box::new(BBTreeBackend::open(GeneralizedI, dir)?),
    })
}

/// Open a boxed VA-file backend from an index directory for a
/// runtime-selected divergence.
pub fn vafile_backend_open_for_kind(
    kind: DivergenceKind,
    dir: &Path,
) -> Result<Box<dyn SearchBackend>, EngineError> {
    Ok(match kind {
        DivergenceKind::SquaredEuclidean => Box::new(VaFileBackend::open(SquaredEuclidean, dir)?),
        DivergenceKind::ItakuraSaito => Box::new(VaFileBackend::open(ItakuraSaito, dir)?),
        DivergenceKind::Exponential => Box::new(VaFileBackend::open(Exponential, dir)?),
        DivergenceKind::GeneralizedI => Box::new(VaFileBackend::open(GeneralizedI, dir)?),
    })
}
