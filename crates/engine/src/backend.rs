//! The [`SearchBackend`] abstraction: one trait over every index in the
//! workspace, so the batch engine (and the experiment harness) can drive
//! BrePartition, its approximate extension, the BB-tree baseline and the
//! VA-file baseline through a single code path.
//!
//! Every backend supports two lifecycles: *build* from a dataset or *open* a
//! previously saved index directory, so a serving process can come up
//! without re-running index construction. Saved directories are produced by
//! [`SearchBackend::save`] (which defers to the underlying index's
//! persistence format). The preferred way to construct backends is the
//! spec-driven façade in the root `brepartition` crate (`IndexSpec` →
//! `Index::build`/`Index::open`); the per-method constructors in this module
//! remain for callers wiring concrete index types by hand.

use std::path::Path;
use std::sync::Arc;

use bbtree::{BBTreeConfig, DiskBBTree, NodeKind};
use bregman::kernel::KernelScratch;
use bregman::{DecomposableBregman, DenseDataset, PointId};
use brepartition_core::{ApproximateConfig, BrePartitionIndex};
use pagestore::{BufferPool, IoStats, PageStoreConfig};
use vafile::{VaFile, VaFileConfig};

use crate::error::EngineError;
use crate::request::QueryOptions;

/// Per-thread mutable state a backend needs while answering queries.
///
/// Every index in this workspace reads data pages through a [`BufferPool`]
/// that carries the per-query I/O accounting, and evaluates refinement
/// distances through the prepared-query kernel buffers in
/// [`KernelScratch`]; the engine gives each worker thread its own scratch
/// so the shared index stays immutable (`&self`) during concurrent search.
/// The kernel buffers are deliberately reused across every query a worker
/// serves — steady-state serving performs no per-query allocation for
/// gradients or decoded candidates.
#[derive(Debug)]
pub struct Scratch {
    /// The buffer pool queries read through.
    pub pool: BufferPool,
    /// Prepared-query kernel buffers (gradient, decode, id staging).
    pub kernel: KernelScratch,
}

impl Scratch {
    /// Scratch around an existing pool (fresh kernel buffers).
    pub fn new(pool: BufferPool) -> Self {
        Self { pool, kernel: KernelScratch::default() }
    }
}

/// The answer to one kNN query, normalized across backends.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendAnswer {
    /// Neighbours as `(id, divergence)`, ordered by increasing divergence.
    pub neighbors: Vec<(PointId, f64)>,
    /// Candidate points the backend examined after filtering (`0` for
    /// backends without a filter/refine split).
    pub candidates: usize,
    /// Physical I/O performed for this query.
    pub io: IoStats,
}

/// A kNN index that can serve concurrent batch queries.
///
/// Implementations must be immutable during search: `knn` takes `&self` and
/// threads all mutable state through the caller-owned [`Scratch`]. That
/// contract is what lets the engine share one index across worker threads
/// without locks.
pub trait SearchBackend: Send + Sync {
    /// Short method label (e.g. `"BP"`, `"ABP(p=0.90)"`, `"BBT"`, `"VAF"`).
    fn name(&self) -> &str;

    /// Dimensionality of the indexed points.
    fn dim(&self) -> usize;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fresh per-thread scratch state (a cold buffer pool).
    fn new_scratch(&self) -> Scratch;

    /// Answer one kNN query using the caller's scratch state.
    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError>;

    /// Answer one kNN query honoring per-query [`QueryOptions`].
    ///
    /// Options are typed requests: an option the backend cannot honor is
    /// rejected with [`EngineError::UnsupportedOption`] rather than silently
    /// ignored. The default implementation supports only the empty option
    /// set; backends override it for the knobs they expose.
    fn knn_with_options(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        reject_unsupported(self.name(), options, false, false)?;
        self.knn(scratch, query, k)
    }

    /// Persist the backend's index to a directory, in the format its
    /// `open` constructor (and the `brepartition` façade's `Index::open`)
    /// reads back. The default implementation reports the backend as
    /// non-persistent.
    fn save(&self, dir: &Path) -> Result<(), EngineError> {
        let _ = dir;
        Err(EngineError::Backend(format!("backend {} does not support persistence", self.name())))
    }

    /// Export every indexed point's full-resolution coordinates, ordered by
    /// backend-internal id — the maintenance path compaction uses to
    /// rebuild an index from its live set. The default implementation
    /// reports the backend as non-exportable; every disk-backed adapter in
    /// this module overrides it by draining its page store.
    fn export_rows(&self) -> Result<DenseDataset, EngineError> {
        Err(EngineError::Backend(format!("backend {} does not support row export", self.name())))
    }
}

/// Drain a page store into a dense dataset, ordered by point id.
fn export_store_rows(store: &pagestore::PageStore) -> Result<DenseDataset, EngineError> {
    let dim = store.dim();
    let mut flat = vec![0.0; store.point_count() * dim];
    store
        .for_each_point(&mut |pid, coords| {
            let i = pid as usize;
            flat[i * dim..(i + 1) * dim].copy_from_slice(coords);
        })
        .map_err(|pid| {
            EngineError::Backend(format!("point {pid} has no address in the page file"))
        })?;
    DenseDataset::from_flat(dim, flat).map_err(|e| EngineError::Backend(e.to_string()))
}

/// Reject every option the calling backend does not support.
fn reject_unsupported(
    name: &str,
    options: &QueryOptions,
    supports_probability: bool,
    supports_budget: bool,
) -> Result<(), EngineError> {
    if options.probability.is_some() && !supports_probability {
        return Err(EngineError::UnsupportedOption {
            backend: name.to_string(),
            option: "a per-query approximation-probability override".to_string(),
        });
    }
    if options.candidate_budget.is_some() && !supports_budget {
        return Err(EngineError::UnsupportedOption {
            backend: name.to_string(),
            option: "a per-query candidate budget".to_string(),
        });
    }
    Ok(())
}

/// How a [`BrePartitionBackend`] searches.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BrePartitionMode {
    Exact,
    Approximate(ApproximateConfig),
}

/// The BrePartition index behind the [`SearchBackend`] trait, in either
/// exact (Algorithm 6) or approximate (ABP) mode.
///
/// The index is held behind an [`Arc`] so one build can serve several
/// backends (typically an exact and an approximate one) without duplicating
/// the transformed dataset and BB-forest; the `Into<Arc<_>>` constructors
/// accept an owned index or an existing `Arc` alike.
#[derive(Debug, Clone)]
pub struct BrePartitionBackend {
    index: Arc<BrePartitionIndex>,
    mode: BrePartitionMode,
    name: String,
}

impl BrePartitionBackend {
    /// Wrap an index for exact search.
    pub fn exact(index: impl Into<Arc<BrePartitionIndex>>) -> Self {
        Self { index: index.into(), mode: BrePartitionMode::Exact, name: "BP".to_string() }
    }

    /// Wrap an index for approximate search at the configured probability.
    pub fn approximate(
        index: impl Into<Arc<BrePartitionIndex>>,
        config: ApproximateConfig,
    ) -> Self {
        let name = format!("ABP(p={:.2})", config.probability);
        Self { index: index.into(), mode: BrePartitionMode::Approximate(config), name }
    }

    /// The wrapped index.
    pub fn index(&self) -> &BrePartitionIndex {
        &self.index
    }
}

impl SearchBackend for BrePartitionBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn new_scratch(&self) -> Scratch {
        Scratch::new(self.index.new_buffer_pool())
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        let before = scratch.pool.stats();
        let result = match &self.mode {
            BrePartitionMode::Exact => {
                self.index.knn_with_scratch(&mut scratch.pool, &mut scratch.kernel, query, k)
            }
            BrePartitionMode::Approximate(config) => self.index.knn_approximate_with_scratch(
                &mut scratch.pool,
                &mut scratch.kernel,
                query,
                k,
                config,
            ),
        }
        .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(BackendAnswer {
            neighbors: result.neighbors,
            candidates: result.stats.candidates,
            io: scratch.pool.stats().since(&before),
        })
    }

    fn knn_with_options(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        reject_unsupported(self.name(), options, true, false)?;
        let Some(p) = options.probability else {
            return self.knn(scratch, query, k);
        };
        // A probability override runs this query through the approximate
        // search at guarantee `p`, whatever the backend's default mode.
        let before = scratch.pool.stats();
        let config = ApproximateConfig::with_probability(p);
        let result = self
            .index
            .knn_approximate_with_scratch(&mut scratch.pool, &mut scratch.kernel, query, k, &config)
            .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(BackendAnswer {
            neighbors: result.neighbors,
            candidates: result.stats.candidates,
            io: scratch.pool.stats().since(&before),
        })
    }

    fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.index.save(dir).map_err(|e| EngineError::Backend(e.to_string()))
    }

    fn export_rows(&self) -> Result<DenseDataset, EngineError> {
        export_store_rows(self.index.forest().store())
    }
}

/// The disk-resident BB-tree baseline ("BBT") behind the trait.
#[derive(Debug, Clone)]
pub struct BBTreeBackend<B: DecomposableBregman + Send + Sync> {
    tree: DiskBBTree<B>,
    dim: usize,
    len: usize,
    /// Points in the fullest leaf; converts a per-query candidate budget
    /// into a whole-leaf visit budget.
    max_leaf_points: usize,
    /// Capacity of the buffer pools handed out by `new_scratch` (0 =
    /// unbuffered, the paper's per-query I/O accounting).
    scratch_pool_pages: usize,
}

impl<B: DecomposableBregman + Send + Sync> BBTreeBackend<B> {
    /// Build the tree over a dataset.
    pub fn build(
        divergence: B,
        dataset: &DenseDataset,
        tree_config: BBTreeConfig,
        store_config: PageStoreConfig,
    ) -> Self {
        let tree = DiskBBTree::build(divergence, dataset, tree_config, store_config);
        let max_leaf_points = max_leaf_points(&tree);
        Self {
            tree,
            dim: dataset.dim(),
            len: dataset.len(),
            max_leaf_points,
            scratch_pool_pages: 0,
        }
    }

    /// Open a tree saved with [`SearchBackend::save`] (or
    /// [`DiskBBTree::save`]).
    pub fn open(divergence: B, dir: &Path) -> Result<Self, EngineError> {
        let tree =
            DiskBBTree::open(divergence, dir).map_err(|e| EngineError::Backend(e.to_string()))?;
        let dim = tree.tree().dim();
        let len = tree.tree().len();
        let max_leaf_points = max_leaf_points(&tree);
        Ok(Self { tree, dim, len, max_leaf_points, scratch_pool_pages: 0 })
    }

    /// Hand out buffered scratch pools of `pages` pages (0 = unbuffered).
    pub fn with_scratch_pool_pages(mut self, pages: usize) -> Self {
        self.scratch_pool_pages = pages;
        self
    }

    /// The wrapped tree.
    pub fn tree(&self) -> &DiskBBTree<B> {
        &self.tree
    }
}

/// Size of the fullest leaf of a disk tree (at least 1).
fn max_leaf_points<B: DecomposableBregman>(tree: &DiskBBTree<B>) -> usize {
    tree.tree()
        .leaves_in_order()
        .into_iter()
        .map(|leaf| match &tree.tree().node(leaf).kind {
            NodeKind::Leaf { points } => points.len(),
            NodeKind::Internal { .. } => 0,
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

impl<B: DecomposableBregman + Send + Sync> SearchBackend for BBTreeBackend<B> {
    fn name(&self) -> &str {
        "BBT"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn new_scratch(&self) -> Scratch {
        Scratch::new(BufferPool::new(self.scratch_pool_pages))
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        check_dim(self.dim, query)?;
        let result = self
            .tree
            .knn_with_scratch(&mut scratch.pool, &mut scratch.kernel, query, k)
            .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(BackendAnswer {
            neighbors: result.neighbors.iter().map(|n| (n.id, n.distance)).collect(),
            candidates: result.search.candidates_examined as usize,
            io: result.io,
        })
    }

    fn knn_with_options(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        reject_unsupported(self.name(), options, false, true)?;
        let Some(budget) = options.candidate_budget else {
            return self.knn(scratch, query, k);
        };
        check_dim(self.dim, query)?;
        // Round the candidate budget up to whole leaves: the tree loads
        // leaves atomically, so the budget bounds leaf visits.
        let max_leaves = budget.div_ceil(self.max_leaf_points).max(1);
        let result = self
            .tree
            .knn_with_leaf_budget_scratch(
                &mut scratch.pool,
                &mut scratch.kernel,
                query,
                k,
                max_leaves,
            )
            .map_err(|e| EngineError::Backend(e.to_string()))?;
        Ok(BackendAnswer {
            neighbors: result.neighbors.iter().map(|n| (n.id, n.distance)).collect(),
            candidates: result.search.candidates_examined as usize,
            io: result.io,
        })
    }

    fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.tree.save(dir).map_err(|e| EngineError::Backend(e.to_string()))
    }

    fn export_rows(&self) -> Result<DenseDataset, EngineError> {
        export_store_rows(self.tree.store())
    }
}

/// The VA-file baseline ("VAF") behind the trait.
#[derive(Debug, Clone)]
pub struct VaFileBackend<B: DecomposableBregman + Send + Sync> {
    file: VaFile<B>,
    dim: usize,
    /// Capacity of the buffer pools handed out by `new_scratch` (0 =
    /// unbuffered, the paper's per-query I/O accounting).
    scratch_pool_pages: usize,
}

impl<B: DecomposableBregman + Send + Sync> VaFileBackend<B> {
    /// Build the VA-file over a dataset.
    pub fn build(divergence: B, dataset: &DenseDataset, config: VaFileConfig) -> Self {
        Self {
            file: VaFile::build(divergence, dataset, config),
            dim: dataset.dim(),
            scratch_pool_pages: 0,
        }
    }

    /// Open a VA-file saved with [`SearchBackend::save`] (or
    /// [`VaFile::save`]).
    pub fn open(divergence: B, dir: &Path) -> Result<Self, EngineError> {
        let file =
            VaFile::open(divergence, dir).map_err(|e| EngineError::Backend(e.to_string()))?;
        let dim = file.quantizer().dim();
        Ok(Self { file, dim, scratch_pool_pages: 0 })
    }

    /// Hand out buffered scratch pools of `pages` pages (0 = unbuffered).
    pub fn with_scratch_pool_pages(mut self, pages: usize) -> Self {
        self.scratch_pool_pages = pages;
        self
    }

    /// The wrapped VA-file.
    pub fn file(&self) -> &VaFile<B> {
        &self.file
    }
}

impl<B: DecomposableBregman + Send + Sync> SearchBackend for VaFileBackend<B> {
    fn name(&self) -> &str {
        "VAF"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.file.len()
    }

    fn new_scratch(&self) -> Scratch {
        Scratch::new(BufferPool::new(self.scratch_pool_pages))
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        check_dim(self.dim, query)?;
        let result =
            self.file.knn_with_scratch(&mut scratch.pool, &mut scratch.kernel, query, k, None);
        Ok(BackendAnswer {
            neighbors: result.neighbors,
            candidates: result.candidates,
            io: result.io,
        })
    }

    fn knn_with_options(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        reject_unsupported(self.name(), options, false, true)?;
        check_dim(self.dim, query)?;
        let result = self.file.knn_with_scratch(
            &mut scratch.pool,
            &mut scratch.kernel,
            query,
            k,
            options.candidate_budget,
        );
        Ok(BackendAnswer {
            neighbors: result.neighbors,
            candidates: result.candidates,
            io: result.io,
        })
    }

    fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.file.save(dir).map_err(|e| EngineError::Backend(e.to_string()))
    }

    fn export_rows(&self) -> Result<DenseDataset, EngineError> {
        export_store_rows(self.file.store())
    }
}

fn check_dim(expected: usize, query: &[f64]) -> Result<(), EngineError> {
    if query.len() != expected {
        return Err(EngineError::Backend(format!(
            "query dimensionality {} does not match index dimensionality {expected}",
            query.len()
        )));
    }
    Ok(())
}
