//! Engine error type.

/// Errors surfaced by the batch query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A backend failed while building or answering a query.
    Backend(String),
    /// A specific query in a batch failed; the batch is abandoned.
    Query {
        /// Index of the failing query within the batch.
        index: usize,
        /// The backend's error message.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Backend(message) => write!(f, "backend error: {message}"),
            EngineError::Query { index, message } => {
                write!(f, "query {index} failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_both_variants() {
        assert_eq!(EngineError::Backend("boom".into()).to_string(), "backend error: boom");
        let q = EngineError::Query { index: 3, message: "bad dim".into() };
        assert_eq!(q.to_string(), "query 3 failed: bad dim");
    }
}
