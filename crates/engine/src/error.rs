//! Engine error type.

/// Errors surfaced by the batch query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A backend failed while building or answering a query.
    Backend(String),
    /// A specific query in a batch failed; the batch is abandoned.
    Query {
        /// Index of the failing query within the batch.
        index: usize,
        /// The backend's error message.
        message: String,
    },
    /// The engine configuration is invalid (caught at construction, before
    /// any query runs).
    Config(String),
    /// A per-query option was set that the serving backend cannot honor
    /// (e.g. an approximation-probability override on the VA-file).
    UnsupportedOption {
        /// Backend label the option was sent to.
        backend: String,
        /// Human-readable description of the rejected option.
        option: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Backend(message) => write!(f, "backend error: {message}"),
            EngineError::Query { index, message } => {
                write!(f, "query {index} failed: {message}")
            }
            EngineError::Config(message) => write!(f, "invalid engine configuration: {message}"),
            EngineError::UnsupportedOption { backend, option } => {
                write!(f, "backend {backend} does not support {option}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_every_variant() {
        assert_eq!(EngineError::Backend("boom".into()).to_string(), "backend error: boom");
        let q = EngineError::Query { index: 3, message: "bad dim".into() };
        assert_eq!(q.to_string(), "query 3 failed: bad dim");
        let c = EngineError::Config("zero worker threads".into());
        assert!(c.to_string().contains("zero worker threads"));
        let u = EngineError::UnsupportedOption { backend: "VAF".into(), option: "p=0.9".into() };
        assert!(u.to_string().contains("VAF"));
        assert!(u.to_string().contains("p=0.9"));
    }
}
