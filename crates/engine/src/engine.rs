//! The concurrent batch query engine.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pagestore::{BufferPool, IoStats, SharedPageCache};
use telemetry::Registry;

use crate::backend::SearchBackend;
use crate::error::EngineError;
use crate::metrics::EngineMetrics;
use crate::report::{QueryOutcome, ThroughputReport};
use crate::request::EngineRequest;

/// Engine tuning knobs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `None` (the default) resolves to the machine's
    /// available parallelism. An explicit `Some(0)` is a misconfiguration
    /// rejected at engine construction.
    pub threads: Option<usize>,
    /// Reuse each worker's buffer pool across the queries it serves (warm
    /// cache). When `false` (the default) every query starts from a cold
    /// pool, which makes the per-query I/O counters — not just the neighbor
    /// sets — independent of how queries are scheduled onto threads, as in
    /// the paper's per-query measurements.
    pub reuse_scratch: bool,
}

impl EngineConfig {
    /// Use exactly `threads` workers. Passing `0` produces a configuration
    /// that [`QueryEngine::with_config`] rejects with
    /// [`EngineError::Config`] — use the default (auto) to size the pool
    /// from the machine instead.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Keep worker buffer pools warm across queries.
    pub fn with_warm_scratch(mut self) -> Self {
        self.reuse_scratch = true;
        self
    }

    /// Check the configuration for contradictions that would otherwise
    /// panic or silently degrade at query time.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.threads == Some(0) {
            return Err(EngineError::Config(
                "worker thread count must be at least 1 (omit with_threads to size \
                 the pool from the machine's parallelism)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// The worker-pool size to serve CPU-bound batches with: exactly the
/// machine's available parallelism.
///
/// This deliberately does **not** floor the count above the core count.
/// An earlier version floored it at 4 ("benign oversubscription", so
/// 1-thread-vs-pool rows contrasted even on small machines) — and the
/// benchmark record shows that oversubscription is anything but benign
/// for *tail* latency: on a 1-core machine, 4 workers time-share the CPU
/// and a query that loses the CPU waits out the other workers'
/// scheduler timeslices, so `BENCH_throughput.json` showed p99 jumping
/// from ~0.8 ms (1 thread) to ~12 ms (4 threads) on every backend while
/// QPS stayed flat. The effect reproduces with pure busy-work and no
/// engine code at all (p99 ≈ 4.9 ms at 2 threads, ≈ 13.9 ms at 4 — one
/// and three ~4 ms timeslices), and thread spawn/park measures at ~17 µs
/// per batch, so a persistent worker pool would not change it: the tail
/// is kernel CPU scheduling, not engine overhead. Since per-query
/// latency is measured inside each worker, queries themselves are
/// CPU-bound, and extra workers add preemption without adding
/// throughput, the recommendation is now never to exceed the hardware.
/// Callers who want to *study* oversubscription can still pass any
/// explicit count via [`EngineConfig::with_threads`].
pub fn recommended_pool_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Best-effort extraction of a panic payload's message (the `&str` or
/// `String` that `panic!` carries).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.as_str()
    } else {
        "non-string panic payload"
    }
}

/// The result of [`QueryEngine::run_batch`]: per-query outcomes (in query
/// order, independent of scheduling) plus the aggregated throughput report.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One outcome per query, in the order the queries were submitted.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate throughput and latency measurements.
    pub report: ThroughputReport,
}

/// A concurrent batch query engine over any [`SearchBackend`].
///
/// The engine shares one immutable index across a pool of worker threads;
/// each worker owns its scratch state (buffer pool), pulls query indices
/// from a shared atomic cursor and records its per-query outcomes locally,
/// so the only cross-thread synchronization on the hot path is one
/// `fetch_add` per query. Results are reassembled in submission order, which
/// makes the returned neighbor sets bit-identical regardless of the thread
/// count — the property the determinism tests pin down.
#[derive(Clone)]
pub struct QueryEngine {
    backend: Arc<dyn SearchBackend>,
    config: EngineConfig,
    metrics: EngineMetrics,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("backend", &self.backend.name())
            .field("config", &self.config)
            .finish()
    }
}

impl QueryEngine {
    /// An engine over `backend` with the default configuration (which is
    /// always valid).
    pub fn new(backend: Arc<dyn SearchBackend>) -> Self {
        Self::with_config(backend, EngineConfig::default())
            .expect("the default engine configuration is valid")
    }

    /// An engine with explicit configuration.
    ///
    /// The configuration is validated here, before any query runs: an
    /// explicit zero worker-thread count, or a warm-scratch request against
    /// a backend whose scratch pools cannot cache anything (capacity 0),
    /// returns [`EngineError::Config`] instead of panicking or silently
    /// serving with a degraded setup.
    pub fn with_config(
        backend: Arc<dyn SearchBackend>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        config.validate()?;
        if config.reuse_scratch && backend.new_scratch().pool.capacity() == 0 {
            return Err(EngineError::Config(format!(
                "warm scratch requested but backend {} serves zero-capacity (unbuffered) \
                 pools; a warm pool with no capacity caches nothing — configure the \
                 index with a non-zero buffer-pool size or drop with_warm_scratch",
                backend.name()
            )));
        }
        Ok(Self { backend, config, metrics: EngineMetrics::new() })
    }

    /// Convenience constructor boxing a concrete backend.
    pub fn over(backend: impl SearchBackend + 'static) -> Self {
        Self::new(Arc::new(backend))
    }

    /// The backend being served.
    pub fn backend(&self) -> &dyn SearchBackend {
        self.backend.as_ref()
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        match self.config.threads {
            Some(threads) => threads,
            None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }

    /// Physical I/O accumulated across every batch this engine has run.
    pub fn cumulative_io(&self) -> IoStats {
        self.metrics.io().snapshot()
    }

    /// The engine's shared telemetry (clones of this engine record into
    /// the same metrics).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Register this engine's metrics in `registry` under `prefix` — see
    /// [`EngineMetrics::bind`] for the resulting metric names.
    pub fn bind_telemetry(&self, registry: &Registry, prefix: &str) {
        self.metrics.bind(registry, prefix);
    }

    /// Answer one ad-hoc query outside a batch (fresh scratch).
    pub fn knn(&self, query: &[f64], k: usize) -> Result<QueryOutcome, EngineError> {
        let mut scratch = self.backend.new_scratch();
        scratch.pool.set_read_latency_sink(self.metrics.io_span().clone());
        let started = Instant::now();
        let answer = match self.backend.knn(&mut scratch, query, k) {
            Ok(answer) => answer,
            Err(error) => {
                self.metrics.errors().inc();
                return Err(error);
            }
        };
        let latency = started.elapsed();
        self.metrics.io().record(&answer.io);
        self.metrics.queries().inc();
        self.metrics.query_latency_ns().record_duration(latency);
        Ok(QueryOutcome {
            neighbors: answer.neighbors,
            candidates: answer.candidates,
            io: answer.io,
            latency_seconds: latency.as_secs_f64(),
        })
    }

    /// Execute a batch of uniform queries (same `k`, no per-query options)
    /// across the worker pool. Convenience wrapper over
    /// [`QueryEngine::run_requests`].
    pub fn run_batch<Q: AsRef<[f64]> + Sync>(
        &self,
        queries: &[Q],
        k: usize,
    ) -> Result<BatchResult, EngineError> {
        let requests: Vec<EngineRequest<'_>> =
            queries.iter().map(|q| EngineRequest::new(q.as_ref(), k)).collect();
        self.run_requests(&requests)
    }

    /// Execute a batch of per-query [`EngineRequest`]s across the worker
    /// pool. Each request carries its own `k` and
    /// [`QueryOptions`](crate::QueryOptions); rows are borrowed, not cloned.
    ///
    /// Returns per-query outcomes in submission order plus a
    /// [`ThroughputReport`] (whose `k` is the largest `k` in the batch). If
    /// any query fails, the whole batch is abandoned and the first error
    /// (by scheduling order) is returned.
    pub fn run_requests(&self, requests: &[EngineRequest<'_>]) -> Result<BatchResult, EngineError> {
        let n = requests.len();
        let threads = self.threads().max(1).min(n.max(1));
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<(usize, EngineError)>> = Mutex::new(None);
        let backend = self.backend.as_ref();
        let reuse_scratch = self.config.reuse_scratch;
        // Warm mode shares ONE scan-resistant cache across every worker of
        // the batch: a page faulted in by any worker is a hit for all of
        // them, so the batch-wide miss count approaches the working-set
        // size instead of paying it once per worker. Each handle keeps its
        // own IoStats, so per-query counters still attribute correctly.
        let shared_cache =
            reuse_scratch.then(|| SharedPageCache::new(backend.new_scratch().pool.capacity()));

        let started = Instant::now();
        let mut per_thread: Vec<Vec<(usize, QueryOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let abort = &abort;
                    let first_error = &first_error;
                    let shared_cache = &shared_cache;
                    let metrics = &self.metrics;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, QueryOutcome)> = Vec::new();
                        let mut scratch = backend.new_scratch();
                        if let Some(cache) = shared_cache {
                            scratch.pool = BufferPool::with_shared_cache(cache.clone());
                        }
                        scratch.pool.set_read_latency_sink(metrics.io_span().clone());
                        let mut scratch_used = false;
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= n || abort.load(Ordering::Relaxed) {
                                break;
                            }
                            // Cold mode: every query starts from a fresh
                            // pool so its IoStats cannot depend on
                            // scheduling. Only the pool is replaced — the
                            // prepared-query kernel buffers carry no
                            // observable state, so they stay warm and the
                            // worker performs no per-query allocation for
                            // gradients or decoded candidates.
                            if !reuse_scratch && scratch_used {
                                scratch.pool = backend.new_scratch().pool;
                                scratch.pool.set_read_latency_sink(metrics.io_span().clone());
                            }
                            scratch_used = true;
                            let request = &requests[index];
                            let query_started = Instant::now();
                            // A panicking backend must not unwind through
                            // the scope and poison the whole batch: catch it
                            // at the query boundary and surface it through
                            // the same first-error machinery as a typed
                            // failure, tagged with the query's index.
                            let attempt =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    backend.knn_with_options(
                                        &mut scratch,
                                        request.query,
                                        request.k,
                                        &request.options,
                                    )
                                }))
                                .unwrap_or_else(|payload| {
                                    Err(EngineError::Backend(format!(
                                        "query worker panicked: {}",
                                        panic_message(payload.as_ref())
                                    )))
                                });
                            match attempt {
                                Ok(answer) => {
                                    let latency = query_started.elapsed();
                                    metrics.queries().inc();
                                    metrics.query_latency_ns().record_duration(latency);
                                    local.push((
                                        index,
                                        QueryOutcome {
                                            neighbors: answer.neighbors,
                                            candidates: answer.candidates,
                                            io: answer.io,
                                            latency_seconds: latency.as_secs_f64(),
                                        },
                                    ));
                                }
                                Err(error) => {
                                    let mut slot =
                                        first_error.lock().unwrap_or_else(|e| e.into_inner());
                                    match &*slot {
                                        Some((held, _)) if *held <= index => {}
                                        _ => *slot = Some((index, error)),
                                    }
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("engine worker panicked")).collect()
        });
        let wall = started.elapsed();
        let wall_seconds = wall.as_secs_f64();

        // Queries completed before an abort performed real page reads, so
        // their I/O counts toward the engine totals even on a failed batch.
        for locals in per_thread.iter() {
            for (_, outcome) in locals.iter() {
                self.metrics.io().record(&outcome.io);
            }
        }
        // Backend failures gain the failing query's index; typed errors
        // (unsupported options, config) pass through unchanged so callers
        // can match on them identically in the single-query and batch paths.
        if let Some((index, error)) = first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            self.metrics.errors().inc();
            return Err(match error {
                EngineError::Backend(message) => EngineError::Query { index, message },
                other => other,
            });
        }
        self.metrics.batches().inc();
        self.metrics.batch_wall_ns().record_duration(wall);

        let mut slots: Vec<Option<QueryOutcome>> = vec![None; n];
        for locals in per_thread.iter_mut() {
            for (index, outcome) in locals.drain(..) {
                slots[index] = Some(outcome);
            }
        }
        let outcomes: Vec<QueryOutcome> =
            slots.into_iter().map(|s| s.expect("every query produced an outcome")).collect();
        let report_k = requests.iter().map(|r| r.k).max().unwrap_or(0);
        let report = ThroughputReport::from_outcomes(
            backend.name(),
            report_k,
            threads,
            wall_seconds,
            &outcomes,
        );
        Ok(BatchResult { outcomes, report })
    }
}
