//! Concurrent batch query engine for the BrePartition workspace.
//!
//! The paper's evaluation (and the seed of this repository) issues queries
//! one at a time; real retrieval workloads — speech retrieval, image
//! embedding search — arrive as *streams of query batches*. This crate adds
//! the serving layer:
//!
//! * [`SearchBackend`] — one object-safe trait over every index in the
//!   workspace: BrePartition exact ([`BrePartitionBackend::exact`]), the
//!   approximate extension ([`BrePartitionBackend::approximate`]), the
//!   BB-tree baseline ([`BBTreeBackend`]) and the VA-file baseline
//!   ([`VaFileBackend`]). Backends are immutable during search; all mutable
//!   per-query state lives in a caller-owned [`Scratch`].
//! * [`QueryEngine`] — fans a batch out over a pool of worker threads. Each
//!   worker owns its scratch (buffer pool), pulls query indices from an
//!   atomic cursor and buffers outcomes locally; per-query results are
//!   reassembled in submission order, so neighbor sets are bit-identical
//!   for 1 thread and N threads.
//! * [`ThroughputReport`] — QPS, latency percentiles (p50/p95/p99),
//!   candidate counts and physical I/O aggregated over the batch, the
//!   numbers a serving deployment is tuned against.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use bregman::{DenseDataset, DivergenceKind};
//! use brepartition_core::BrePartitionConfig;
//! use brepartition_engine::{BrePartitionBackend, EngineConfig, QueryEngine};
//!
//! let rows: Vec<Vec<f64>> = (0..500)
//!     .map(|i| (0..16).map(|j| 1.0 + ((i * 7 + j * 3) % 23) as f64).collect())
//!     .collect();
//! let data = DenseDataset::from_rows(&rows).unwrap();
//! let backend = BrePartitionBackend::build_exact(
//!     DivergenceKind::ItakuraSaito,
//!     &data,
//!     &BrePartitionConfig::default().with_partitions(4),
//! )
//! .unwrap();
//! let engine = QueryEngine::with_config(Arc::new(backend), EngineConfig::default().with_threads(4));
//! let queries: Vec<Vec<f64>> = (0..64).map(|i| rows[i * 7 % rows.len()].clone()).collect();
//! let batch = engine.run_batch(&queries, 10).unwrap();
//! println!("{}", batch.report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
#[allow(clippy::module_inception)]
pub mod engine;
pub mod error;
pub mod report;

pub use backend::{
    bbtree_backend_for_kind, bbtree_backend_open_for_kind, vafile_backend_for_kind,
    vafile_backend_open_for_kind, BBTreeBackend, BackendAnswer, BrePartitionBackend, Scratch,
    SearchBackend, VaFileBackend,
};
pub use engine::{recommended_pool_threads, BatchResult, EngineConfig, QueryEngine};
pub use error::EngineError;
pub use report::{LatencySummary, QueryOutcome, ThroughputReport};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bbtree::BBTreeConfig;
    use bregman::{DivergenceKind, ItakuraSaito};
    use brepartition_core::{ApproximateConfig, BrePartitionConfig, BrePartitionIndex};
    use datagen::HierarchicalSpec;
    use pagestore::PageStoreConfig;
    use vafile::VaFileConfig;

    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn backends_are_shareable_across_threads() {
        assert_send_sync::<BrePartitionIndex>();
        assert_send_sync::<BrePartitionBackend>();
        assert_send_sync::<BBTreeBackend<ItakuraSaito>>();
        assert_send_sync::<VaFileBackend<ItakuraSaito>>();
        assert_send_sync::<QueryEngine>();
    }

    fn workload() -> (bregman::DenseDataset, Vec<Vec<f64>>) {
        let data =
            HierarchicalSpec { n: 400, dim: 16, clusters: 8, blocks: 4, ..Default::default() }
                .generate();
        let queries: Vec<Vec<f64>> =
            (0..32).map(|i| data.row(i * 11 % data.len()).to_vec()).collect();
        (data, queries)
    }

    #[test]
    fn engine_matches_sequential_search_for_every_backend() {
        let (data, queries) = workload();
        let kind = DivergenceKind::ItakuraSaito;
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(4096);
        let index = Arc::new(BrePartitionIndex::build(kind, &data, &config).unwrap());

        let backends: Vec<Box<dyn SearchBackend>> = vec![
            Box::new(BrePartitionBackend::exact(index.clone())),
            Box::new(BrePartitionBackend::approximate(
                index.clone(),
                ApproximateConfig::with_probability(0.95),
            )),
            bbtree_backend_for_kind(
                kind,
                &data,
                BBTreeConfig::with_leaf_capacity(16),
                PageStoreConfig::with_page_size(4096),
            ),
            vafile_backend_for_kind(kind, &data, VaFileConfig::default()),
        ];
        for backend in backends {
            let name = backend.name().to_string();
            let backend: Arc<dyn SearchBackend> = backend.into();
            // Sequential reference: drive the backend directly, one query at
            // a time on this thread.
            let reference: Vec<_> = queries
                .iter()
                .map(|q| {
                    let mut scratch = backend.new_scratch();
                    backend.knn(&mut scratch, q, 5).unwrap().neighbors
                })
                .collect();
            let engine = QueryEngine::with_config(backend, EngineConfig::default().with_threads(4));
            let batch = engine.run_batch(&queries, 5).unwrap();
            assert_eq!(batch.outcomes.len(), queries.len());
            for (outcome, expected) in batch.outcomes.iter().zip(reference.iter()) {
                assert_eq!(&outcome.neighbors, expected, "backend {name}");
            }
            assert_eq!(batch.report.queries, queries.len());
            assert!(batch.report.wall_seconds > 0.0);
            assert!(batch.report.qps > 0.0);
        }
    }

    #[test]
    fn cold_scratch_makes_io_schedule_independent() {
        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(2048);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let backend = Arc::new(BrePartitionBackend::exact(index));
        let one =
            QueryEngine::with_config(backend.clone(), EngineConfig::default().with_threads(1));
        let four = QueryEngine::with_config(backend, EngineConfig::default().with_threads(4));
        let a = one.run_batch(&queries, 8).unwrap();
        let b = four.run_batch(&queries, 8).unwrap();
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.neighbors, y.neighbors);
            assert_eq!(x.io, y.io, "cold-scratch I/O must not depend on scheduling");
            assert_eq!(x.candidates, y.candidates);
        }
        assert_eq!(a.report.io, b.report.io);
    }

    #[test]
    fn cumulative_io_tracks_batches() {
        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::over(BrePartitionBackend::exact(index));
        assert_eq!(engine.cumulative_io(), pagestore::IoStats::default());
        let batch = engine.run_batch(&queries, 3).unwrap();
        assert_eq!(engine.cumulative_io(), batch.report.io);
        let single = engine.knn(&queries[0], 3).unwrap();
        assert_eq!(single.neighbors, batch.outcomes[0].neighbors);
        assert!(engine.cumulative_io().pages_read > batch.report.io.pages_read);
    }

    #[test]
    fn dimension_mismatch_surfaces_as_query_error() {
        let (data, _) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::over(BrePartitionBackend::exact(index));
        let bad = vec![vec![1.0, 2.0]];
        match engine.run_batch(&bad, 3) {
            Err(EngineError::Query { index: 0, .. }) => {}
            other => panic!("expected query error, got {other:?}"),
        }
    }

    #[test]
    fn failed_batch_still_accounts_completed_queries_io() {
        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(2048);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::with_config(
            Arc::new(BrePartitionBackend::exact(index)),
            EngineConfig::default().with_threads(1),
        );
        // Two valid queries run (and read pages) before the malformed third
        // aborts the batch.
        let mixed = vec![queries[0].clone(), queries[1].clone(), vec![1.0, 2.0]];
        match engine.run_batch(&mixed, 5) {
            Err(EngineError::Query { index: 2, .. }) => {}
            other => panic!("expected query error, got {other:?}"),
        }
        assert!(engine.cumulative_io().pages_read > 0, "completed queries' I/O must count");
    }

    #[test]
    fn backends_opened_from_disk_serve_identical_batches() {
        let (data, queries) = workload();
        let kind = DivergenceKind::ItakuraSaito;
        let root =
            std::env::temp_dir().join(format!("brepartition-engine-test-{}", std::process::id()));
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(2048);
        let index = Arc::new(BrePartitionIndex::build(kind, &data, &config).unwrap());

        // Save each index once…
        BrePartitionBackend::exact(index.clone()).save(&root.join("bp")).unwrap();
        let bbt_built = bbtree_backend_for_kind(
            kind,
            &data,
            BBTreeConfig::with_leaf_capacity(16),
            PageStoreConfig::with_page_size(2048),
        );
        let bbt_concrete = BBTreeBackend::build(
            ItakuraSaito,
            &data,
            BBTreeConfig::with_leaf_capacity(16),
            PageStoreConfig::with_page_size(2048),
        );
        bbt_concrete.save(&root.join("bbt")).unwrap();
        let vaf_concrete = VaFileBackend::build(ItakuraSaito, &data, VaFileConfig::default());
        vaf_concrete.save(&root.join("vaf")).unwrap();

        // …and pair every built backend with its reopened twin.
        let pairs: Vec<(Arc<dyn SearchBackend>, Arc<dyn SearchBackend>)> = vec![
            (
                Arc::new(BrePartitionBackend::exact(index.clone())),
                Arc::new(BrePartitionBackend::open_exact(&root.join("bp")).unwrap()),
            ),
            (
                Arc::new(BrePartitionBackend::approximate(
                    index,
                    ApproximateConfig::with_probability(0.9),
                )),
                Arc::new(
                    BrePartitionBackend::open_approximate(
                        &root.join("bp"),
                        ApproximateConfig::with_probability(0.9),
                    )
                    .unwrap(),
                ),
            ),
            (
                bbt_built.into(),
                bbtree_backend_open_for_kind(kind, &root.join("bbt")).unwrap().into(),
            ),
            (
                Arc::new(vaf_concrete),
                vafile_backend_open_for_kind(kind, &root.join("vaf")).unwrap().into(),
            ),
        ];
        for (built, reopened) in pairs {
            let name = built.name().to_string();
            assert_eq!(built.len(), reopened.len(), "{name}");
            assert_eq!(built.dim(), reopened.dim(), "{name}");
            let a = QueryEngine::with_config(built, EngineConfig::default().with_threads(2))
                .run_batch(&queries, 6)
                .unwrap();
            let b = QueryEngine::with_config(reopened, EngineConfig::default().with_threads(2))
                .run_batch(&queries, 6)
                .unwrap();
            for (qi, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
                assert_eq!(x.neighbors, y.neighbors, "{name} query {qi}");
                assert_eq!(x.io, y.io, "{name} query {qi}: I/O must survive reopening");
                assert_eq!(x.candidates, y.candidates, "{name} query {qi}");
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn opening_a_missing_directory_is_a_backend_error() {
        let missing = std::env::temp_dir()
            .join(format!("brepartition-engine-missing-{}", std::process::id()));
        assert!(matches!(BrePartitionBackend::open_exact(&missing), Err(EngineError::Backend(_))));
        assert!(bbtree_backend_open_for_kind(DivergenceKind::ItakuraSaito, &missing).is_err());
        assert!(vafile_backend_open_for_kind(DivergenceKind::ItakuraSaito, &missing).is_err());
    }

    #[test]
    fn empty_batch_is_ok() {
        let (data, _) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::over(BrePartitionBackend::exact(index));
        let empty: Vec<Vec<f64>> = Vec::new();
        let batch = engine.run_batch(&empty, 3).unwrap();
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.report.queries, 0);
    }
}
