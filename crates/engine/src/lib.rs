//! Concurrent batch query engine for the BrePartition workspace.
//!
//! The paper's evaluation (and the seed of this repository) issues queries
//! one at a time; real retrieval workloads — speech retrieval, image
//! embedding search — arrive as *streams of query batches*. This crate adds
//! the serving layer:
//!
//! * [`SearchBackend`] — one object-safe trait over every index in the
//!   workspace: BrePartition exact ([`BrePartitionBackend::exact`]), the
//!   approximate extension ([`BrePartitionBackend::approximate`]), the
//!   BB-tree baseline ([`BBTreeBackend`]) and the VA-file baseline
//!   ([`VaFileBackend`]). Backends are immutable during search; all mutable
//!   per-query state lives in a caller-owned [`Scratch`].
//! * [`QueryEngine`] — fans a batch out over a pool of worker threads. Each
//!   worker owns its scratch (buffer pool), pulls query indices from an
//!   atomic cursor and buffers outcomes locally; per-query results are
//!   reassembled in submission order, so neighbor sets are bit-identical
//!   for 1 thread and N threads. Batches are submitted either as uniform
//!   `(queries, k)` pairs ([`QueryEngine::run_batch`]) or as per-query
//!   [`EngineRequest`]s carrying their own `k` and [`QueryOptions`]
//!   ([`QueryEngine::run_requests`]) over borrowed rows.
//! * [`DeltaOverlayBackend`] — online mutability for batch serving: a
//!   [`SearchBackend`] that merges a static backend with a frozen snapshot
//!   of a [`DeltaSegment`](brepartition_core::DeltaSegment) (inserted rows
//!   scanned exactly, tombstones filtering both sides), so every query in a
//!   batch sees the same consistent view of the mutable index.
//! * [`ShardedEngine`] — scatter-gather across N shard backends behind
//!   **one** worker budget ([`split_thread_budget`] divides the budget
//!   across shards instead of multiplying it), with
//!   [`merge_shard_outcomes`] gathering per-shard top-k lists by the same
//!   `(distance, id)` order the overlay uses — the substrate of the
//!   façade's `ShardedIndex`.
//! * [`ThroughputReport`] — QPS, latency percentiles (p50/p95/p99),
//!   candidate counts and physical I/O aggregated over the batch, the
//!   numbers a serving deployment is tuned against; serializable to stable
//!   JSON ([`ThroughputReport::to_json`]) for cross-PR diffing.
//!
//! Applications normally construct backends through the spec-driven façade
//! in the root `brepartition` crate (`IndexSpec` → `Index::build` /
//! `Index::open`) rather than the per-method constructors here.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use bregman::{DenseDataset, DivergenceKind};
//! use brepartition_core::{BrePartitionConfig, BrePartitionIndex};
//! use brepartition_engine::{BrePartitionBackend, EngineConfig, QueryEngine};
//!
//! let rows: Vec<Vec<f64>> = (0..500)
//!     .map(|i| (0..16).map(|j| 1.0 + ((i * 7 + j * 3) % 23) as f64).collect())
//!     .collect();
//! let data = DenseDataset::from_rows(&rows).unwrap();
//! let index = BrePartitionIndex::build(
//!     DivergenceKind::ItakuraSaito,
//!     &data,
//!     &BrePartitionConfig::default().with_partitions(4),
//! )
//! .unwrap();
//! let engine = QueryEngine::with_config(
//!     Arc::new(BrePartitionBackend::exact(index)),
//!     EngineConfig::default().with_threads(4),
//! )
//! .unwrap();
//! let queries: Vec<Vec<f64>> = (0..64).map(|i| rows[i * 7 % rows.len()].clone()).collect();
//! let batch = engine.run_batch(&queries, 10).unwrap();
//! println!("{}", batch.report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
#[allow(clippy::module_inception)]
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod overlay;
pub mod report;
pub mod request;
pub mod shard;

pub use backend::{
    BBTreeBackend, BackendAnswer, BrePartitionBackend, Scratch, SearchBackend, VaFileBackend,
};
pub use engine::{recommended_pool_threads, BatchResult, EngineConfig, QueryEngine};
pub use error::EngineError;
pub use fault::{FaultInjector, FaultPlan, FaultState};
pub use metrics::EngineMetrics;
pub use overlay::DeltaOverlayBackend;
pub use report::{LatencySummary, QueryOutcome, ThroughputReport};
pub use request::{EngineRequest, QueryOptions};
pub use shard::{
    merge_neighbor_lists, merge_shard_outcomes, split_thread_budget, BreakerState, FanoutPolicy,
    ShardFailure, ShardHealth, ShardedEngine, ThreadSplit,
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bbtree::BBTreeConfig;
    use bregman::{DivergenceKind, ItakuraSaito};
    use brepartition_core::{ApproximateConfig, BrePartitionConfig, BrePartitionIndex};
    use datagen::HierarchicalSpec;
    use pagestore::PageStoreConfig;
    use vafile::VaFileConfig;

    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn backends_are_shareable_across_threads() {
        assert_send_sync::<BrePartitionIndex>();
        assert_send_sync::<BrePartitionBackend>();
        assert_send_sync::<BBTreeBackend<ItakuraSaito>>();
        assert_send_sync::<VaFileBackend<ItakuraSaito>>();
        assert_send_sync::<QueryEngine>();
    }

    fn workload() -> (bregman::DenseDataset, Vec<Vec<f64>>) {
        let data =
            HierarchicalSpec { n: 400, dim: 16, clusters: 8, blocks: 4, ..Default::default() }
                .generate();
        let queries: Vec<Vec<f64>> =
            (0..32).map(|i| data.row(i * 11 % data.len()).to_vec()).collect();
        (data, queries)
    }

    #[test]
    fn engine_matches_sequential_search_for_every_backend() {
        let (data, queries) = workload();
        let kind = DivergenceKind::ItakuraSaito;
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(4096);
        let index = Arc::new(BrePartitionIndex::build(kind, &data, &config).unwrap());

        let backends: Vec<Box<dyn SearchBackend>> = vec![
            Box::new(BrePartitionBackend::exact(index.clone())),
            Box::new(BrePartitionBackend::approximate(
                index.clone(),
                ApproximateConfig::with_probability(0.95),
            )),
            Box::new(BBTreeBackend::build(
                ItakuraSaito,
                &data,
                BBTreeConfig::with_leaf_capacity(16),
                PageStoreConfig::with_page_size(4096),
            )),
            Box::new(VaFileBackend::build(ItakuraSaito, &data, VaFileConfig::default())),
        ];
        for backend in backends {
            let name = backend.name().to_string();
            let backend: Arc<dyn SearchBackend> = backend.into();
            // Sequential reference: drive the backend directly, one query at
            // a time on this thread.
            let reference: Vec<_> = queries
                .iter()
                .map(|q| {
                    let mut scratch = backend.new_scratch();
                    backend.knn(&mut scratch, q, 5).unwrap().neighbors
                })
                .collect();
            let engine =
                QueryEngine::with_config(backend, EngineConfig::default().with_threads(4)).unwrap();
            let batch = engine.run_batch(&queries, 5).unwrap();
            assert_eq!(batch.outcomes.len(), queries.len());
            for (outcome, expected) in batch.outcomes.iter().zip(reference.iter()) {
                assert_eq!(&outcome.neighbors, expected, "backend {name}");
            }
            assert_eq!(batch.report.queries, queries.len());
            assert!(batch.report.wall_seconds > 0.0);
            assert!(batch.report.qps > 0.0);
        }
    }

    #[test]
    fn per_query_k_and_options_are_honored() {
        let (data, queries) = workload();
        let kind = DivergenceKind::ItakuraSaito;
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(4096);
        let index = Arc::new(BrePartitionIndex::build(kind, &data, &config).unwrap());
        let backend = Arc::new(BrePartitionBackend::exact(index.clone()));
        let engine =
            QueryEngine::with_config(backend, EngineConfig::default().with_threads(4)).unwrap();

        // Heterogeneous ks: query i asks for (i % 7) + 1 neighbors.
        let requests: Vec<EngineRequest<'_>> =
            queries.iter().enumerate().map(|(i, q)| EngineRequest::new(q, (i % 7) + 1)).collect();
        let batch = engine.run_requests(&requests).unwrap();
        for (i, outcome) in batch.outcomes.iter().enumerate() {
            assert_eq!(outcome.neighbors.len(), (i % 7) + 1, "query {i} ignored its own k");
            let expected = index.knn(requests[i].query, requests[i].k).unwrap().neighbors;
            assert_eq!(outcome.neighbors, expected, "query {i}");
        }
        assert_eq!(batch.report.k, 7, "report pins the largest k of the batch");

        // A probability override on the exact backend runs that query
        // through the approximate search.
        let approx = ApproximateConfig::with_probability(0.9);
        let override_req = EngineRequest::new(&queries[0], 10)
            .with_options(QueryOptions::none().with_probability(0.9));
        let overridden = engine.run_requests(&[override_req]).unwrap();
        let expected = index.knn_approximate(&queries[0], 10, &approx).unwrap();
        assert_eq!(overridden.outcomes[0].neighbors, expected.neighbors);
    }

    #[test]
    fn unsupported_options_are_typed_errors_not_silent() {
        let (data, queries) = workload();
        let kind = DivergenceKind::ItakuraSaito;
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(kind, &data, &config).unwrap();

        // Candidate budgets are not supported by BrePartition backends; the
        // batch path surfaces the same typed error as a single query would.
        let bp = QueryEngine::over(BrePartitionBackend::exact(index));
        let req = EngineRequest::new(&queries[0], 5)
            .with_options(QueryOptions::none().with_candidate_budget(10));
        match bp.run_requests(&[req]) {
            Err(EngineError::UnsupportedOption { backend, option }) => {
                assert_eq!(backend, "BP");
                assert!(option.contains("candidate budget"), "{option}");
            }
            other => panic!("expected unsupported-option error, got {other:?}"),
        }

        // Probability overrides are not supported by the VA-file.
        let vaf =
            QueryEngine::over(VaFileBackend::build(ItakuraSaito, &data, VaFileConfig::default()));
        let req = EngineRequest::new(&queries[0], 5)
            .with_options(QueryOptions::none().with_probability(0.9));
        match vaf.run_requests(&[req]) {
            Err(EngineError::UnsupportedOption { backend, option }) => {
                assert_eq!(backend, "VAF");
                assert!(option.contains("probability"), "{option}");
            }
            other => panic!("expected unsupported-option error, got {other:?}"),
        }
    }

    #[test]
    fn candidate_budget_bounds_baseline_backends() {
        let (data, queries) = workload();
        let bbt = BBTreeBackend::build(
            ItakuraSaito,
            &data,
            BBTreeConfig::with_leaf_capacity(16),
            PageStoreConfig::with_page_size(2048),
        );
        let vaf = VaFileBackend::build(ItakuraSaito, &data, VaFileConfig::default());
        for backend in
            [Arc::new(bbt) as Arc<dyn SearchBackend>, Arc::new(vaf) as Arc<dyn SearchBackend>]
        {
            let name = backend.name().to_string();
            let mut scratch = backend.new_scratch();
            let unbounded = backend.knn(&mut scratch, &queries[0], 8).unwrap();
            let mut scratch = backend.new_scratch();
            let bounded = backend
                .knn_with_options(
                    &mut scratch,
                    &queries[0],
                    8,
                    &QueryOptions::none().with_candidate_budget(16),
                )
                .unwrap();
            assert!(
                bounded.io.pages_read <= unbounded.io.pages_read,
                "{name}: a budget must not read more pages than the exact search"
            );
            assert!(bounded.neighbors.len() <= 8, "{name}");
        }
    }

    #[test]
    fn invalid_configurations_are_rejected_at_construction() {
        let (data, _) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let backend: Arc<dyn SearchBackend> = Arc::new(BrePartitionBackend::exact(index));

        // Explicit zero worker threads.
        match QueryEngine::with_config(backend.clone(), EngineConfig::default().with_threads(0)) {
            Err(EngineError::Config(message)) => assert!(message.contains("at least 1")),
            other => panic!("expected config error, got {other:?}"),
        }
        assert!(EngineConfig::default().with_threads(0).validate().is_err());
        assert!(EngineConfig::default().validate().is_ok());

        // Warm scratch over a backend serving zero-capacity pools (the
        // default BrePartitionConfig has buffer_pool_pages = 0) silently
        // caches nothing — reject it.
        match QueryEngine::with_config(
            backend.clone(),
            EngineConfig::default().with_threads(2).with_warm_scratch(),
        ) {
            Err(EngineError::Config(message)) => assert!(message.contains("warm"), "{message}"),
            other => panic!("expected config error, got {other:?}"),
        }

        // The same warm-scratch request over a buffered pool is fine.
        let buffered = BrePartitionIndex::build(
            DivergenceKind::ItakuraSaito,
            &data,
            &config.with_buffer_pool_pages(32),
        )
        .unwrap();
        assert!(QueryEngine::with_config(
            Arc::new(BrePartitionBackend::exact(buffered)),
            EngineConfig::default().with_threads(2).with_warm_scratch(),
        )
        .is_ok());
    }

    #[test]
    fn cold_scratch_makes_io_schedule_independent() {
        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(2048);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let backend = Arc::new(BrePartitionBackend::exact(index));
        let one =
            QueryEngine::with_config(backend.clone(), EngineConfig::default().with_threads(1))
                .unwrap();
        let four =
            QueryEngine::with_config(backend, EngineConfig::default().with_threads(4)).unwrap();
        let a = one.run_batch(&queries, 8).unwrap();
        let b = four.run_batch(&queries, 8).unwrap();
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.neighbors, y.neighbors);
            assert_eq!(x.io, y.io, "cold-scratch I/O must not depend on scheduling");
            assert_eq!(x.candidates, y.candidates);
        }
        assert_eq!(a.report.io, b.report.io);
    }

    #[test]
    fn cumulative_io_tracks_batches() {
        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::over(BrePartitionBackend::exact(index));
        assert_eq!(engine.cumulative_io(), pagestore::IoStats::default());
        let batch = engine.run_batch(&queries, 3).unwrap();
        assert_eq!(engine.cumulative_io(), batch.report.io);
        let single = engine.knn(&queries[0], 3).unwrap();
        assert_eq!(single.neighbors, batch.outcomes[0].neighbors);
        assert!(engine.cumulative_io().pages_read > batch.report.io.pages_read);
    }

    #[test]
    fn dimension_mismatch_surfaces_as_query_error() {
        let (data, _) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::over(BrePartitionBackend::exact(index));
        let bad = vec![vec![1.0, 2.0]];
        match engine.run_batch(&bad, 3) {
            Err(EngineError::Query { index: 0, .. }) => {}
            other => panic!("expected query error, got {other:?}"),
        }
    }

    #[test]
    fn failed_batch_still_accounts_completed_queries_io() {
        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(2048);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::with_config(
            Arc::new(BrePartitionBackend::exact(index)),
            EngineConfig::default().with_threads(1),
        )
        .unwrap();
        // Two valid queries run (and read pages) before the malformed third
        // aborts the batch.
        let mixed = vec![queries[0].clone(), queries[1].clone(), vec![1.0, 2.0]];
        match engine.run_batch(&mixed, 5) {
            Err(EngineError::Query { index: 2, .. }) => {}
            other => panic!("expected query error, got {other:?}"),
        }
        assert!(engine.cumulative_io().pages_read > 0, "completed queries' I/O must count");
    }

    #[test]
    fn backends_opened_from_disk_serve_identical_batches() {
        let (data, queries) = workload();
        let kind = DivergenceKind::ItakuraSaito;
        let root =
            std::env::temp_dir().join(format!("brepartition-engine-test-{}", std::process::id()));
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(2048);
        let index = Arc::new(BrePartitionIndex::build(kind, &data, &config).unwrap());

        // Save each index once (through the trait, as the façade does)…
        BrePartitionBackend::exact(index.clone()).save(&root.join("bp")).unwrap();
        let bbt_concrete = BBTreeBackend::build(
            ItakuraSaito,
            &data,
            BBTreeConfig::with_leaf_capacity(16),
            PageStoreConfig::with_page_size(2048),
        );
        bbt_concrete.save(&root.join("bbt")).unwrap();
        let vaf_concrete = VaFileBackend::build(ItakuraSaito, &data, VaFileConfig::default());
        vaf_concrete.save(&root.join("vaf")).unwrap();

        // …and pair every built backend with its reopened twin.
        let reopened_bp = Arc::new(BrePartitionIndex::open(&root.join("bp")).unwrap());
        let pairs: Vec<(Arc<dyn SearchBackend>, Arc<dyn SearchBackend>)> = vec![
            (
                Arc::new(BrePartitionBackend::exact(index.clone())),
                Arc::new(BrePartitionBackend::exact(reopened_bp.clone())),
            ),
            (
                Arc::new(BrePartitionBackend::approximate(
                    index,
                    ApproximateConfig::with_probability(0.9),
                )),
                Arc::new(BrePartitionBackend::approximate(
                    reopened_bp,
                    ApproximateConfig::with_probability(0.9),
                )),
            ),
            (
                Arc::new(bbt_concrete),
                Arc::new(BBTreeBackend::open(ItakuraSaito, &root.join("bbt")).unwrap()),
            ),
            (
                Arc::new(vaf_concrete),
                Arc::new(VaFileBackend::open(ItakuraSaito, &root.join("vaf")).unwrap()),
            ),
        ];
        for (built, reopened) in pairs {
            let name = built.name().to_string();
            assert_eq!(built.len(), reopened.len(), "{name}");
            assert_eq!(built.dim(), reopened.dim(), "{name}");
            let a = QueryEngine::with_config(built, EngineConfig::default().with_threads(2))
                .unwrap()
                .run_batch(&queries, 6)
                .unwrap();
            let b = QueryEngine::with_config(reopened, EngineConfig::default().with_threads(2))
                .unwrap()
                .run_batch(&queries, 6)
                .unwrap();
            for (qi, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
                assert_eq!(x.neighbors, y.neighbors, "{name} query {qi}");
                assert_eq!(x.io, y.io, "{name} query {qi}: I/O must survive reopening");
                assert_eq!(x.candidates, y.candidates, "{name} query {qi}");
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// A probe backend that panics on any query whose first coordinate is
    /// negative, and answers everything else with one fixed neighbor.
    #[derive(Debug)]
    struct PanickingProbe;

    impl SearchBackend for PanickingProbe {
        fn name(&self) -> &str {
            "panic-probe"
        }
        fn dim(&self) -> usize {
            2
        }
        fn len(&self) -> usize {
            1
        }
        fn new_scratch(&self) -> Scratch {
            Scratch::new(pagestore::BufferPool::unbuffered())
        }
        fn knn(
            &self,
            _scratch: &mut Scratch,
            query: &[f64],
            _k: usize,
        ) -> Result<BackendAnswer, EngineError> {
            assert!(query[0] >= 0.0, "probe panic: poisoned query");
            Ok(BackendAnswer {
                neighbors: vec![(bregman::PointId(0), 1.0)],
                candidates: 1,
                io: pagestore::IoStats::default(),
            })
        }
    }

    /// Run `body` with panic-hook output suppressed (the probes below panic
    /// on purpose; their backtraces are noise, not signal).
    fn quietly<T>(body: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = body();
        std::panic::set_hook(hook);
        result
    }

    #[test]
    fn worker_panic_surfaces_as_query_error_not_batch_poison() {
        let engine = QueryEngine::with_config(
            Arc::new(PanickingProbe),
            EngineConfig::default().with_threads(2),
        )
        .unwrap();
        // Query 7 panics; the batch must fail with that query's index
        // instead of unwinding through the thread scope.
        let queries: Vec<Vec<f64>> =
            (0..12).map(|i| vec![if i == 7 { -1.0 } else { i as f64 }, 0.0]).collect();
        match quietly(|| engine.run_batch(&queries, 1)) {
            Err(EngineError::Query { index: 7, message }) => {
                assert!(message.contains("panicked"), "{message}");
                assert!(message.contains("poisoned query"), "{message}");
            }
            other => panic!("expected a per-query panic error, got {other:?}"),
        }
        // The engine survives the panic and serves the next batch.
        let clean: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64, 0.0]).collect();
        let batch = engine.run_batch(&clean, 1).unwrap();
        assert_eq!(batch.outcomes.len(), 4);
    }

    /// A probe backend that fails every query until externally healed.
    #[derive(Debug)]
    struct FlakyProbe {
        healthy: std::sync::atomic::AtomicBool,
    }

    impl FlakyProbe {
        fn sick() -> Self {
            Self { healthy: std::sync::atomic::AtomicBool::new(false) }
        }
        fn heal(&self) {
            self.healthy.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl SearchBackend for FlakyProbe {
        fn name(&self) -> &str {
            "flaky-probe"
        }
        fn dim(&self) -> usize {
            2
        }
        fn len(&self) -> usize {
            1
        }
        fn new_scratch(&self) -> Scratch {
            Scratch::new(pagestore::BufferPool::unbuffered())
        }
        fn knn(
            &self,
            _scratch: &mut Scratch,
            _query: &[f64],
            _k: usize,
        ) -> Result<BackendAnswer, EngineError> {
            if self.healthy.load(std::sync::atomic::Ordering::SeqCst) {
                Ok(BackendAnswer {
                    neighbors: vec![(bregman::PointId(0), 1.0)],
                    candidates: 1,
                    io: pagestore::IoStats::default(),
                })
            } else {
                Err(EngineError::Backend("probe down".to_string()))
            }
        }
    }

    #[test]
    fn breaker_opens_after_threshold_skips_through_cooldown_and_probes_closed() {
        use crate::shard::{BreakerState, FanoutPolicy, ShardHealth};

        let flaky = Arc::new(FlakyProbe::sick());
        let healthy = Arc::new(PanickingProbe);
        let engine = ShardedEngine::new(vec![flaky.clone(), healthy], 2).unwrap();
        let health = ShardHealth::new(2);
        let policy = FanoutPolicy::default()
            .with_max_retries(1)
            .with_breaker(2, 2)
            .with_backoff(std::time::Duration::ZERO, std::time::Duration::ZERO);
        let queries: Vec<Vec<f64>> = vec![vec![1.0, 0.0], vec![2.0, 0.0]];
        let requests: Vec<EngineRequest<'_>> =
            queries.iter().map(|q| EngineRequest::new(q, 1)).collect();

        // Two failing fan-outs open shard 0's breaker (threshold 2); shard 1
        // answers throughout.
        for fanout in 0..2 {
            let results = engine.run_requests_with_policy(&requests, &policy, &health);
            let failure = results[0].as_ref().unwrap_err();
            assert!(!failure.skipped, "fan-out {fanout} must really dispatch");
            assert_eq!(failure.retries, 1);
            assert!(results[1].is_ok());
        }
        assert_eq!(health.state(0), BreakerState::Open);
        assert_eq!(health.breaker_opens(), 1);
        assert_eq!(health.retries(), 2, "one retry per failing fan-out");

        // While open, fan-outs are skipped without dispatch for the whole
        // cooldown (2 fan-outs).
        for _ in 0..2 {
            let results = engine.run_requests_with_policy(&requests, &policy, &health);
            assert!(results[0].as_ref().unwrap_err().skipped);
        }
        assert_eq!(health.retries(), 2, "skipped fan-outs must not retry");

        // The backend recovers; the next fan-out is the half-open probe and
        // closes the breaker. No second Closed → Open transition happened.
        flaky.heal();
        let results = engine.run_requests_with_policy(&requests, &policy, &health);
        assert!(results[0].is_ok());
        assert_eq!(health.state(0), BreakerState::Closed);
        assert_eq!(health.breaker_opens(), 1);
    }

    #[test]
    fn failed_half_open_probe_reopens_without_counting_a_second_open() {
        use crate::shard::{BreakerState, FanoutPolicy, ShardHealth};

        let flaky = Arc::new(FlakyProbe::sick());
        let engine = ShardedEngine::new(vec![flaky.clone()], 1).unwrap();
        let health = ShardHealth::new(1);
        let policy = FanoutPolicy::default()
            .with_max_retries(0)
            .with_breaker(1, 1)
            .with_backoff(std::time::Duration::ZERO, std::time::Duration::ZERO);
        let query = vec![1.0, 0.0];
        let requests = vec![EngineRequest::new(&query, 1)];

        // Open on the first failure, skip one fan-out, then fail the probe:
        // the breaker re-opens but `breaker_opens` stays at 1.
        assert!(engine.run_requests_with_policy(&requests, &policy, &health)[0].is_err());
        assert_eq!(health.state(0), BreakerState::Open);
        assert!(
            engine.run_requests_with_policy(&requests, &policy, &health)[0]
                .as_ref()
                .unwrap_err()
                .skipped
        );
        assert!(
            !engine.run_requests_with_policy(&requests, &policy, &health)[0]
                .as_ref()
                .unwrap_err()
                .skipped
        );
        assert_eq!(health.state(0), BreakerState::Open);
        assert_eq!(health.breaker_opens(), 1, "a probe failure must not double-count");
    }

    #[test]
    fn fault_injected_transients_recover_through_retries_to_exact_results() {
        use crate::fault::{FaultInjector, FaultPlan};
        use crate::shard::{FanoutPolicy, ShardHealth};

        let (data, queries) = workload();
        let config = BrePartitionConfig::default().with_partitions(4).with_page_size(4096);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let clean: Arc<dyn SearchBackend> = Arc::new(BrePartitionBackend::exact(index));

        // Reference: the unwrapped backend, single shard.
        let reference = ShardedEngine::new(vec![clean.clone()], 1)
            .unwrap()
            .run_requests(&to_requests(&queries));
        let expected = reference.unwrap().remove(0);

        // Faulted: 30% of queries fail their first attempt; retries must
        // recover the exact same answers.
        let plan = FaultPlan::with_seed(0xFA117).with_transient_rate(0.3);
        let faulted: Arc<dyn SearchBackend> = Arc::new(FaultInjector::new(clean, plan).unwrap());
        let engine = ShardedEngine::new(vec![faulted], 1).unwrap();
        let health = ShardHealth::new(1);
        let policy = FanoutPolicy::default()
            .with_max_retries(16)
            .with_backoff(std::time::Duration::ZERO, std::time::Duration::from_micros(10));
        let results = engine.run_requests_with_policy(&to_requests(&queries), &policy, &health);
        let got = results[0].as_ref().expect("retries must recover the batch");
        for (a, b) in expected.outcomes.iter().zip(got.outcomes.iter()) {
            assert_eq!(a.neighbors, b.neighbors);
        }
        assert!(health.retries() > 0, "a 30% fault rate must force at least one retry");
        assert_eq!(health.breaker_opens(), 0, "recovered batches must not trip the breaker");
    }

    fn to_requests<'q>(queries: &'q [Vec<f64>]) -> Vec<EngineRequest<'q>> {
        queries.iter().map(|q| EngineRequest::new(q, 5)).collect()
    }

    #[test]
    fn empty_batch_is_ok() {
        let (data, _) = workload();
        let config = BrePartitionConfig::default().with_partitions(4);
        let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
        let engine = QueryEngine::over(BrePartitionBackend::exact(index));
        let empty: Vec<Vec<f64>> = Vec::new();
        let batch = engine.run_batch(&empty, 3).unwrap();
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.report.queries, 0);
    }
}
