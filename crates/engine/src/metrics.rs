//! Engine-level telemetry: counters, latency histograms and phase spans
//! shared by every worker of a [`QueryEngine`](crate::QueryEngine).
//!
//! One [`EngineMetrics`] lives behind each engine (cloning an engine
//! shares it, like the backend). Workers record into it with relaxed
//! atomics — one histogram record and one counter increment per query —
//! and a serving layer makes the numbers observable by binding them into
//! a [`telemetry::Registry`] under a prefix of its choosing:
//!
//! * `<prefix>.queries`, `<prefix>.batches`, `<prefix>.errors` — counters;
//! * `<prefix>.query_ns`, `<prefix>.batch_ns` — latency histograms
//!   (p50/p95/p99/p999 via [`telemetry::HistogramSnapshot::quantile`]);
//! * `<prefix>.io.pages_read` / `.cache_hits` / `.pages_written` — the
//!   engine's cumulative I/O, the same atomics
//!   [`QueryEngine::cumulative_io`](crate::QueryEngine::cumulative_io)
//!   snapshots;
//! * `<prefix>.phase.io_ns` (and the other phases) — per-query trace
//!   spans; the engine attaches the io-phase histogram to every worker
//!   buffer pool, so physical page-read time lands here.

use std::sync::Arc;

use pagestore::AtomicIoStats;
use telemetry::{Counter, Histogram, Phase, PhaseStats, Registry};

/// Shared observability state of one engine.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    errors: Arc<Counter>,
    query_latency_ns: Arc<Histogram>,
    batch_wall_ns: Arc<Histogram>,
    phases: PhaseStats,
    io: Arc<AtomicIoStats>,
}

impl EngineMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queries answered successfully (across batches and ad-hoc calls).
    pub fn queries(&self) -> &Arc<Counter> {
        &self.queries
    }

    /// Batches completed successfully.
    pub fn batches(&self) -> &Arc<Counter> {
        &self.batches
    }

    /// Failed queries (a failed batch counts once, for its first error).
    pub fn errors(&self) -> &Arc<Counter> {
        &self.errors
    }

    /// Per-query service-time distribution, in nanoseconds.
    pub fn query_latency_ns(&self) -> &Arc<Histogram> {
        &self.query_latency_ns
    }

    /// Per-batch wall-time distribution, in nanoseconds.
    pub fn batch_wall_ns(&self) -> &Arc<Histogram> {
        &self.batch_wall_ns
    }

    /// Per-phase trace-span histograms (filter/refine/io/merge).
    pub fn phases(&self) -> &PhaseStats {
        &self.phases
    }

    /// The io-phase histogram workers attach to their buffer pools.
    pub fn io_span(&self) -> &Arc<Histogram> {
        self.phases.histogram(Phase::Io)
    }

    /// The engine's cumulative I/O counters.
    pub fn io(&self) -> &Arc<AtomicIoStats> {
        &self.io
    }

    /// Register everything under `prefix` (see the module docs for the
    /// resulting names). Binding is idempotent: re-binding the same
    /// metrics under the same prefix replaces them with themselves.
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.queries"), self.queries.clone());
        registry.register_counter(&format!("{prefix}.batches"), self.batches.clone());
        registry.register_counter(&format!("{prefix}.errors"), self.errors.clone());
        registry.register_histogram(&format!("{prefix}.query_ns"), self.query_latency_ns.clone());
        registry.register_histogram(&format!("{prefix}.batch_ns"), self.batch_wall_ns.clone());
        self.io.bind(registry, &format!("{prefix}.io"));
        self.phases.bind(registry, &format!("{prefix}.phase"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_exposes_every_metric_under_the_prefix() {
        let metrics = EngineMetrics::new();
        let registry = Registry::new();
        metrics.bind(&registry, "engine");
        metrics.queries().add(3);
        metrics.query_latency_ns().record(1_000);
        metrics.io().record(&pagestore::IoStats { pages_read: 7, cache_hits: 0, pages_written: 0 });
        metrics.phases().record(Phase::Io, 500);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.queries"), Some(3));
        assert_eq!(snap.counter("engine.batches"), Some(0));
        assert_eq!(snap.counter("engine.errors"), Some(0));
        assert_eq!(snap.histogram("engine.query_ns").unwrap().count(), 1);
        assert_eq!(snap.histogram("engine.batch_ns").unwrap().count(), 0);
        assert_eq!(snap.counter("engine.io.pages_read"), Some(7));
        assert_eq!(snap.histogram("engine.phase.io_ns").unwrap().count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let metrics = EngineMetrics::new();
        let clone = metrics.clone();
        clone.queries().inc();
        assert_eq!(metrics.queries().get(), 1);
    }
}
