//! The delta overlay: one [`SearchBackend`] that merges a static backend
//! with an immutable snapshot of a [`DeltaSegment`].
//!
//! The overlay is how batch serving sees online mutability without giving
//! up the engine's lock-free contract: the backend stays immutable, the
//! delta snapshot is frozen at overlay construction, and every query a
//! worker pulls from the batch merges against the *same* snapshot — a
//! batch never observes a half-applied write. The owning `Index` façade
//! constructs a fresh overlay per batch (or per ad-hoc query), so new
//! writes become visible at the next batch boundary.
//!
//! Per query the overlay
//!
//! 1. asks the inner backend for `k + t` neighbors, where `t` is the
//!    number of tombstones falling on backend points (each tombstone can
//!    displace at most one backend result, so `k` live backend answers
//!    survive whenever they exist),
//! 2. maps backend-internal ids to stable external ids and drops
//!    tombstoned ones,
//! 3. scans the live delta rows exactly through the prepared kernel — the
//!    same `Φ(x) + c_q − ⟨∇φ(q), x⟩` evaluation the backends' refine
//!    phases use, reusing the worker's [`Scratch`] buffers — and
//! 4. merges both sides by `(divergence, id)` and truncates to `k`.

use std::path::Path;
use std::sync::Arc;

use bregman::kernel::KernelScratch;
use brepartition_core::DeltaSegment;
use telemetry::{Phase, PhaseStats, QueryTrace, SpanTimer};

use crate::backend::{BackendAnswer, Scratch, SearchBackend};
use crate::error::EngineError;
use crate::request::QueryOptions;

/// Delta rows transposed and scored per block-kernel call; bounds the
/// lane-buffer growth while amortizing per-call overhead.
const DELTA_SCAN_BLOCK: usize = 64;

/// A consistent read snapshot over `static backend + delta segment`,
/// served through the [`SearchBackend`] trait.
#[derive(Clone)]
pub struct DeltaOverlayBackend {
    inner: Arc<dyn SearchBackend>,
    delta: Arc<DeltaSegment>,
    name: String,
    /// Per-phase trace histograms: filter = inner backend search, refine =
    /// exact delta scan, merge = combine + truncate. Shared by clones, so
    /// an owning façade can keep one `PhaseStats` across the per-batch
    /// overlay snapshots it creates.
    phases: PhaseStats,
}

impl std::fmt::Debug for DeltaOverlayBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaOverlayBackend")
            .field("inner", &self.inner.name())
            .field("base_len", &self.delta.base_len())
            .field("delta_rows", &self.delta.delta_rows())
            .field("tombstones", &self.delta.tombstone_count())
            .finish()
    }
}

impl DeltaOverlayBackend {
    /// Overlay `delta` on `inner`. The delta must describe exactly this
    /// backend (same dimensionality, same point count); a mismatch is a
    /// typed configuration error.
    pub fn new(
        inner: Arc<dyn SearchBackend>,
        delta: Arc<DeltaSegment>,
    ) -> Result<DeltaOverlayBackend, EngineError> {
        if delta.dim() != inner.dim() {
            return Err(EngineError::Config(format!(
                "delta segment is {}-dimensional but backend {} is {}-dimensional",
                delta.dim(),
                inner.name(),
                inner.dim()
            )));
        }
        if delta.base_len() != inner.len() {
            return Err(EngineError::Config(format!(
                "delta segment describes a backend of {} points but backend {} holds {}",
                delta.base_len(),
                inner.name(),
                inner.len()
            )));
        }
        let name = format!("{}+Δ", inner.name());
        Ok(DeltaOverlayBackend { inner, delta, name, phases: PhaseStats::new() })
    }

    /// Record phase spans into an existing [`PhaseStats`] instead of a
    /// private one — how the owning façade aggregates traces across the
    /// per-batch overlay snapshots it creates.
    pub fn with_phase_stats(mut self, phases: PhaseStats) -> Self {
        self.phases = phases;
        self
    }

    /// The per-phase trace histograms this overlay records into.
    pub fn phases(&self) -> &PhaseStats {
        &self.phases
    }

    /// The static backend underneath.
    pub fn inner(&self) -> &Arc<dyn SearchBackend> {
        &self.inner
    }

    /// The frozen delta snapshot this overlay serves.
    pub fn delta(&self) -> &DeltaSegment {
        &self.delta
    }

    fn merged_knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        let mut trace = QueryTrace::new();
        // Over-fetch by the backend-side tombstone count: each tombstone
        // displaces at most one backend result, so the k best *live*
        // backend neighbors are guaranteed to be present (capped at the
        // backend size, where the fetch degenerates to a full ranking).
        let base_k = (k + self.delta.base_tombstone_count()).min(self.inner.len());
        // A caller's candidate budget was sized for `k` results; holding it
        // fixed while the fetch is widened to `base_k` would let the inner
        // backend truncate below the over-fetch — after tombstone filtering,
        // fewer than `k` live answers could survive even though they exist.
        // Widen the budget by the same margin (clamped to at least `base_k`
        // so the inner backend can surface the over-fetched results at all);
        // the delta side stays exact either way.
        let widened;
        let options = match options.candidate_budget {
            Some(budget) if base_k > k => {
                widened = QueryOptions {
                    candidate_budget: Some(budget.saturating_add(base_k - k).max(base_k)),
                    ..*options
                };
                &widened
            }
            _ => options,
        };
        let answer = {
            let _filter = SpanTimer::start(&mut trace, Phase::Filter);
            self.inner.knn_with_options(scratch, query, base_k, options)?
        };
        let mut merged: Vec<_> = answer
            .neighbors
            .into_iter()
            .filter_map(|(internal, d)| {
                let external = self.delta.external_of(internal.index());
                self.delta.is_live(external).then_some((external, d))
            })
            .collect();

        // Exact scan of the live delta rows through the lane-major block
        // kernel — the same evaluation (and the same floating-point
        // association) the backends' refine phases use, so a point scores
        // bit-identically whether it lives in the delta or, after a
        // compaction, in the base store. The inner search is done with the
        // scratch, so re-arming the prepared query here cannot disturb it.
        let refine = SpanTimer::start(&mut trace, Phase::Refine);
        let kind = self.delta.kind();
        let KernelScratch { prepared, lanes, distances, phis, .. } = &mut scratch.kernel;
        kind.prepare_query_into(prepared, query);
        let dim = query.len();
        let mut scanned = 0usize;
        let mut chunk = Vec::with_capacity(DELTA_SCAN_BLOCK);
        let mut rows = self.delta.live_delta_rows();
        loop {
            chunk.clear();
            phis.clear();
            while chunk.len() < DELTA_SCAN_BLOCK {
                match rows.next() {
                    Some((id, phi, row)) => {
                        phis.push(phi);
                        chunk.push((id, row));
                    }
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }
            let m = chunk.len();
            lanes.clear();
            lanes.resize(dim * m, 0.0);
            for (j, (_, row)) in chunk.iter().enumerate() {
                for (i, &v) in row.iter().enumerate() {
                    lanes[i * m + j] = v;
                }
            }
            prepared.distance_block(phis, lanes, distances);
            scanned += m;
            merged.extend(chunk.iter().zip(distances.iter()).map(|(&(id, _), &d)| (id, d)));
        }

        drop(refine);

        // The same (divergence, id) total order every backend's refine
        // phase uses, so merged results are deterministic and mergeable
        // with brute force.
        {
            let _merge = SpanTimer::start(&mut trace, Phase::Merge);
            merged.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            merged.truncate(k);
        }
        self.phases.record_trace(&trace);
        Ok(BackendAnswer {
            neighbors: merged,
            candidates: answer.candidates + scanned,
            io: answer.io,
        })
    }
}

impl SearchBackend for DeltaOverlayBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// The *live* point count (backend − tombstones + live delta rows).
    fn len(&self) -> usize {
        self.delta.live_len()
    }

    fn new_scratch(&self) -> Scratch {
        self.inner.new_scratch()
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        self.merged_knn(scratch, query, k, &QueryOptions::none())
    }

    /// Options pass through to the inner backend (a probability override
    /// still runs the *backend side* approximately; the delta side is
    /// always exact), so the overlay supports exactly the options its
    /// backend supports — with one adjustment: a caller's candidate budget
    /// is widened by the tombstone over-fetch margin, so tombstone-heavy
    /// states clamp rather than silently truncate the live results.
    fn knn_with_options(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        self.merged_knn(scratch, query, k, options)
    }

    fn save(&self, dir: &Path) -> Result<(), EngineError> {
        let _ = dir;
        Err(EngineError::Backend(format!(
            "backend {} is a query-time snapshot; persist the owning Index façade \
             (Index::save writes the backend artifacts plus the delta log) instead",
            self.name
        )))
    }
}
